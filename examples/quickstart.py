#!/usr/bin/env python3
"""Quickstart: objects, threads, invocation and a first event.

Builds a 3-node cluster, creates a passive object on a remote node,
invokes it (the logical thread migrates there and back), then interrupts
a long-running thread with an asynchronous event.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig, Decision, DistObject, entry


class Greeter(DistObject):
    """A passive object with two entry points."""

    @entry
    def greet(self, ctx, who):
        # ctx.compute burns virtual CPU time on this node
        yield ctx.compute(1e-4)
        return f"hello {who} (ran on node {ctx.node})"

    @entry
    def nap(self, ctx):
        """Sleeps until an INTERRUPT event wakes it."""

        def on_interrupt(hctx, block):
            # handler procedures travel in per-thread memory and run
            # wherever the thread is suspended
            hctx.attributes.per_thread_memory["woken"] = hctx.now
            yield hctx.compute(0)
            return Decision.RESUME

        yield ctx.attach_handler("INTERRUPT", on_interrupt)
        memory = ctx.attributes.per_thread_memory
        memory["woken"] = None
        while memory["woken"] is None:
            yield ctx.sleep(0.25)  # interruption points
        return memory["woken"]


def main() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=3))

    # --- invocation: the same logical thread crosses machines -----------
    greeter = cluster.create_object(Greeter, node=2)
    thread = cluster.spawn(greeter, "greet", "world", at=0)
    cluster.run()
    print(thread.completion.result())
    print(f"virtual time: {cluster.now * 1e3:.3f} ms, "
          f"messages: {cluster.fabric.stats.sent}")

    # --- events: interrupt a sleeping thread ----------------------------
    sleeper = cluster.spawn(greeter, "nap", at=1)
    cluster.run(until=cluster.now + 1.0)        # let it settle into sleep
    cluster.raise_event("INTERRUPT", sleeper.tid, from_node=0)
    cluster.run()
    print(f"sleeper woken by INTERRUPT at t={sleeper.completion.result():.3f}s "
          f"(before its 5s nap ended: {cluster.now < 6.0})")


if __name__ == "__main__":
    main()
