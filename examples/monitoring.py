#!/usr/bin/env python3
"""Distributed liveliness monitoring (§6.2 of the paper).

A monitored thread wanders across three nodes doing work. A monitor probe
— a recurring TIMER in the thread's attributes plus a per-thread-memory
handler — samples the thread's "program counter" wherever it happens to
be and ships each sample to a central MonitorServer on its own
fire-and-forget thread.

Run:  python examples/monitoring.py
"""

from repro import Cluster, ClusterConfig, DistObject, entry
from repro.monitor import MonitorServer, install_monitor


class Pipeline(DistObject):
    """A three-stage computation that hops between nodes."""

    @entry
    def stage_one(self, ctx, next_cap, monitor_cap):
        yield from install_monitor(ctx, monitor_cap, period=0.05)
        yield ctx.compute(0.2)
        result = yield ctx.invoke(next_cap, "stage_two")
        yield ctx.compute(0.2)
        return f"pipeline done ({result})"

    @entry
    def stage_two(self, ctx):
        yield ctx.compute(0.3)
        return "stage-two-output"


def main() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=3))
    server_cap = cluster.create_object(MonitorServer, node=2)
    stage1 = cluster.create_object(Pipeline, node=0)
    stage2 = cluster.create_object(Pipeline, node=1)

    thread = cluster.spawn(stage1, "stage_one", stage2, server_cap, at=0)
    cluster.run()
    print(thread.completion.result())

    server = cluster.get_object(server_cap)
    samples = server.samples[str(thread.tid)]
    print(f"\n{len(samples)} samples collected for {thread.tid}:")
    print(f"{'t (ms)':>8} {'node':>4} {'entry':<12} {'steps':>5}")
    for sample in samples:
        print(f"{sample.time * 1e3:8.1f} {sample.node:>4} "
              f"{sample.entry:<12} {sample.steps:>5}")

    nodes_seen = {s.node for s in samples}
    entries_seen = {s.entry for s in samples}
    print(f"\nthe probe followed the thread across nodes {sorted(nodes_seen)}"
          f" and entries {sorted(entries_seen)} — timer registration was"
          f" recreated on every node the thread visited (§6.2).")


if __name__ == "__main__":
    main()
