#!/usr/bin/env python3
"""The distributed ^C problem (§6.3 of the paper).

A root thread fans out workers by asynchronous invocation; workers take
distributed locks and block. Objects hosting the application register
ABORT cleanup handlers. The user "types ^C" — a TERMINATE event raised at
the root thread — and the §6.3 protocol terminates every group member,
releases every lock through TERMINATE-chained cleanup (§4.2), and
notifies every object along the invocation paths.

Run:  python examples/distributed_ctrl_c.py
"""

from repro import Cluster, ClusterConfig, DistObject, entry, on_event
from repro.apps import install_ctrl_c, press_ctrl_c, termination_report
from repro.locks import LockManager


class Application(DistObject):
    """Both the root object and the worker object of a distributed app."""

    def __init__(self):
        super().__init__()
        self.cleanups = 0

    @on_event("ABORT")
    def on_abort(self, ctx, block):
        """Application cleanup when an invocation through us is aborted."""
        yield ctx.compute(1e-5)
        self.cleanups += 1

    @entry
    def main(self, ctx, worker_cap, mgr_cap, n_workers):
        # Install the §6.3 root handlers BEFORE spawning, so every worker
        # inherits them through its thread attributes.
        yield from install_ctrl_c(ctx)
        for i in range(n_workers):
            yield ctx.invoke_async(worker_cap, "work", mgr_cap,
                                   f"resource-{i}", claimable=False)
        yield ctx.io_write("root: workers launched, waiting forever")
        yield ctx.sleep(1e9)

    @entry
    def work(self, ctx, mgr_cap, resource):
        yield ctx.invoke(mgr_cap, "acquire", resource)
        yield ctx.io_write(f"worker: locked {resource}, grinding away")
        yield ctx.sleep(1e9)


def main() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=6))
    manager = cluster.create_object(LockManager, node=5)
    root_obj = cluster.create_object(Application, node=0)
    worker_obj = cluster.create_object(Application, node=2)

    group = cluster.new_group()
    root = cluster.spawn(root_obj, "main", worker_obj, manager, 4,
                         at=0, group=group)
    cluster.run(until=2.0)

    members = cluster.groups.members(group)
    mgr = cluster.get_object(manager)
    held = [n for n, lock in mgr._locks.items() if lock.holder is not None]
    print(f"running: {len(members)} threads in group {group}, "
          f"locks held: {sorted(held)}")

    print("\n*** user types ^C ***\n")
    press_ctrl_c(cluster, root.tid)
    cluster.run()

    report = termination_report(cluster, group,
                                caps=[root_obj, worker_obj])
    held_after = [n for n, lock in mgr._locks.items()
                  if lock.holder is not None]
    print(f"surviving group members : {report['surviving_members']}")
    print(f"orphaned threads        : {report['orphans']}")
    print(f"locks still held        : {held_after}")
    print(f"lock cleanup releases   : {mgr.cleanup_releases}")
    print(f"objects that cleaned up : "
          f"root={cluster.get_object(root_obj).cleanups}, "
          f"worker={cluster.get_object(worker_obj).cleanups}")
    assert not report["surviving_members"] and not report["orphans"]
    assert not held_after
    print("\nall threads hunted down, all locks released — clean ^C.")


if __name__ == "__main__":
    main()
