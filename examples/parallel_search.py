#!/usr/bin/env python3
"""Cooperative parallel search (§1 of the paper).

Four workers minimise over a shared candidate space; one slice hides a
sharp optimum. With notification ON, the lucky worker raises a BOUND
event to the thread group the moment it finds it, and everyone else
prunes aggressively. With notification OFF, each worker only prunes on
its own discoveries. The explored-candidate counts show what the paper's
"asynchronously notify each other of partial results" buys.

Run:  python examples/parallel_search.py
"""

from repro import Cluster, ClusterConfig
from repro.apps.search import run_search


def main() -> None:
    print(f"{'mode':<14} {'best':>6} {'explored':>9} {'pruned':>7} "
          f"{'events':>7} {'vtime (ms)':>11}")
    for notify in (True, False):
        cluster = Cluster(ClusterConfig(n_nodes=4, trace_net=False))
        result = run_search(cluster, workers=4, space=400, seed=7,
                            notify=notify)
        mode = "notify" if notify else "no-notify"
        print(f"{mode:<14} {result.best:>6.2f} {result.explored:>9} "
              f"{result.pruned:>7} {result.events_raised:>7} "
              f"{result.virtual_time * 1e3:>11.1f}")
    print("\nwith BOUND events, workers prune most of the space the "
          "moment one of them finds the sharp optimum.")


if __name__ == "__main__":
    main()
