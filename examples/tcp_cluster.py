#!/usr/bin/env python3
"""A cluster on real TCP sockets: the stock stack off the simulator.

``ClusterConfig(transport="tcp")`` swaps the deterministic simulator
for loopback TCP connections and wall-clock timers — and *nothing
else*: the same reliable channels, durable outbox and supervision
stack run unchanged (the point of the transport port).  This example
turns the reliability knobs on and drives

1. a cross-node invocation (the logical thread migrates to node 2 and
   back over real sockets), and
2. a burst of durable object-directed events fanned across the nodes,

then prints the wire counters to show actual frames moved.

Run:  PYTHONPATH=src python examples/tcp_cluster.py
"""

import time

from repro import Cluster, ClusterConfig, DistObject, entry, on_event

PING = "PING"


class Counter(DistObject):
    """Counts PING events; also serves a plain invocation."""

    def __init__(self):
        super().__init__()
        self.pings = 0

    @entry
    def describe(self, ctx):
        yield ctx.compute(1e-4)
        return f"counter lives on node {ctx.node}"

    @on_event(PING)
    def on_ping(self, ctx, block):
        yield ctx.compute(1e-5)
        self.pings += 1


def run_until(cluster, predicate, budget=15.0, slice_=0.2):
    """Drive the wall-clock loop in slices until ``predicate()``."""
    deadline = time.perf_counter() + budget
    while not predicate():
        if time.perf_counter() >= deadline:
            raise TimeoutError("tcp example did not settle in time")
        cluster.run(until=cluster.now + slice_)


def main() -> None:
    cluster = Cluster(ClusterConfig(
        n_nodes=3, transport="tcp",
        reliable_delivery=True, durable_delivery=True,
        link_latency=1e-3, trace_net=False))
    try:
        cluster.register_event(PING)
        counters = [cluster.create_object(Counter, node=n)
                    for n in range(3)]

        # -- invocation over the wire ---------------------------------
        thread = cluster.spawn(counters[2], "describe", at=0)
        run_until(cluster, lambda: thread.completion.done)
        print(thread.completion.result())

        # -- durable events over the wire -----------------------------
        posts = 30
        for i in range(posts):
            cluster.raise_event(PING, counters[i % 3], from_node=(i + 1) % 3)
        objs = [cluster.get_object(cap) for cap in counters]
        run_until(cluster, lambda: sum(o.pings for o in objs) >= posts)
        print(f"delivered {sum(o.pings for o in objs)} durable pings: "
              f"{[o.pings for o in objs]} per node")

        wire = cluster.transport_stats()
        store = cluster.durability_stats()
        print(f"wire: {wire['frames_sent']} frames / "
              f"{wire['bytes_sent']} bytes over {wire['attached']} "
              f"loopback sockets")
        print(f"durability: {store['commits']} journal commits, "
              f"{store['pending']} outbox entries left pending")
        assert store["pending"] == 0
    finally:
        cluster.close()


if __name__ == "__main__":
    main()
