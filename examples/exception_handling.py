#!/usr/bin/env python3
"""Exception handling with events (§6.1 of the paper).

Three layers of defence around a division fault:

1. the *object* declares a DIV_ZERO handler in its interface — it gets
   the first look ("an object may wish to take some generic corrective
   action on an exception before it is propagated to the user");
2. the *invoker* attaches an invocation-scoped thread handler
   (``invoke_guarded``) that repairs what the object propagates;
3. with neither, the exception propagates across invocation boundaries
   like an ordinary error and fails the thread.

Run:  python examples/exception_handling.py
"""

from repro import Cluster, ClusterConfig, Decision, DistObject, entry, on_event
from repro.apps import invoke_guarded, repairing


class AuditedMath(DistObject):
    """Object-level handler: log the fault, then pass it on."""

    def __init__(self):
        super().__init__()
        self.faults_seen = 0

    @on_event("DIV_ZERO")
    def audit(self, ctx, block):
        self.faults_seen += 1
        yield ctx.compute(1e-5)
        return Decision.PROPAGATE  # let the thread's handlers decide

    @entry
    def divide(self, ctx, a, b):
        yield ctx.compute(1e-5)
        return a / b


class Caller(DistObject):
    @entry
    def careful(self, ctx, math_cap, a, b):
        result = yield from invoke_guarded(
            ctx, math_cap, "divide", a, b,
            handlers={"DIV_ZERO": repairing(float("nan"))})
        return result

    @entry
    def careless(self, ctx, math_cap, a, b):
        result = yield ctx.invoke(math_cap, "divide", a, b)
        return result


def main() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=2))
    math_cap = cluster.create_object(AuditedMath, node=1)
    caller = cluster.create_object(Caller, node=0)

    thread = cluster.spawn(caller, "careful", math_cap, 10, 2, at=0)
    cluster.run()
    print(f"10 / 2 with guard        -> {thread.completion.result()}")

    thread = cluster.spawn(caller, "careful", math_cap, 10, 0, at=0)
    cluster.run()
    print(f"10 / 0 with guard        -> {thread.completion.result()} "
          f"(repaired by the invoker's handler)")

    thread = cluster.spawn(caller, "careless", math_cap, 10, 0, at=0)
    cluster.run()
    print(f"10 / 0 without guard     -> thread {thread.state}: "
          f"{thread.exit_reason}")

    audited = cluster.get_object(math_cap).faults_seen
    print(f"object-level audit saw   -> {audited} faults "
          f"(the object's handler ran first each time, §6.1)")


if __name__ == "__main__":
    main()
