#!/usr/bin/env python3
"""Thread location strategies head to head (§7.1 of the paper).

A thread migrates deep into a 16-node cluster; an event is posted to it
under each of the four locator strategies. The message counts make the
paper's argument concrete: broadcast pays O(n) per post, path-following
pays one message per migration hop, multicast pays per group member —
and the hint cache pays one message once it knows where the thread is.

Run:  python examples/locate_strategies.py
"""

from repro import Cluster, ClusterConfig
from repro.bench.workloads import deep_thread


def main() -> None:
    n_nodes, depth, posts = 16, 5, 10
    print(f"cluster: {n_nodes} nodes; thread migrated {depth} hops; "
          f"{posts} event posts\n")
    print(f"{'locator':<10} {'msgs/post':>10} {'latency/post (ms)':>18}")
    for locator in ("broadcast", "path", "multicast", "cached"):
        cluster = Cluster(ClusterConfig(n_nodes=n_nodes, locator=locator,
                                        trace_net=False))
        thread = deep_thread(cluster, depth=depth)
        before = cluster.fabric.stats.sent
        for _ in range(posts):
            cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
            cluster.run(until=cluster.now + 0.2)
        msgs = (cluster.fabric.stats.sent - before) / posts
        samples = cluster.events.delivery_latencies.last(posts)
        latency = sum(l for _, l in samples) / len(samples)
        print(f"{locator:<10} {msgs:>10.1f} {latency * 1e3:>18.2f}")
    print("\nbroadcast scales with cluster size (wasteful, §7.1); "
          "path with migration depth; multicast with group membership; "
          "cached amortises to one direct message per post.")


if __name__ == "__main__":
    main()
