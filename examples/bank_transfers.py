#!/usr/bin/env python3
"""A distributed bank: DSM state + locks + events working together.

Accounts live in a DSM-backed object (state pages migrate to whichever
node touches them); transfer threads take per-account locks from the
central lock manager (always in account order — no deadlocks); an auditor
raises a synchronous AUDIT event at the bank object to get a consistent
snapshot.

A TERMINATE then hits a teller that hangs *mid-transfer*, after the debit
and before the credit. Lock cleanup alone would free the locks but lose
the in-flight money — so the teller also chains a §4.2 *compensation*
handler: attached after the lock cleanups, it runs first (LIFO), re-
credits the debited account while the locks are still held, and
propagates down the chain to the unlock handlers and the terminating
default. Money is conserved.

Run:  python examples/bank_transfers.py
"""

from repro import Cluster, ClusterConfig, DistObject, TRANSPORT_DSM, entry, on_event
from repro.locks import LockManager

ACCOUNTS = ["alice", "bob", "carol", "dave"]


class Bank(DistObject):
    """Account balances in DSM pages, one field per account."""

    dsm_fields = {name: 100 for name in ACCOUNTS}

    @entry
    def transfer(self, ctx, mgr_cap, src, dst, amount, rounds,
                 slow=False):
        from repro.locks import chain_cleanup, unchain
        from repro import Decision

        memory = ctx.attributes.per_thread_memory
        memory["in_flight"] = None

        def compensate(hctx, block):
            """Undo a half-done transfer when the teller is terminated."""
            record = hctx.attributes.per_thread_memory.get("in_flight")
            if record:
                victim, lost = record
                balance = yield hctx.read(victim)
                yield hctx.write(victim, balance + lost)
            return Decision.PROPAGATE

        moved = 0
        for _ in range(rounds):
            first, second = sorted((src, dst))
            yield ctx.invoke(mgr_cap, "acquire", f"acct:{first}")
            yield ctx.invoke(mgr_cap, "acquire", f"acct:{second}")
            # Attached AFTER the per-acquire unlock handlers, so on
            # termination it runs FIRST (LIFO): state is repaired while
            # the account locks are still held, then the unlocks run.
            chained = yield from chain_cleanup(ctx, compensate)
            balance = yield ctx.read(src)
            if balance >= amount:
                memory["in_flight"] = (src, amount)
                yield ctx.write(src, balance - amount)
                dst_balance = yield ctx.read(dst)
                if slow:
                    yield ctx.sleep(5.0)  # a hung teller, mid-transfer
                yield ctx.write(dst, dst_balance + amount)
                memory["in_flight"] = None
                moved += amount
            yield from unchain(ctx, chained)
            yield ctx.invoke(mgr_cap, "release", f"acct:{second}")
            yield ctx.invoke(mgr_cap, "release", f"acct:{first}")
        return moved

    @on_event("AUDIT")
    def audit(self, ctx, block):
        """Synchronous snapshot for the auditor (object-based handler)."""
        balances = {}
        for name in ACCOUNTS:
            balances[name] = yield ctx.read(name)
        return balances


def main() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=4, trace_net=False))
    cluster.register_event("AUDIT")
    mgr = cluster.create_object(LockManager, node=3)
    bank = cluster.create_object(Bank, node=0, transport=TRANSPORT_DSM)

    transfers = [
        ("alice", "bob", 5, 6, 0), ("bob", "carol", 7, 4, 1),
        ("carol", "dave", 3, 8, 2), ("dave", "alice", 2, 9, 1),
    ]
    threads = [cluster.spawn(bank, "transfer", mgr, src, dst, amount,
                             rounds, at=node)
               for src, dst, amount, rounds, node in transfers]
    # one more teller that hangs while holding two account locks
    hung = cluster.spawn(bank, "transfer", mgr, "alice", "carol", 1, 1,
                         True, at=2)
    cluster.run(until=2.0)

    held = cluster.get_object(mgr)._locks
    print("hung teller holds:",
          sorted(n for n, l in held.items() if l.holder == hung.tid))
    print("killing the hung teller (TERMINATE -> chained lock cleanup)")
    cluster.raise_event("TERMINATE", hung.tid, from_node=0)
    cluster.run()

    moved = [t.completion.result() for t in threads]
    print(f"transfers completed, amounts moved: {moved}")

    audit = cluster.raise_and_wait("AUDIT", bank, from_node=1)
    cluster.run()
    balances = audit.result()
    print(f"audited balances: {balances}")
    total = sum(balances.values())
    print(f"conservation check: total = {total} "
          f"({'OK' if total == 400 else 'VIOLATED'})")
    violations = cluster.dsm.log.check()
    print(f"DSM sequential-consistency audit: {len(violations)} violations")
    assert total == 400 and not violations


if __name__ == "__main__":
    main()
