#!/usr/bin/env python3
"""User-level virtual memory management (§6.4 of the paper).

A pageable shared region is backed not by the kernel but by a PagerServer
— a plain distributed object designated as the buddy handler for VM_FAULT
events. Part 1 runs the shared mode: the first faulting thread
materialises each page for everyone. Part 2 runs the copy/merge mode:
concurrent faulters each get a private, weakly-consistent copy
(deliberately bypassing the DSM's strict consistency), merged afterwards.

Run:  python examples/external_pager.py
"""

from repro import Cluster, ClusterConfig
from repro.apps import run_pager_workload


def main() -> None:
    print("=== shared mode: pager materialises pages globally ===")
    cluster = Cluster(ClusterConfig(n_nodes=4))
    result = run_pager_workload(cluster, faulters=4, keys_per_thread=3,
                                writes=2, private_copies=False)
    print(f"vm faults raised   : {result.vm_faults}")
    print(f"faults served      : {result.faults_served}")
    print(f"page transfers     : {result.page_transfers}")
    print(f"virtual time       : {result.virtual_time * 1e3:.2f} ms")
    print(f"per-thread results : {result.per_thread}")
    violations = cluster.dsm.log.check()
    print(f"consistency audit  : {len(violations)} violations")

    print("\n=== copy/merge mode: private copies, merged later ===")
    cluster = Cluster(ClusterConfig(n_nodes=4))
    result = run_pager_workload(cluster, faulters=4, keys_per_thread=3,
                                writes=2, private_copies=True)
    print(f"vm faults raised   : {result.vm_faults}")
    print(f"faults served      : {result.faults_served}")
    print(f"pages merged       : {result.merged_pages}")
    print(f"virtual time       : {result.virtual_time * 1e3:.2f} ms")
    counts = cluster.dsm.log.counts()
    print(f"weak accesses      : {counts['weak']} of "
          f"{counts['reads'] + counts['writes']} "
          f"(private copies bypass strict consistency, as §6.4 intends)")


if __name__ == "__main__":
    main()
