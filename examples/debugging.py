#!/usr/bin/env python3
"""A distributed debugger session (buddy handlers, §4.1).

Two worker threads attach a central DebuggerServer as the buddy handler
for BREAKPOINT events, then hit breakpoints inside objects on different
nodes. The "user" at the debugger lists stopped threads, inspects their
frozen frame stacks, single-continues one and kills the other.

Run:  python examples/debugging.py
"""

from repro import Cluster, ClusterConfig, DistObject, entry
from repro.apps import DebuggerServer, attach_debugger, breakpoint_here


class Worker(DistObject):
    @entry
    def job(self, ctx, debugger_cap, helper_cap, label):
        yield attach_debugger(debugger_cap)
        yield ctx.compute(0.01)
        yield breakpoint_here(ctx, f"{label}:before-helper")
        result = yield ctx.invoke(helper_cap, "help", label)
        return result

    @entry
    def help(self, ctx, label):
        yield breakpoint_here(ctx, f"{label}:inside-helper")
        yield ctx.compute(0.01)
        return f"{label}-helped"


def command(cluster, debugger, entry_name, *args):
    probe = cluster.spawn(debugger, entry_name, *args, at=0)
    cluster.run(until=cluster.now + 1.0)
    return probe.completion.result()


def main() -> None:
    cluster = Cluster(ClusterConfig(n_nodes=4))
    cluster.register_event("BREAKPOINT")
    debugger = cluster.create_object(DebuggerServer, node=3)
    worker = cluster.create_object(Worker, node=1)
    helper = cluster.create_object(Worker, node=2)

    t_a = cluster.spawn(worker, "job", debugger, helper, "A", at=0)
    t_b = cluster.spawn(worker, "job", debugger, helper, "B", at=0)
    cluster.run(until=1.0)

    print("stopped threads:", command(cluster, debugger, "list_stopped"))
    for tid in (t_a.tid, t_b.tid):
        info = command(cluster, debugger, "inspect", tid)
        print(f"  {tid}: tag={info['tag']!r} node={info['node']} "
              f"frames={info['frames']}")

    print("\ncontinue A twice (through both breakpoints):")
    command(cluster, debugger, "resume_thread", t_a.tid)
    cluster.run(until=cluster.now + 1.0)
    info = command(cluster, debugger, "inspect", t_a.tid)
    print(f"  A now stopped at {info['tag']!r} on node {info['node']} "
          f"(depth {len(info['frames'])})")
    command(cluster, debugger, "resume_thread", t_a.tid)
    cluster.run(until=cluster.now + 1.0)
    print(f"  A finished: {t_a.completion.result()!r}")

    print("\nkill B at its first breakpoint:")
    command(cluster, debugger, "kill_thread", t_b.tid)
    cluster.run()
    print(f"  B state: {t_b.state}")
    print(f"\nbreakpoint history: "
          f"{[record.tag for record in cluster.get_object(debugger).history]}")


if __name__ == "__main__":
    main()
