"""Tests for the exception hierarchy and trace infrastructure details."""

import pytest

from repro import errors
from repro.errors import (
    DeadThreadError,
    DsmError,
    EventError,
    Interrupted,
    KernelError,
    LockError,
    NetworkError,
    ObjectError,
    ReproError,
    SimulationError,
    ThreadError,
    UnknownThreadError,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError), name

    def test_family_relationships(self):
        assert issubclass(DeadThreadError, UnknownThreadError)
        assert issubclass(UnknownThreadError, ThreadError)
        assert issubclass(errors.RpcTimeout, errors.RpcError)
        assert issubclass(errors.RpcError, KernelError)
        assert issubclass(errors.InvocationAborted, ObjectError)
        assert issubclass(errors.PageFaultError, DsmError)
        assert issubclass(errors.LockNotHeldError, LockError)
        assert issubclass(errors.PartitionedError, NetworkError)
        assert issubclass(errors.UnknownEventError, EventError)
        assert issubclass(errors.ProcessError, SimulationError)

    def test_one_catch_all_suffices(self):
        with pytest.raises(ReproError):
            raise DeadThreadError("gone")

    def test_interrupted_carries_cause(self):
        exc = Interrupted(cause={"why": "wakeup"})
        assert exc.cause == {"why": "wakeup"}

    def test_families_are_disjoint_where_it_matters(self):
        # a lock error is never a thread error and vice versa: catch
        # clauses stay precise
        assert not issubclass(LockError, ThreadError)
        assert not issubclass(ThreadError, LockError)
        assert not issubclass(EventError, ObjectError)


class TestMessageEnvelope:
    def test_reply_envelope_rejects_broadcast_source(self):
        from repro.net.message import Message

        msg = Message(src=0, dst=1, mtype="x")
        reply = msg.reply_envelope("y")
        assert (reply.src, reply.dst) == (1, 0)

    def test_multicast_helpers(self):
        from repro.net.message import (
            is_multicast,
            multicast_address,
            multicast_group,
        )

        address = multicast_address("g1")
        assert is_multicast(address)
        assert multicast_group(address) == "g1"
        assert not is_multicast(7)
        assert not is_multicast("plain")
        with pytest.raises(ValueError):
            multicast_group("plain")


class TestTrafficStats:
    def test_by_link_counts(self):
        from repro.net import Fabric, Message
        from repro.sim import Simulator

        sim = Simulator()
        fabric = Fabric(sim)
        fabric.attach(0, lambda m: None)
        fabric.attach(1, lambda m: None)
        for _ in range(3):
            fabric.send(Message(src=0, dst=1, mtype="x"))
        fabric.send(Message(src=1, dst=0, mtype="x"))
        sim.run()
        assert fabric.stats.by_link[(0, 1)] == 3
        assert fabric.stats.by_link[(1, 0)] == 1

    def test_reset(self):
        from repro.net.stats import TrafficStats

        stats = TrafficStats()
        stats.record_send(0, "a", 10)
        stats.record_delivery(0, 1)
        stats.reset()
        assert stats.snapshot()["sent"] == 0
        assert stats.by_link == {}
