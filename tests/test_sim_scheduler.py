"""Unit tests for the discrete-event scheduler."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0


def test_custom_start_time():
    sim = Simulator(start=5.0)
    assert sim.now == 5.0


def test_callbacks_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.call_after(2.0, fired.append, "late")
    sim.call_after(1.0, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == 2.0


def test_same_instant_fifo_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.call_after(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.call_after(3.0, lambda: sim.call_soon(seen.append, sim.now))
    sim.run()
    assert seen == [3.0]


def test_nested_scheduling_from_callback():
    sim = Simulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.call_after(1.5, inner)

    def inner():
        fired.append(("inner", sim.now))

    sim.call_after(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 2.5)]


def test_cannot_schedule_in_past():
    sim = Simulator(start=10.0)
    with pytest.raises(SimulationError):
        sim.call_at(9.0, lambda: None)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_cancel_prevents_execution():
    sim = Simulator()
    fired = []
    handle = sim.call_after(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    handle = sim.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()


def test_pending_excludes_cancelled():
    sim = Simulator()
    h1 = sim.call_after(1.0, lambda: None)
    sim.call_after(2.0, lambda: None)
    assert sim.pending == 2
    h1.cancel()
    assert sim.pending == 1


def test_run_until_advances_clock_exactly():
    sim = Simulator()
    fired = []
    sim.call_after(1.0, fired.append, "a")
    sim.call_after(5.0, fired.append, "b")
    sim.run(until=3.0)
    assert fired == ["a"]
    assert sim.now == 3.0
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 5.0


def test_run_until_with_empty_queue_advances_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_max_events_guard_trips_on_livelock():
    sim = Simulator()

    def loop():
        sim.call_soon(loop)

    sim.call_soon(loop)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run(max_events=100)


def test_step_returns_false_when_empty():
    sim = Simulator()
    assert sim.step() is False
    sim.call_soon(lambda: None)
    assert sim.step() is True
    assert sim.step() is False


def test_events_processed_counter():
    sim = Simulator()
    for _ in range(5):
        sim.call_soon(lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_reentrant_run_rejected():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run()
        except SimulationError as exc:
            errors.append(exc)

    sim.call_soon(reenter)
    sim.run()
    assert len(errors) == 1


def test_callback_args_passed_through():
    sim = Simulator()
    seen = []
    sim.call_soon(lambda a, b: seen.append((a, b)), 1, "two")
    sim.run()
    assert seen == [(1, "two")]
