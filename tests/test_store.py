"""Unit tests for the repro.store primitives: the write-ahead journal,
the transactional outbox, and the checkpoint/truncation protocol."""

import pytest

from repro.errors import KernelError
from repro.events.block import EventBlock
from repro.store import (
    CheckpointManager,
    ClusterStore,
    DELIVERED,
    IN_FLIGHT,
    NodeJournal,
    NOTICED,
    Outbox,
    PARKED,
    REC_ACK,
    REC_CHECKPOINT,
    REC_POST,
    REC_REG,
)
from repro.store.journal import RECORD_SIZES


def make_journal():
    return NodeJournal(node_id=0)


def make_block(event="PING"):
    return EventBlock(event=event)


class TestNodeJournal:
    def test_appends_are_lsn_ordered(self):
        journal = make_journal()
        r1 = journal.append(REC_POST, entry_id=(0, 1))
        r2 = journal.append(REC_ACK, entry_id=(0, 1), status=DELIVERED)
        assert (r1.lsn, r2.lsn) == (1, 2)
        assert [r.rtype for r in journal] == [REC_POST, REC_ACK]
        assert journal.appends == 2
        assert journal.bytes_appended == (RECORD_SIZES[REC_POST]
                                          + RECORD_SIZES[REC_ACK])

    def test_unknown_record_type_rejected(self):
        with pytest.raises(KernelError):
            make_journal().append("scribble")

    def test_replay_without_checkpoint_returns_everything(self):
        journal = make_journal()
        journal.append(REC_POST, entry_id=(0, 1))
        journal.append(REC_REG, oid=1, event="PING", fn_name="on_ping")
        state, tail = journal.replay()
        assert state is None
        assert [r.rtype for r in tail] == [REC_POST, REC_REG]

    def test_checkpoint_splits_replay_at_newest(self):
        journal = make_journal()
        journal.append(REC_POST, entry_id=(0, 1))
        journal.append(REC_CHECKPOINT, state={"mark": "old"})
        journal.append(REC_CHECKPOINT, state={"mark": "new"})
        journal.append(REC_POST, entry_id=(0, 2))
        state, tail = journal.replay()
        assert state == {"mark": "new"}
        assert [r.rtype for r in tail] == [REC_POST]
        assert tail[0].data["entry_id"] == (0, 2)

    def test_truncate_before_drops_prefix_only(self):
        journal = make_journal()
        for i in range(5):
            journal.append(REC_POST, entry_id=(0, i + 1))
        dropped = journal.truncate_before(4)
        assert dropped == 3
        assert [r.lsn for r in journal] == [4, 5]
        assert journal.truncations == 1
        assert journal.records_truncated == 3
        # lsn counter keeps climbing after truncation
        assert journal.append(REC_POST, entry_id=(0, 9)).lsn == 6


class TestOutbox:
    def test_record_is_write_ahead_and_pending(self):
        journal = make_journal()
        outbox = Outbox(journal)
        entry = outbox.record(make_block(), "object", dst=2, now=1.5)
        assert entry.entry_id == (0, 1)
        assert entry.status == IN_FLIGHT
        assert [r.rtype for r in journal] == [REC_POST]
        assert outbox.pending() == [entry]

    def test_resolve_journals_ack_and_retires(self):
        outbox = Outbox(make_journal())
        entry = outbox.record(make_block(), "object", dst=1, now=0.0)
        assert outbox.resolve(entry.entry_id, DELIVERED)
        assert not outbox.resolve(entry.entry_id, DELIVERED)  # idempotent
        assert outbox.pending() == []
        assert entry.resolved
        assert [r.rtype for r in outbox.journal] == [REC_POST, REC_ACK]
        assert outbox.delivered == 1

    def test_noticed_counts_separately(self):
        outbox = Outbox(make_journal())
        entry = outbox.record(make_block(), "thread", dst=None, now=0.0)
        outbox.resolve(entry.entry_id, NOTICED)
        assert outbox.noticed == 1 and outbox.delivered == 0

    def test_park_and_redispatch_cycle(self):
        outbox = Outbox(make_journal())
        entry = outbox.record(make_block(), "object", dst=3, now=0.0)
        assert outbox.park(entry.entry_id)
        assert entry.status == PARKED
        assert outbox.parked() == [entry]
        outbox.mark_dispatched(entry)
        assert entry.status == IN_FLIGHT
        assert entry.redeliveries == 1 and entry.attempts == 2
        assert outbox.redelivered == 1

    def test_pending_for_filters_by_destination(self):
        outbox = Outbox(make_journal())
        a = outbox.record(make_block(), "object", dst=1, now=0.0)
        outbox.record(make_block(), "object", dst=2, now=0.0)
        t = outbox.record(make_block(), "thread", dst=None, now=0.0)
        assert outbox.pending_for(1) == [a]
        assert t not in outbox.pending_for(1)

    def test_replay_rebuilds_pending_as_parked(self):
        journal = make_journal()
        outbox = Outbox(journal)
        kept = outbox.record(make_block(), "object", dst=1, now=0.0)
        gone = outbox.record(make_block(), "object", dst=2, now=0.0)
        outbox.resolve(gone.entry_id, DELIVERED)
        rebuilt = Outbox(journal)
        for record in journal:
            rebuilt.apply_record(record)
        assert [e.entry_id for e in rebuilt.pending()] == [kept.entry_id]
        assert rebuilt.pending()[0].status == PARKED
        # the sequence counter resumes past everything replayed
        again = rebuilt.record(make_block(), "object", dst=1, now=0.0)
        assert again.entry_id == (0, 3)


class TestCheckpointManager:
    def test_interval_counts_payload_appends_only(self):
        journal = make_journal()
        cm = CheckpointManager(journal, interval=3)
        assert [cm.note_append() for _ in range(3)] == [False, False, True]
        cm.take({"n": 1})
        # checkpoint reset the counter
        assert cm.note_append() is False

    def test_take_truncates_covered_prefix(self):
        journal = make_journal()
        cm = CheckpointManager(journal, interval=None)
        for i in range(4):
            journal.append(REC_POST, entry_id=(0, i + 1))
        dropped = cm.take({"snapshot": True})
        assert dropped == 4
        state, tail = journal.replay()
        assert state == {"snapshot": True}
        assert tail == []
        assert cm.taken == 1

    def test_disabled_interval_never_due(self):
        cm = CheckpointManager(make_journal(), interval=None)
        assert not any(cm.note_append() for _ in range(100))


class TestClusterStore:
    def test_journals_are_per_node_and_stable(self):
        store = ClusterStore()
        j0 = store.journal(0)
        assert store.journal(0) is j0
        assert store.journal(1) is not j0
        j0.append(REC_POST, entry_id=(0, 1))
        assert store.stats()["appends"] == 1
