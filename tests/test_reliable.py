"""Unit tests for the at-least-once reliable channel and the extended
fault plan (selective heal, one-way partitions, per-type counters)."""

import pytest

from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan
from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.reliable import MSG_REL_ACK, ReliableChannel
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator


def make_pair(plan=None, **channel_kw):
    """Two nodes wired through a fabric, each with a reliable endpoint."""
    sim = Simulator()
    fabric = Fabric(sim, FixedLatency(1e-3), faults=plan or FaultPlan())
    channels = {}
    delivered = []

    def endpoint(node):
        def deliver(msg):
            ch = channels[node]
            if msg.ack is not None:  # piggybacked cumulative ack
                ch.on_cum_ack(msg.src, msg.ack)
            if msg.mtype == MSG_REL_ACK:
                ch.on_ack(msg)
                return
            if msg.rel is not None and not ch.accept(msg):
                return
            delivered.append((node, msg.payload))
        return deliver

    for node in (0, 1):
        channels[node] = ReliableChannel(sim, fabric, node, **channel_kw)
        fabric.attach(node, endpoint(node))
    return sim, fabric, channels, delivered


class TestReliableChannel:
    def test_clean_link_single_delivery_and_ack(self):
        sim, fabric, channels, delivered = make_pair()
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="hi"))
        sim.run()
        assert delivered == [(1, "hi")]
        assert channels[0].stats()["retransmits"] == 0
        assert channels[0].stats()["pending"] == 0
        assert channels[1].stats()["acks_sent"] == 1

    def test_retransmits_through_loss(self):
        plan = FaultPlan(RngRegistry(3), drop_rate=0.5)
        sim, fabric, channels, delivered = make_pair(plan)
        for i in range(20):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        sim.run()
        # every message eventually arrives exactly once, in spite of loss
        assert sorted(p for _, p in delivered) == list(range(20))
        assert channels[0].stats()["retransmits"] > 0
        assert channels[0].stats()["pending"] == 0

    def test_duplicates_suppressed(self):
        plan = FaultPlan(RngRegistry(0), duplicate_rate=1.0)
        sim, fabric, channels, delivered = make_pair(plan)
        for i in range(5):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        sim.run()
        assert sorted(p for _, p in delivered) == list(range(5))
        assert channels[1].duplicates_suppressed > 0

    def test_gives_up_after_budget(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        sim, fabric, channels, delivered = make_pair(
            plan, max_retransmits=3)
        lost = []
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="gone"),
                         on_give_up=lost.append)
        sim.run()
        assert delivered == []
        assert len(lost) == 1 and lost[0].payload == "gone"
        stats = channels[0].stats()
        assert stats["gave_up"] == 1
        assert stats["retransmits"] == 3
        assert stats["pending"] == 0

    def test_local_and_broadcast_bypass(self):
        sim, fabric, channels, delivered = make_pair()
        channels[0].send(Message(src=0, dst=0, mtype="x", payload="self"))
        sim.run()
        assert delivered == [(0, "self")]
        # no rel header, no pending state, no acks
        assert channels[0].stats()["sends"] == 0
        assert channels[0].stats()["pending"] == 0

    def test_reset_discards_pending_but_keeps_seq(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        sim, fabric, channels, delivered = make_pair(plan)
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="old"))
        seq_before = channels[0].next_seq_for(1)
        channels[0].reset()
        sim.run()
        assert channels[0].stats()["pending"] == 0
        plan.heal()
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="new"))
        sim.run()
        assert delivered == [(1, "new")]
        assert channels[0].next_seq_for(1) > seq_before

    def test_dedup_survives_very_late_duplicate(self):
        sim, fabric, channels, delivered = make_pair(dedup_window=4)
        first = Message(src=0, dst=1, mtype="x", payload="first")
        channels[0].send(first)
        sim.run()
        # replay the first envelope long after its seq fell below the floor
        for i in range(10):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        fabric.send(first)
        sim.run()
        payloads = [p for _, p in delivered]
        assert payloads.count("first") == 1


class TestDuplicateDeliveryAliasing:
    def test_fault_duplicates_are_independent_envelopes(self):
        """A fault-injected duplicate must be its own envelope: mutating
        the first delivery's payload dict must not leak into the copy
        (the rel header alone is shared, for dedup)."""
        plan = FaultPlan(RngRegistry(0), duplicate_rate=1.0)
        sim = Simulator()
        fabric = Fabric(sim, FixedLatency(1e-3), faults=plan)
        received = []

        def deliver(msg):
            received.append(msg)
            msg.payload["count"] = msg.payload.get("count", 0) + 1

        fabric.attach(0, lambda msg: None)
        fabric.attach(1, deliver)
        fabric.send(Message(src=0, dst=1, mtype="x", payload={"v": 7}))
        sim.run()
        assert len(received) == 2
        first, second = received
        assert first is not second
        assert first.msg_id != second.msg_id
        assert first.payload is not second.payload
        # the receiver's mutation of copy #1 did not alias into copy #2
        assert second.payload["count"] == 1
        assert first.payload["v"] == second.payload["v"] == 7


class TestFaultPlanExtensions:
    def test_one_way_partition(self):
        plan = FaultPlan()
        plan.partition({0}, {1}, one_way=True)
        assert plan.is_cut(0, 1)
        assert not plan.is_cut(1, 0)

    def test_selective_heal(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        plan.partition({0}, {2})
        plan.heal({0}, {1})
        assert not plan.is_cut(0, 1) and not plan.is_cut(1, 0)
        assert plan.is_cut(0, 2) and plan.is_cut(2, 0)
        plan.heal()
        assert not plan.is_cut(0, 2)

    def test_heal_one_side_rejected(self):
        plan = FaultPlan()
        with pytest.raises(ValueError):
            plan.heal({0})

    def test_per_type_counters(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        plan.copies(Message(src=0, dst=1, mtype="a.req"))
        plan.copies(Message(src=0, dst=1, mtype="a.req"))
        plan.copies(Message(src=0, dst=1, mtype="b.req"))
        breakdown = plan.fault_breakdown()
        assert breakdown["dropped"] == {"a.req": 2, "b.req": 1}
        assert breakdown["duplicated"] == {}
        assert plan.dropped == 3
