"""Tests for the §9 baseline models and the E8 scenario matrix."""

from repro.baselines import (
    MachExceptionModel,
    MachTask,
    SCENARIOS,
    UnixProcess,
    UnixSignalModel,
    run_all,
    run_doct,
    run_mach,
    run_unix,
    score,
)


class TestUnixModel:
    def test_kill_runs_handler_on_some_thread(self):
        model = UnixSignalModel(seed=1)
        proc = model.register(UnixProcess(machine=0))
        proc.spawn_thread("a")
        proc.spawn_thread("b")
        ran = []
        proc.sigaction("SIGUSR1", lambda t, s: ran.append(t.name))
        outcome = model.kill(proc.pid, "SIGUSR1")
        assert outcome.delivered
        assert ran and ran[0] in ("a", "b")

    def test_arbitrary_thread_choice(self):
        """Over many deliveries the handler lands on different threads —
        the OSF/1 ad-hoc behaviour the paper criticises."""
        model = UnixSignalModel(seed=2)
        proc = model.register(UnixProcess(machine=0))
        for i in range(4):
            proc.spawn_thread(f"t{i}")
        proc.sigaction("SIGUSR1", lambda t, s: None)
        victims = {model.kill(proc.pid, "SIGUSR1").thread.name
                   for _ in range(50)}
        assert len(victims) > 1

    def test_blocked_threads_skipped(self):
        model = UnixSignalModel(seed=3)
        proc = model.register(UnixProcess(machine=0))
        a = proc.spawn_thread("a")
        b = proc.spawn_thread("b")
        a.blocked_signals.add("SIGUSR1")
        proc.sigaction("SIGUSR1", lambda t, s: None)
        for _ in range(10):
            assert model.kill(proc.pid, "SIGUSR1").thread is b

    def test_no_threads_no_delivery(self):
        model = UnixSignalModel()
        proc = model.register(UnixProcess(machine=0))
        proc.sigaction("SIGUSR1", lambda t, s: None)
        assert not model.kill(proc.pid, "SIGUSR1").delivered

    def test_cross_machine_blocked(self):
        model = UnixSignalModel()
        proc = model.register(UnixProcess(machine=1))
        proc.spawn_thread("t")
        proc.sigaction("SIGUSR1", lambda t, s: None)
        assert not model.kill(proc.pid, "SIGUSR1", from_machine=0).delivered

    def test_thread_addressed_kill_unsupported(self):
        model = UnixSignalModel()
        proc = model.register(UnixProcess(machine=0))
        proc.spawn_thread("t")
        assert not model.kill_thread(proc.pid, "t", "SIGUSR1").delivered

    def test_unknown_pid(self):
        model = UnixSignalModel()
        assert not model.kill(99999, "SIGUSR1").delivered


class TestMachModel:
    def test_thread_port_preferred(self):
        model = MachExceptionModel()
        task = model.register(MachTask(machine=0))
        thread = task.spawn_thread("t")
        thread.exception_port = lambda t, e: None
        task.error_port = lambda t, e: None
        outcome = model.raise_exception(task.task_id, thread,
                                        "EXC_ARITHMETIC")
        assert outcome.handled_by == "thread-port"

    def test_static_partition_routes_by_class(self):
        model = MachExceptionModel()
        task = model.register(MachTask(machine=0))
        thread = task.spawn_thread("t")
        task.error_port = lambda t, e: None
        task.debug_port = lambda t, e: None
        assert model.raise_exception(
            task.task_id, thread, "EXC_ARITHMETIC").handled_by == \
            "task-error-port"
        assert model.raise_exception(
            task.task_id, thread, "EXC_BREAKPOINT").handled_by == \
            "task-debug-port"

    def test_missing_class_port_fails(self):
        model = MachExceptionModel()
        task = model.register(MachTask(machine=0))
        thread = task.spawn_thread("t")
        task.error_port = lambda t, e: None  # no debug port
        outcome = model.raise_exception(task.task_id, thread,
                                        "EXC_BREAKPOINT")
        assert not outcome.delivered
        assert "static" in outcome.reason

    def test_taskless_and_remote_fail(self):
        model = MachExceptionModel()
        empty = model.register(MachTask(machine=0))
        empty.error_port = lambda t, e: None
        assert not model.raise_exception(empty.task_id, None,
                                         "EXC_ARITHMETIC").delivered
        remote = model.register(MachTask(machine=1))
        thread = remote.spawn_thread("t")
        remote.error_port = lambda t, e: None
        assert not model.raise_exception(remote.task_id, thread,
                                         "EXC_ARITHMETIC",
                                         from_machine=0).delivered


class TestScenarioMatrix:
    def test_doct_wins_every_scenario(self):
        results = run_doct(seed=0)
        assert len(results) == len(SCENARIOS)
        assert score(results) == 1.0

    def test_unix_fails_most_scenarios(self):
        assert score(run_unix(seed=0)) <= 0.4

    def test_mach_partial(self):
        results = run_mach()
        assert score(results) < 1.0
        by_name = {r.scenario: r for r in results}
        assert by_name["specific-thread-in-shared-space"].correct
        assert not by_name["passive-object"].correct

    def test_run_all_shape(self):
        table = run_all(seed=0)
        assert set(table) == {"unix", "mach", "doct"}
        for results in table.values():
            assert [r.scenario for r in results] == list(SCENARIOS)
