"""Tests for raise/raise_and_wait semantics — the §5.3 table.

| call                  | recipient                          |
|-----------------------|------------------------------------|
| raise(e, tid)         | thread tid                         |
| raise(e, gtid)        | threads in group gtid              |
| raise(e, oid)         | object oid                         |
| raise_and_wait(e,tid) | thread tid, synchronously          |
| raise_and_wait(e,gtid)| threads of group, synchronously    |
| raise_and_wait(e,oid) | object oid, synchronously          |
"""

import pytest

from repro import Decision, DistObject, entry
from repro.errors import DeadThreadError, EventError, UnknownEventError
from tests.conftest import Recorder, make_cluster


class Raiser(DistObject):
    """Raises events from inside a running thread."""

    @entry
    def fire(self, ctx, event, target, user_data=None):
        count = yield ctx.raise_event(event, target, user_data=user_data)
        return count

    @entry
    def fire_sync(self, ctx, event, target, user_data=None):
        value = yield ctx.raise_and_wait(event, target, user_data=user_data)
        return value


class Target(DistObject):
    """A thread body that records deliveries into shared state."""

    def __init__(self):
        super().__init__()
        self.deliveries = []

    @entry
    def wait_for_events(self, ctx, label):
        record = self.deliveries

        def on_user_event(hctx, block):
            record.append((label, block.event, block.user_data,
                           str(hctx.tid)))
            yield hctx.compute(1e-5)
            return (Decision.RESUME, f"{label}-handled")

        yield ctx.attach_handler("USER_EVENT", on_user_event)
        yield ctx.sleep(100.0)
        return "done"


@pytest.fixture()
def rig():
    cluster = make_cluster(n_nodes=4)
    cluster.register_event("USER_EVENT")
    target_obj = cluster.create_object(Target, node=2)
    raiser = cluster.create_object(Raiser, node=1)
    return cluster, target_obj, raiser


class TestRaiseToThread:
    def test_async_raise_delivers_and_does_not_block(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        thread = cluster.spawn(raiser, "fire", "USER_EVENT", victim.tid,
                               "payload", at=1)
        cluster.run(until=0.1)
        # raiser completed with recipient count without waiting
        assert thread.completion.result() == 1
        deliveries = cluster.get_object(target_obj).deliveries
        assert deliveries == [("v", "USER_EVENT", "payload",
                               str(victim.tid))]

    def test_sync_raise_blocks_until_handler_value(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        thread = cluster.spawn(raiser, "fire_sync", "USER_EVENT",
                               victim.tid, at=1)
        cluster.run(until=0.2)
        assert thread.completion.result() == "v-handled"

    def test_sync_raise_blocking_window_exceeds_async(self, rig):
        cluster, target_obj, raiser = rig
        v1 = cluster.spawn(target_obj, "wait_for_events", "a", at=3)
        cluster.run(until=0.05)

        class Timed(DistObject):
            @entry
            def both(self, ctx, tid):
                t0 = ctx.now
                yield ctx.raise_event("USER_EVENT", tid)
                async_window = ctx.now - t0
                t1 = ctx.now
                yield ctx.raise_and_wait("USER_EVENT", tid)
                sync_window = ctx.now - t1
                return async_window, sync_window

        timed = cluster.create_object(Timed, node=1)
        thread = cluster.spawn(timed, "both", v1.tid, at=1)
        cluster.run(until=0.5)
        async_window, sync_window = thread.completion.result()
        assert sync_window > async_window

    def test_raise_to_dead_thread_sync_fails(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        cluster.invoker.terminate_thread(victim)
        cluster.run()
        thread = cluster.spawn(raiser, "fire_sync", "USER_EVENT",
                               victim.tid, at=1)
        cluster.run()
        with pytest.raises(DeadThreadError):
            thread.completion.result()

    def test_raise_to_dead_thread_async_notifies_subscriber(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        cluster.invoker.terminate_thread(victim)
        cluster.run()
        notified = []

        class Subscriber(DistObject):
            @entry
            def go(self, ctx, dead_tid):
                def on_dead(hctx, block):
                    notified.append(block.user_data)
                    yield hctx.compute(0)

                yield ctx.attach_handler("TARGET_DEAD", on_dead)
                yield ctx.raise_event("USER_EVENT", dead_tid)
                yield ctx.sleep(1.0)
                return "ok"

        sub = cluster.create_object(Subscriber, node=1)
        thread = cluster.spawn(sub, "go", victim.tid, at=1)
        cluster.run()
        assert thread.completion.result() == "ok"
        assert notified and notified[0]["dead_tid"] == victim.tid

    def test_unregistered_event_rejected(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        thread = cluster.spawn(raiser, "fire", "NEVER_REGISTERED",
                               victim.tid, at=1)
        cluster.run()
        with pytest.raises(UnknownEventError):
            thread.completion.result()

    def test_bad_target_rejected(self, rig):
        cluster, target_obj, raiser = rig
        thread = cluster.spawn(raiser, "fire", "USER_EVENT",
                               "not-a-target", at=1)
        cluster.run()
        with pytest.raises(EventError):
            thread.completion.result()


class TestRaiseToGroup:
    def test_async_group_raise_reaches_all_members(self, rig):
        cluster, target_obj, raiser = rig
        gid = cluster.new_group()
        for i in range(3):
            cluster.spawn(target_obj, "wait_for_events", f"m{i}",
                          at=i, group=gid)
        cluster.run(until=0.05)
        thread = cluster.spawn(raiser, "fire", "USER_EVENT", gid, at=1)
        cluster.run(until=0.2)
        assert thread.completion.result() == 3
        labels = sorted(d[0] for d in
                        cluster.get_object(target_obj).deliveries)
        assert labels == ["m0", "m1", "m2"]

    def test_sync_group_raise_collects_all_values(self, rig):
        cluster, target_obj, raiser = rig
        gid = cluster.new_group()
        for i in range(3):
            cluster.spawn(target_obj, "wait_for_events", f"m{i}", at=i,
                          group=gid)
        cluster.run(until=0.05)
        thread = cluster.spawn(raiser, "fire_sync", "USER_EVENT", gid, at=1)
        cluster.run(until=0.5)
        assert sorted(thread.completion.result()) == [
            "m0-handled", "m1-handled", "m2-handled"]

    def test_raise_to_empty_group(self, rig):
        cluster, target_obj, raiser = rig
        gid = cluster.new_group()
        thread = cluster.spawn(raiser, "fire", "USER_EVENT", gid, at=1)
        cluster.run()
        assert thread.completion.result() == 0
        sync_thread = cluster.spawn(raiser, "fire_sync", "USER_EVENT", gid,
                                    at=1)
        cluster.run()
        with pytest.raises(DeadThreadError):
            sync_thread.completion.result()


class TestRaiseToObject:
    def test_async_raise_to_passive_object(self, rig):
        cluster, target_obj, raiser = rig
        cluster.register_event("PING")
        recorder = cluster.create_object(Recorder, node=3)
        thread = cluster.spawn(raiser, "fire", "PING", recorder, "hello",
                               at=1)
        cluster.run()
        assert thread.completion.result() == 1
        assert cluster.get_object(recorder).events == [
            ("PING", "hello", pytest.approx(cluster.get_object(
                recorder).events[0][2]))]

    def test_sync_raise_to_object_returns_handler_value(self, rig):
        cluster, target_obj, raiser = rig
        cluster.register_event("PING")
        recorder = cluster.create_object(Recorder, node=3)
        thread = cluster.spawn(raiser, "fire_sync", "PING", recorder, at=1)
        cluster.run()
        assert thread.completion.result() == "pong"

    def test_object_event_without_thread_inside(self, rig):
        """Persistence: passive objects handle events with no thread active
        in them (§3.1)."""
        cluster, target_obj, raiser = rig
        cluster.register_event("PING")
        recorder = cluster.create_object(Recorder, node=3)
        # no thread has ever invoked recorder; raise externally
        future = cluster.raise_and_wait("PING", recorder, from_node=0)
        cluster.run()
        assert future.result() == "pong"
        assert len(cluster.get_object(recorder).events) == 1


class TestExternalRaise:
    def test_external_async(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        future = cluster.raise_event("USER_EVENT", victim.tid, from_node=0)
        cluster.run(until=0.2)
        assert future.result() == 1
        assert cluster.get_object(target_obj).deliveries

    def test_external_sync_terminate(self, rig):
        cluster, target_obj, raiser = rig
        victim = cluster.spawn(target_obj, "wait_for_events", "v", at=3)
        cluster.run(until=0.05)
        future = cluster.raise_and_wait("TERMINATE", victim.tid,
                                        from_node=1)
        cluster.run()
        assert future.done
        assert victim.state == "terminated"
