"""Fault-injection tests: partitions, duplicates, timeouts, dead targets.

Fault tolerance proper is out of the paper's scope (§7.2), but the
behaviours that *are* defined must hold under injected faults: RPC
timeouts fire, duplicate messages are deduplicated, synchronous raisers
do not hang forever when the guard knob is set, and healing a partition
restores service.
"""

import pytest

from repro import Cluster, ClusterConfig, Decision, DistObject, entry
from repro.errors import RpcTimeout
from repro.net.faults import FaultPlan
from repro.sim.rng import RngRegistry
from tests.conftest import Echo, Sleeper


def make_faulty_cluster(plan=None, **cfg):
    config = ClusterConfig(**cfg)
    return Cluster(config, faults=plan or FaultPlan())


class TestRpcUnderFaults:
    def test_rpc_timeout_under_partition(self):
        plan = FaultPlan()
        cluster = make_faulty_cluster(plan, n_nodes=2)
        plan.partition({0}, {1})
        fut = cluster.kernels[0].rpc.request(1, "anything", timeout=0.5)
        cluster.run(until=2.0)
        with pytest.raises(RpcTimeout):
            fut.result()

    def test_heal_restores_rpc(self):
        plan = FaultPlan()
        cluster = make_faulty_cluster(plan, n_nodes=2)
        cluster.kernels[1].rpc.serve("ping", lambda payload, msg: "pong")
        plan.partition({0}, {1})
        dead = cluster.kernels[0].rpc.request(1, "ping", timeout=0.2)
        cluster.run(until=1.0)
        assert dead.failed
        plan.heal()
        alive = cluster.kernels[0].rpc.request(1, "ping", timeout=1.0)
        cluster.run(until=3.0)
        assert alive.result() == "pong"

    def test_duplicate_replies_deduplicated(self):
        plan = FaultPlan(RngRegistry(1), duplicate_rate=1.0)
        cluster = make_faulty_cluster(plan, n_nodes=2)
        calls = []
        cluster.kernels[1].rpc.serve(
            "count", lambda payload, msg: calls.append(1) or len(calls))
        fut = cluster.kernels[0].rpc.request(1, "count")
        cluster.run(until=1.0)
        # the request may arrive twice (service runs twice: at-least-once
        # semantics) but the caller sees exactly one result
        assert fut.done
        assert fut.result() in (1, 2)


class TestEventsUnderFaults:
    def test_sync_raise_times_out_when_partitioned(self):
        plan = FaultPlan()
        cluster = make_faulty_cluster(plan, n_nodes=3,
                                      sync_raise_timeout=0.5)
        sleeper = cluster.create_object(Sleeper, node=2)
        thread = cluster.spawn(sleeper, "hold", 1e6, at=1)
        cluster.run(until=1.0)
        plan.partition({0}, {1, 2})
        future = cluster.raise_and_wait("INTERRUPT", thread.tid,
                                        from_node=0)
        cluster.run(until=5.0)
        with pytest.raises(RpcTimeout):
            future.result()

    def test_async_raise_after_heal_succeeds(self):
        plan = FaultPlan()
        cluster = make_faulty_cluster(plan, n_nodes=3)
        pokes = []

        class Target(DistObject):
            @entry
            def hold(self, ctx):
                def on_poke(hctx, block):
                    pokes.append(hctx.now)
                    yield hctx.compute(0)
                    return Decision.RESUME

                yield ctx.attach_handler("INTERRUPT", on_poke)
                yield ctx.sleep(1e6)

        target = cluster.create_object(Target, node=2)
        thread = cluster.spawn(target, "hold", at=2)
        cluster.run(until=1.0)
        plan.partition({0}, {2})
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=2.0)
        assert pokes == []  # cut off
        plan.heal()
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=4.0)
        assert len(pokes) == 1

    def test_dead_target_detection_not_confused_by_faults(self):
        cluster = make_faulty_cluster(n_nodes=3)
        echo = cluster.create_object(Echo, node=1)
        thread = cluster.spawn(echo, "echo", 1, at=0)
        cluster.run()
        assert not thread.alive
        from repro.errors import DeadThreadError

        future = cluster.raise_and_wait("INTERRUPT", thread.tid,
                                        from_node=2)
        cluster.run()
        with pytest.raises(DeadThreadError):
            future.result()


class TestInvocationUnderFaults:
    def test_partitioned_invocation_leaves_thread_pending(self):
        """A migration message lost to a partition stalls the thread —
        the documented limitation (fault tolerance out of scope, §7.2) —
        but nothing else breaks and the cluster stays serviceable."""
        plan = FaultPlan()
        cluster = make_faulty_cluster(plan, n_nodes=3)
        echo = cluster.create_object(Echo, node=2)
        plan.partition({0}, {2})
        stuck = cluster.spawn(echo, "echo", 1, at=0)
        cluster.run(until=1.0)
        assert stuck.alive  # stalled, not crashed
        # unrelated work on unpartitioned links proceeds
        other = cluster.create_object(Echo, node=1)
        fine = cluster.spawn(other, "echo", 2, at=1)
        cluster.run(until=2.0)
        assert fine.completion.result() == 2
        # and a terminate still cleans the stuck thread up
        cluster.invoker.terminate_thread(stuck, reason="operator")
        cluster.run(until=3.0)
        assert stuck.state == "terminated"
