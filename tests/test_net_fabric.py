"""Unit tests for the message fabric, latency models and fault plans."""

import pytest

from repro.errors import NetworkError, UnknownNodeError
from repro.net import (
    BandwidthLatency,
    Fabric,
    FaultPlan,
    FixedLatency,
    LognormalLatency,
    Message,
    MulticastRegistry,
    UniformLatency,
    multicast_address,
)
from repro.sim import RngRegistry, Simulator, Tracer


def make_cluster(n=3, **fabric_kwargs):
    sim = Simulator()
    fabric = Fabric(sim, **fabric_kwargs)
    inboxes = {i: [] for i in range(n)}
    for i in range(n):
        fabric.attach(i, (lambda i: lambda m: inboxes[i].append(m))(i))
    return sim, fabric, inboxes


class TestPointToPoint:
    def test_message_arrives_after_latency(self):
        sim, fabric, inboxes = make_cluster(latency=FixedLatency(0.5))
        fabric.send(Message(src=0, dst=1, mtype="ping"))
        assert inboxes[1] == []  # not synchronous
        sim.run()
        assert len(inboxes[1]) == 1
        assert sim.now == 0.5

    def test_local_messages_are_faster(self):
        sim, fabric, inboxes = make_cluster(latency=FixedLatency(1.0))
        fabric.send(Message(src=0, dst=0, mtype="self"))
        sim.run()
        assert sim.now == pytest.approx(0.01)

    def test_unknown_destination_raises(self):
        sim, fabric, _ = make_cluster()
        with pytest.raises(UnknownNodeError):
            fabric.send(Message(src=0, dst=99, mtype="x"))

    def test_double_attach_rejected(self):
        sim, fabric, _ = make_cluster()
        with pytest.raises(NetworkError):
            fabric.attach(0, lambda m: None)

    def test_detach_drops_in_flight(self):
        sim, fabric, inboxes = make_cluster()
        fabric.send(Message(src=0, dst=1, mtype="x"))
        fabric.detach(1)
        sim.run()
        assert inboxes[1] == []
        assert fabric.stats.dropped == 1

    def test_payload_passes_through_unmodified(self):
        sim, fabric, inboxes = make_cluster()
        payload = {"k": [1, 2, 3]}
        fabric.send(Message(src=0, dst=2, mtype="data", payload=payload))
        sim.run()
        assert inboxes[2][0].payload is payload

    def test_fifo_between_same_pair_with_fixed_latency(self):
        sim, fabric, inboxes = make_cluster(latency=FixedLatency(0.1))
        for i in range(5):
            fabric.send(Message(src=0, dst=1, mtype="seq", payload=i))
        sim.run()
        assert [m.payload for m in inboxes[1]] == list(range(5))


class TestBroadcast:
    def test_broadcast_reaches_all_but_sender(self):
        sim, fabric, inboxes = make_cluster(n=4)
        count = fabric.broadcast(src=1, mtype="hello")
        sim.run()
        assert count == 3
        assert len(inboxes[0]) == 1
        assert len(inboxes[1]) == 0
        assert len(inboxes[2]) == 1
        assert len(inboxes[3]) == 1

    def test_broadcast_counts_per_copy(self):
        sim, fabric, _ = make_cluster(n=5)
        fabric.broadcast(src=0, mtype="b")
        sim.run()
        assert fabric.stats.count("b") == 4


class TestMulticast:
    def test_multicast_reaches_members_only(self):
        sim, fabric, inboxes = make_cluster(n=4)
        fabric.multicast_groups.join("g", 1)
        fabric.multicast_groups.join("g", 3)
        sent = fabric.multicast(src=0, group="g", mtype="m")
        sim.run()
        assert sent == 2
        assert len(inboxes[1]) == 1
        assert len(inboxes[3]) == 1
        assert len(inboxes[2]) == 0

    def test_multicast_to_empty_group_sends_nothing(self):
        sim, fabric, inboxes = make_cluster()
        assert fabric.multicast(src=0, group="none", mtype="m") == 0
        sim.run()
        assert all(not msgs for msgs in inboxes.values())

    def test_send_to_multicast_address(self):
        sim, fabric, inboxes = make_cluster()
        fabric.multicast_groups.join("g", 2)
        fabric.send(Message(src=0, dst=multicast_address("g"), mtype="m"))
        sim.run()
        assert len(inboxes[2]) == 1


class TestFanOutUnderFaults:
    """Broadcast/multicast against one-way partitions and crashed
    members: fan-out charges every copy, the faulty links eat theirs."""

    def test_broadcast_under_one_way_partition(self):
        plan = FaultPlan()
        plan.partition({0}, {2}, one_way=True)
        sim, fabric, inboxes = make_cluster(n=4, faults=plan)
        count = fabric.broadcast(src=0, mtype="gossip")
        sim.run()
        # the copy toward the cut direction is charged then eaten
        assert count == 3
        assert len(inboxes[1]) == 1
        assert len(inboxes[2]) == 0
        assert len(inboxes[3]) == 1
        assert fabric.stats.dropped == 1
        # the healthy reverse direction still works
        fabric.send(Message(src=2, dst=0, mtype="reply"))
        sim.run()
        assert len(inboxes[0]) == 1

    def test_broadcast_skips_crashed_member(self):
        sim, fabric, inboxes = make_cluster(n=4)
        fabric.detach(2)  # fail-stop: endpoint gone, id still known
        count = fabric.broadcast(src=0, mtype="gossip")
        sim.run()
        # a crashed node is not a broadcast target at all — the fan-out
        # enumerates live endpoints, so no copy is charged or dropped
        assert count == 2
        assert len(inboxes[1]) == 1
        assert inboxes[2] == []
        assert len(inboxes[3]) == 1
        assert fabric.stats.dropped == 0

    def test_broadcast_drops_copy_to_node_crashing_in_flight(self):
        sim, fabric, inboxes = make_cluster(n=3)
        fabric.broadcast(src=0, mtype="gossip")
        fabric.detach(1)  # crashes while the copies are on the wire
        sim.run()
        assert inboxes[1] == []
        assert len(inboxes[2]) == 1
        assert fabric.stats.dropped == 1

    def test_multicast_under_one_way_partition(self):
        plan = FaultPlan()
        plan.partition({0}, {3}, one_way=True)
        sim, fabric, inboxes = make_cluster(n=4, faults=plan)
        for member in (1, 2, 3):
            fabric.multicast_groups.join("g", member)
        sent = fabric.multicast(src=0, group="g", mtype="m")
        sim.run()
        assert sent == 3  # membership decides the charge, not the cuts
        assert len(inboxes[1]) == 1
        assert len(inboxes[2]) == 1
        assert len(inboxes[3]) == 0
        assert fabric.stats.dropped == 1
        # members behind the cut can still talk *to* the sender's side
        fabric.send(Message(src=3, dst=0, mtype="m"))
        sim.run()
        assert len(inboxes[0]) == 1

    def test_multicast_with_crashed_member(self):
        sim, fabric, inboxes = make_cluster(n=4)
        for member in (1, 2, 3):
            fabric.multicast_groups.join("g", member)
        fabric.detach(2)  # crashed but never left the group
        sent = fabric.multicast(src=0, group="g", mtype="m")
        sim.run()
        # the group keeps its membership; the crashed member's copy is
        # charged and swallowed by the wire (reliability lives above)
        assert sent == 3
        assert len(inboxes[1]) == 1
        assert inboxes[2] == []
        assert len(inboxes[3]) == 1
        assert fabric.stats.dropped == 1

    def test_one_way_heal_restores_multicast(self):
        plan = FaultPlan()
        plan.partition({0}, {1}, one_way=True)
        sim, fabric, inboxes = make_cluster(n=3, faults=plan)
        fabric.multicast_groups.join("g", 1)
        fabric.multicast(src=0, group="g", mtype="m")
        sim.run()
        assert inboxes[1] == []
        plan.heal({0}, {1})
        fabric.multicast(src=0, group="g", mtype="m")
        sim.run()
        assert len(inboxes[1]) == 1


class TestMulticastRegistry:
    def test_join_leave(self):
        reg = MulticastRegistry()
        assert reg.join("g", 1) is True
        assert reg.join("g", 1) is False
        assert reg.members("g") == frozenset({1})
        assert reg.leave("g", 1) is True
        assert reg.leave("g", 1) is False
        assert reg.members("g") == frozenset()

    def test_groups_of(self):
        reg = MulticastRegistry()
        reg.join("a", 1)
        reg.join("b", 1)
        reg.join("a", 2)
        assert reg.groups_of(1) == frozenset({"a", "b"})

    def test_dissolve(self):
        reg = MulticastRegistry()
        reg.join("g", 1)
        reg.dissolve("g")
        assert reg.members("g") == frozenset()

    def test_dissolve_counts_each_member_as_a_leave(self):
        reg = MulticastRegistry()
        for node in (1, 2, 3):
            reg.join("g", node)
        reg.dissolve("g")
        assert reg.leaves == 3
        assert reg.joins - reg.leaves == 0

    def test_dissolve_missing_or_empty_group_counts_nothing(self):
        reg = MulticastRegistry()
        reg.dissolve("ghost")
        assert reg.leaves == 0

    def test_join_leave_balance_invariant(self):
        """joins - leaves must always equal the number of live
        memberships, whichever mix of leave/dissolve removed them."""
        reg = MulticastRegistry()
        reg.join("a", 1)
        reg.join("a", 2)
        reg.join("b", 1)
        reg.join("b", 3)
        reg.leave("a", 2)
        reg.dissolve("b")
        live = sum(len(reg.members(g)) for g in ("a", "b"))
        assert reg.joins - reg.leaves == live == 1

    def test_require_members_raises_when_empty(self):
        reg = MulticastRegistry()
        with pytest.raises(NetworkError):
            reg.require_members("g")


class TestFaults:
    def test_drop_rate_one_drops_everything(self):
        sim, fabric, inboxes = make_cluster(
            faults=FaultPlan(RngRegistry(1), drop_rate=1.0))
        fabric.send(Message(src=0, dst=1, mtype="x"))
        sim.run()
        assert inboxes[1] == []
        assert fabric.stats.dropped == 1

    def test_local_messages_never_dropped(self):
        sim, fabric, inboxes = make_cluster(
            faults=FaultPlan(RngRegistry(1), drop_rate=1.0))
        fabric.send(Message(src=0, dst=0, mtype="x"))
        sim.run()
        assert len(inboxes[0]) == 1

    def test_duplicate_rate_one_duplicates(self):
        sim, fabric, inboxes = make_cluster(
            faults=FaultPlan(RngRegistry(1), duplicate_rate=1.0))
        fabric.send(Message(src=0, dst=1, mtype="x"))
        sim.run()
        assert len(inboxes[1]) == 2

    def test_partition_cuts_both_directions(self):
        plan = FaultPlan()
        plan.partition({0, 1}, {2})
        sim, fabric, inboxes = make_cluster(faults=plan)
        fabric.send(Message(src=0, dst=2, mtype="x"))
        fabric.send(Message(src=2, dst=1, mtype="x"))
        fabric.send(Message(src=0, dst=1, mtype="x"))
        sim.run()
        assert inboxes[2] == []
        assert len(inboxes[1]) == 1  # only the intra-side message

    def test_heal_restores_connectivity(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        plan.heal()
        sim, fabric, inboxes = make_cluster(faults=plan)
        fabric.send(Message(src=0, dst=1, mtype="x"))
        sim.run()
        assert len(inboxes[1]) == 1


class TestLatencyModels:
    def test_fixed_rejects_negative(self):
        with pytest.raises(NetworkError):
            FixedLatency(-1.0)

    def test_uniform_within_bounds(self):
        model = UniformLatency(RngRegistry(5), low=0.1, high=0.2)
        msg = Message(src=0, dst=1, mtype="x")
        for _ in range(100):
            assert 0.1 <= model.delay(0, 1, msg) <= 0.2

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(NetworkError):
            UniformLatency(RngRegistry(5), low=0.5, high=0.1)

    def test_lognormal_positive(self):
        model = LognormalLatency(RngRegistry(5), median=1e-3)
        msg = Message(src=0, dst=1, mtype="x")
        assert all(model.delay(0, 1, msg) > 0 for _ in range(50))

    def test_bandwidth_charges_for_size(self):
        model = BandwidthLatency(propagation=0.0, bandwidth=1000.0)
        small = Message(src=0, dst=1, mtype="x", size=100)
        big = Message(src=0, dst=1, mtype="x", size=1000)
        assert model.delay(0, 1, big) == pytest.approx(
            10 * model.delay(0, 1, small))

    def test_models_reproducible_across_runs(self):
        def draws(model_cls):
            model = model_cls(RngRegistry(42), 0.1, 0.9)
            msg = Message(src=0, dst=1, mtype="x")
            return [model.delay(0, 1, msg) for _ in range(5)]

        assert draws(UniformLatency) == draws(UniformLatency)


class TestStatsAndTrace:
    def test_stats_snapshot_delta(self):
        sim, fabric, _ = make_cluster()
        fabric.send(Message(src=0, dst=1, mtype="a"))
        before = fabric.stats.snapshot()
        fabric.send(Message(src=0, dst=1, mtype="a"))
        fabric.send(Message(src=0, dst=2, mtype="b"))
        delta = fabric.stats.delta_since(before)
        assert delta["sent"] == 2
        assert delta["type:a"] == 1
        assert delta["type:b"] == 1

    def test_delta_since_key_appearing_after_snapshot(self):
        """A message type first seen after the snapshot must show up in
        the delta as a positive count, not a KeyError or omission."""
        sim, fabric, _ = make_cluster()
        fabric.send(Message(src=0, dst=1, mtype="a"))
        before = fabric.stats.snapshot()
        assert "type:fresh" not in before
        fabric.send(Message(src=0, dst=1, mtype="fresh"))
        fabric.send(Message(src=0, dst=1, mtype="fresh"))
        delta = fabric.stats.delta_since(before)
        assert delta["type:fresh"] == 2
        assert delta["type:a"] == 0

    def test_delta_since_vanished_key_goes_negative(self):
        """Keys present in the snapshot but gone from the live counters
        (a reset between the two) yield negative deltas — the honest
        answer, not a silent drop of the key."""
        sim, fabric, _ = make_cluster()
        fabric.send(Message(src=0, dst=1, mtype="a", size=10))
        before = fabric.stats.snapshot()
        fabric.stats.reset()
        delta = fabric.stats.delta_since(before)
        assert delta["type:a"] == -1
        assert delta["sent"] == -1
        assert delta["bytes_sent"] == -10
        # every key from either side is present in the delta
        assert set(delta) >= set(before)

    def test_count_prefix(self):
        sim, fabric, _ = make_cluster()
        fabric.send(Message(src=0, dst=1, mtype="rpc.request"))
        fabric.send(Message(src=0, dst=1, mtype="rpc.reply"))
        fabric.send(Message(src=0, dst=1, mtype="event.post"))
        assert fabric.stats.count_prefix("rpc.") == 2

    def test_tracer_sees_send_and_deliver(self):
        sim = Simulator()
        tracer = Tracer(sim)
        fabric = Fabric(sim, tracer=tracer)
        got = []
        fabric.attach(0, got.append)
        fabric.attach(1, got.append)
        fabric.send(Message(src=0, dst=1, mtype="x"))
        sim.run()
        assert tracer.count("net", "send") == 1
        assert tracer.count("net", "deliver") == 1

    def test_reply_envelope_swaps_endpoints(self):
        msg = Message(src=3, dst=7, mtype="rpc.request")
        reply = msg.reply_envelope("rpc.reply", payload="ok")
        assert reply.src == 7
        assert reply.dst == 3
        assert reply.payload == "ok"


class TestLatencyReservoir:
    def test_empty_reservoir(self):
        from repro.net.stats import LatencyReservoir

        res = LatencyReservoir(capacity=8)
        assert res.count == 0
        assert res.mean == 0.0
        assert res.p50 == 0.0
        assert res.last(3) == []
        assert res.summary() == {"count": 0, "mean": 0.0, "p50": 0.0,
                                 "p99": 0.0, "retained": 0}

    def test_running_aggregates_survive_eviction(self):
        from repro.net.stats import LatencyReservoir

        res = LatencyReservoir(capacity=4)
        for i in range(10):
            res.record("EVT", float(i))
        # count/mean cover everything ever recorded ...
        assert res.count == 10
        assert res.mean == sum(range(10)) / 10
        # ... the window keeps only the newest `capacity` samples.
        assert len(res) == 4
        assert res.last(2) == [("EVT", 8.0), ("EVT", 9.0)]
        assert res.p50 == 8.0  # nearest rank over [6, 7, 8, 9]
        assert res.p99 == 9.0

    def test_exactly_capacity_samples_keeps_everything(self):
        """At exactly ``capacity`` samples nothing has been evicted:
        the window, the aggregates and the percentiles all see every
        sample — and the very next record evicts only the oldest."""
        from repro.net.stats import LatencyReservoir

        res = LatencyReservoir(capacity=5)
        for i in range(5):
            res.record("EVT", float(i))
        assert len(res) == res.capacity == 5
        assert res.count == 5
        assert res.last(5) == [("EVT", float(i)) for i in range(5)]
        assert res.mean == 2.0
        assert res.p50 == 2.0  # nearest rank over the full [0..4]
        assert res.p99 == 4.0
        assert res.summary()["retained"] == 5
        res.record("EVT", 5.0)
        assert len(res) == 5  # still bounded
        assert res.count == 6  # aggregates keep counting
        assert res.last(5)[0] == ("EVT", 1.0)  # only the oldest left

    def test_capacity_validated(self):
        import pytest

        from repro.net.stats import LatencyReservoir

        with pytest.raises(ValueError):
            LatencyReservoir(capacity=0)
