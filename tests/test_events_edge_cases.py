"""Edge-case interleavings of the event machinery.

These are the scenarios the paper's prose glosses over: events arriving
during handler execution, termination racing delivery, handlers mutating
the registry mid-chain, events chasing threads mid-migration.
"""

import pytest

from repro import Decision, DistObject, entry
from repro.errors import DeadThreadError
from tests.conftest import Sleeper, make_cluster


def _rig(n_nodes=3, **cfg):
    cluster = make_cluster(n_nodes=n_nodes, **cfg)
    cluster.register_event("EVT")
    cluster.register_event("EVT2")
    return cluster


class TestQueuedNotices:
    def test_multiple_pending_notices_delivered_in_order(self):
        cluster = _rig()
        seen = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def h(hctx, block):
                    seen.append(block.user_data)
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", h)
                yield ctx.compute(0.5)  # events queue during the compute
                yield ctx.sleep(0.5)
                return seen

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.1)
        for i in range(4):
            cluster.raise_event("EVT", thread.tid, from_node=1,
                                user_data=i)
            cluster.run(until=cluster.now + 0.02)
        cluster.run()
        assert thread.completion.result() == [0, 1, 2, 3]

    def test_event_raised_during_handler_is_queued(self):
        cluster = _rig()
        order = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def h1(hctx, block):
                    order.append(("h1", block.user_data))
                    yield hctx.sleep(0.05)  # slow handler
                    order.append(("h1-done", block.user_data))

                yield ctx.attach_handler("EVT", h1)
                yield ctx.sleep(1.0)
                return order

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data="a")
        cluster.run(until=cluster.now + 0.01)
        # second event arrives while the first handler still runs
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data="b")
        cluster.run()
        assert order == [("h1", "a"), ("h1-done", "a"),
                         ("h1", "b"), ("h1-done", "b")]

    def test_terminate_queued_behind_user_event(self):
        cluster = _rig()
        seen = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def h(hctx, block):
                    seen.append(block.event)
                    yield hctx.sleep(0.05)

                yield ctx.attach_handler("EVT", h)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=cluster.now + 0.005)
        cluster.raise_event("TERMINATE", thread.tid, from_node=1)
        cluster.run()
        # the user event's handler finished before the terminate applied
        assert seen == ["EVT"]
        assert thread.state == "terminated"


class TestRegistryMutationDuringDelivery:
    def test_handler_attaching_handler_for_other_event(self):
        cluster = _rig()
        seen = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def h2(hctx, block):
                    seen.append("h2")
                    yield hctx.compute(0)

                def h1(hctx, block):
                    seen.append("h1")
                    # arm a handler for a different event from inside a
                    # handler (the chain is shared thread state)
                    yield hctx.attach_handler("EVT2", h2)

                yield ctx.attach_handler("EVT", h1)
                yield ctx.sleep(2.0)
                return seen

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=cluster.now + 0.3)
        cluster.raise_event("EVT2", thread.tid, from_node=1)
        cluster.run()
        assert thread.completion.result() == ["h1", "h2"]

    def test_handler_detaching_itself_runs_once(self):
        cluster = _rig()
        seen = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def once(hctx, block):
                    seen.append(block.user_data)
                    yield hctx.detach_handler("EVT")
                    return Decision.RESUME

                yield ctx.attach_handler("EVT", once)
                yield ctx.sleep(2.0)
                return seen

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data=1)
        cluster.run(until=cluster.now + 0.3)
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data=2)
        cluster.run()
        # second raise found no handler; default for user events = RESUME
        assert thread.completion.result() == [1]


class TestRaceWithTermination:
    def test_event_to_terminating_thread_reports_dead(self):
        cluster = _rig()
        sleeper = cluster.create_object(Sleeper, node=2)
        thread = cluster.spawn(sleeper, "hold", 100.0, at=0)
        cluster.run(until=0.1)
        cluster.invoker.terminate_thread(thread)
        # raise before the unwind finishes propagating
        future = cluster.raise_and_wait("EVT", thread.tid, from_node=1)
        cluster.run()
        with pytest.raises(DeadThreadError):
            future.result()

    def test_sync_raiser_resumed_when_target_terminated_by_handler(self):
        cluster = _rig()

        class App(DistObject):
            @entry
            def go(self, ctx):
                def h(hctx, block):
                    yield hctx.compute(0)
                    return Decision.TERMINATE

                yield ctx.attach_handler("EVT", h)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.1)
        future = cluster.raise_and_wait("EVT", thread.tid, from_node=1)
        cluster.run()
        # the raiser is resumed even though the target died handling it
        assert future.done
        assert thread.state == "terminated"

    def test_terminated_raiser_does_not_break_delivery(self):
        cluster = _rig()
        seen = []

        class Raiser(DistObject):
            @entry
            def fire_and_die(self, ctx, target_tid):
                yield ctx.raise_event("EVT", target_tid, user_data="gift")
                yield ctx.sleep(100.0)

        class Target(DistObject):
            @entry
            def absorb(self, ctx):
                def h(hctx, block):
                    seen.append(block.user_data)
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", h)
                yield ctx.sleep(1.0)
                return seen

        target_obj = cluster.create_object(Target, node=2)
        raiser_obj = cluster.create_object(Raiser, node=1)
        target = cluster.spawn(target_obj, "absorb", at=2)
        cluster.run(until=0.1)
        raiser = cluster.spawn(raiser_obj, "fire_and_die", target.tid,
                               at=1)
        cluster.run(until=0.15)
        cluster.invoker.terminate_thread(raiser)
        cluster.run()
        assert target.completion.result() == ["gift"]


class TestChasing:
    def test_event_follows_thread_that_moves_after_locate(self):
        """The thread migrates between locate and delivery; the notice is
        forwarded (or relocated) rather than lost."""
        cluster = _rig(n_nodes=4, locator="path")

        class Mover(DistObject):
            @entry
            def shuttle(self, ctx, stops, hits):
                def h(hctx, block):
                    hits.append(hctx.node)
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", h)
                for stop in stops:
                    yield ctx.invoke(stop, "pause")
                yield ctx.sleep(5.0)
                return hits

            @entry
            def pause(self, ctx):
                yield ctx.sleep(0.0015)  # shorter than one message hop

        stops = [cluster.create_object(Mover, node=i % 3 + 1)
                 for i in range(6)]
        home = cluster.create_object(Mover, node=0)
        hits: list[int] = []
        thread = cluster.spawn(home, "shuttle", stops, hits, at=0)
        cluster.run(until=0.002)  # mid-flight
        cluster.raise_event("EVT", thread.tid, from_node=3)
        cluster.run()
        assert len(hits) == 1  # delivered exactly once, wherever it was

    def test_group_raise_with_members_on_every_node(self):
        cluster = _rig(n_nodes=6)
        sleeper = cluster.create_object(Sleeper, node=0)
        gid = cluster.new_group()
        members = [cluster.spawn(sleeper, "hold", 100.0, at=i, group=gid)
                   for i in range(6)]
        cluster.run(until=0.5)
        future = cluster.raise_and_wait("TERMINATE", gid, from_node=3)
        cluster.run()
        assert future.done
        assert all(m.state == "terminated" for m in members)
        assert not cluster.groups.exists(gid)


class TestSnapshotContents:
    def test_snapshot_reflects_suspension_point(self):
        cluster = _rig()
        captured = []

        class App(DistObject):
            @entry
            def outer(self, ctx, inner_cap):
                def h(hctx, block):
                    captured.append(block.snapshot)
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", h)
                result = yield ctx.invoke(inner_cap, "inner")
                return result

            @entry
            def inner(self, ctx):
                yield ctx.sleep(2.0)
                return "ok"

        outer_obj = cluster.create_object(App, node=0)
        inner_obj = cluster.create_object(App, node=2)
        thread = cluster.spawn(outer_obj, "outer", inner_obj, at=0)
        cluster.run(until=0.5)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run()
        (snapshot,) = captured
        assert [f.entry for f in snapshot.frames] == ["outer", "inner"]
        assert snapshot.frames[0].node == 0
        assert snapshot.frames[1].node == 2
        assert snapshot.program_counter[1] == "inner"
