"""Tests for the §7.1 thread-location strategies."""

import pytest

from repro import DistObject, entry
from repro.errors import DeadThreadError
from tests.conftest import Sleeper, make_cluster


def _deep_thread(cluster, depth):
    """Spawn a thread that migrates through `depth` nodes then holds."""
    n = cluster.config.n_nodes
    caps = [cluster.create_object(Sleeper, node=(i % (n - 1)) + 1)
            for i in range(depth)]
    thread = cluster.spawn(caps[0], "hop_and_hold", caps[1:], 1000.0, at=0)
    cluster.run(until=1.0)
    return thread


@pytest.mark.parametrize("locator", ["path", "broadcast", "multicast",
                                     "cached"])
class TestAllLocators:
    def test_finds_thread_at_root(self, locator):
        cluster = make_cluster(n_nodes=4, locator=locator)
        sleeper = cluster.create_object(Sleeper, node=0)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=0)
        cluster.run(until=0.5)
        cluster.raise_and_wait("TERMINATE", thread.tid, from_node=2)
        cluster.run()
        assert thread.state == "terminated"

    def test_finds_migrated_thread(self, locator):
        cluster = make_cluster(n_nodes=5, locator=locator)
        thread = _deep_thread(cluster, depth=3)
        assert thread.current_node != 0
        cluster.raise_and_wait("TERMINATE", thread.tid, from_node=0)
        cluster.run()
        assert thread.state == "terminated"

    def test_dead_thread_detected(self, locator):
        cluster = make_cluster(n_nodes=4, locator=locator)
        sleeper = cluster.create_object(Sleeper, node=2)
        thread = cluster.spawn(sleeper, "hold", 0.01, at=0)
        cluster.run()  # completes
        assert thread.state == "done"
        future = cluster.raise_and_wait("TERMINATE", thread.tid, from_node=1)
        cluster.run()
        with pytest.raises(DeadThreadError):
            future.result()

    def test_thread_that_returned_home(self, locator):
        """After remote calls return, the thread is innermost at its root
        again — all locators must find it there, not at stale nodes."""
        cluster = make_cluster(n_nodes=4, locator=locator)

        class HomeBody(DistObject):
            @entry
            def run(self, ctx, cap):
                yield ctx.invoke(cap, "echo_back")
                yield ctx.sleep(1000.0)

            @entry
            def echo_back(self, ctx):
                yield ctx.compute(1e-4)
                return "back"

        home = cluster.create_object(HomeBody, node=0)
        far = cluster.create_object(HomeBody, node=3)
        thread = cluster.spawn(home, "run", far, at=0)
        cluster.run(until=0.5)
        assert thread.current_node == 0
        cluster.raise_and_wait("TERMINATE", thread.tid, from_node=2)
        cluster.run()
        assert thread.state == "terminated"


class TestMessageCosts:
    def _posting_cost(self, locator, n_nodes, depth):
        cluster = make_cluster(n_nodes=n_nodes, locator=locator)
        thread = _deep_thread(cluster, depth=depth)
        before = cluster.fabric.stats.sent
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.5)
        return cluster.fabric.stats.sent - before

    def test_broadcast_cost_scales_with_cluster_size(self):
        small = self._posting_cost("broadcast", n_nodes=4, depth=2)
        large = self._posting_cost("broadcast", n_nodes=12, depth=2)
        # 'communication intensive and wasteful': grows with n even though
        # the thread is equally deep
        assert large > small

    def test_path_cost_scales_with_depth_not_cluster(self):
        shallow = self._posting_cost("path", n_nodes=12, depth=1)
        deep = self._posting_cost("path", n_nodes=12, depth=6)
        assert deep > shallow
        same_depth_bigger_cluster = self._posting_cost("path", n_nodes=6,
                                                       depth=1)
        assert shallow == same_depth_bigger_cluster

    def test_multicast_cost_bounded_by_members(self):
        # Thread holding at one node: group = {root, holder}; multicast
        # posting beats broadcast in a large cluster.
        mcast = self._posting_cost("multicast", n_nodes=12, depth=1)
        bcast = self._posting_cost("broadcast", n_nodes=12, depth=1)
        assert mcast < bcast

    def test_local_post_costs_nothing(self):
        cluster = make_cluster(n_nodes=4, locator="path")
        sleeper = cluster.create_object(Sleeper, node=0)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=0)
        cluster.run(until=0.5)
        before = cluster.fabric.stats.sent
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.2)
        assert cluster.fabric.stats.sent == before


class TestPathLocatorSpecifics:
    def test_hop_count_equals_path_length(self):
        cluster = make_cluster(n_nodes=8, locator="path")
        thread = _deep_thread(cluster, depth=4)
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.5)
        routed = [r for r in cluster.tracer.records
                  if r.category == "event" and r.name == "routed"]
        assert routed
        # depth-4 thread: root(0) -> 4 hops along the chain
        assert routed[-1].get("hops") == 4

    def test_raise_from_nonroot_walks_via_root(self):
        cluster = make_cluster(n_nodes=6, locator="path")
        sleeper = cluster.create_object(Sleeper, node=3)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=2)
        cluster.run(until=0.5)
        before = cluster.fabric.stats.count("locate.path")
        cluster.raise_event("INTERRUPT", thread.tid, from_node=5)
        cluster.run(until=cluster.now + 0.5)
        # 5 -> root(2) -> 3
        assert cluster.fabric.stats.count("locate.path") - before == 2


class TestMulticastMaintenance:
    def test_membership_tracks_location(self):
        cluster = make_cluster(n_nodes=4, locator="multicast")
        thread = _deep_thread(cluster, depth=2)
        group = thread.tid.multicast_group
        members = cluster.fabric.multicast_groups.members(group)
        assert 0 in members  # root
        assert thread.current_node in members

    def test_group_dissolved_on_termination(self):
        cluster = make_cluster(n_nodes=4, locator="multicast")
        thread = _deep_thread(cluster, depth=2)
        group = thread.tid.multicast_group
        cluster.raise_event("TERMINATE", thread.tid, from_node=0)
        cluster.run()
        assert cluster.fabric.multicast_groups.members(group) == frozenset()


class TwoStage(DistObject):
    """Holds at its own node, then migrates into ``next_cap`` and holds
    there — lets a test post before and after a known migration."""

    @entry
    def stage(self, ctx, next_cap, first_hold, second_hold):
        yield ctx.sleep(first_hold)
        result = yield ctx.invoke(next_cap, "hold_here", second_hold)
        return result

    @entry
    def hold_here(self, ctx, seconds):
        yield ctx.sleep(seconds)
        return "done"


class TestCachedLocator:
    def _held_thread(self, cluster, node):
        sleeper = cluster.create_object(Sleeper, node=node)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=0)
        cluster.run(until=0.5)
        return thread

    def test_hint_installed_on_delivery(self):
        cluster = make_cluster(n_nodes=4, locator="cached")
        thread = self._held_thread(cluster, node=2)
        assert cluster.kernels[0].location_hints.peek(thread.tid) is None
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.2)
        # The posting kernel learned the thread's location from the
        # delivery; the delivering kernel knows it trivially.
        assert cluster.kernels[0].location_hints.peek(thread.tid) == 2
        assert cluster.kernels[2].location_hints.peek(thread.tid) == 2

    def test_hit_fast_path_costs_one_message(self):
        cluster = make_cluster(n_nodes=8, locator="cached")
        thread = _deep_thread(cluster, depth=3)
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.5)  # warm the cache
        before = cluster.fabric.stats.snapshot()
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.5)
        delta = cluster.fabric.stats.delta_since(before)
        assert delta["sent"] == 1
        assert delta.get("type:locate.cached", 0) == 1

    def test_cold_cache_falls_back_to_base(self):
        cluster = make_cluster(n_nodes=8, locator="cached")
        thread = _deep_thread(cluster, depth=3)
        before = cluster.fabric.stats.snapshot()
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.5)
        delta = cluster.fabric.stats.delta_since(before)
        # No hint yet: the whole post rides the path fallback — no
        # speculative cached message is wasted.
        assert delta.get("type:locate.cached", 0) == 0
        assert delta.get("type:locate.path", 0) == 3
        assert cluster.events.delivered == 1

    def test_stale_hint_forwarded_along_tcb_pointer(self):
        cluster = make_cluster(n_nodes=4, locator="cached")
        a = cluster.create_object(TwoStage, node=1)
        b = cluster.create_object(TwoStage, node=2)
        thread = cluster.spawn(a, "stage", b, 0.5, 1000.0, at=0)
        cluster.run(until=0.2)
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.1)
        assert cluster.kernels[0].location_hints.peek(thread.tid) == 1
        cluster.run(until=1.0)  # the thread migrates 1 -> 2
        assert thread.current_node == 2
        before = cluster.fabric.stats.snapshot()
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.2)
        delta = cluster.fabric.stats.delta_since(before)
        # Stale hint to node 1, then the notice itself chases the TCB
        # next_node pointer to node 2 — no fallback round.
        assert delta.get("type:locate.cached", 0) == 2
        assert delta.get("type:locate.path", 0) == 0
        assert cluster.events.delivered == 2
        # The chase refreshed the hints at origin and at the stale node.
        assert cluster.kernels[0].location_hints.peek(thread.tid) == 2
        assert cluster.kernels[1].location_hints.peek(thread.tid) == 2

    def test_fallback_base_strategy_is_configurable(self):
        cluster = make_cluster(n_nodes=6, locator="cached",
                               cache_fallback="broadcast")
        thread = self._held_thread(cluster, node=3)
        cluster.kernels[0].location_hints.invalidate(thread.tid)
        before = cluster.fabric.stats.snapshot()
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.5)
        delta = cluster.fabric.stats.delta_since(before)
        assert delta.get("type:locate.bcast", 0) == 5
        assert cluster.events.delivered >= 1

    def test_dead_target_detected_and_notified(self):
        """§7.2 still holds behind the cache: posting to a dead thread
        fails over to the base strategy and raises TARGET_DEAD."""
        cluster = make_cluster(n_nodes=4, locator="cached")
        sleeper = cluster.create_object(Sleeper, node=2)
        victim = cluster.spawn(sleeper, "hold", 1000.0, at=0)
        cluster.run(until=0.5)
        cluster.raise_event("INTERRUPT", victim.tid, from_node=1)
        cluster.run(until=cluster.now + 0.2)  # hints now point at node 2
        cluster.raise_event("TERMINATE", victim.tid, from_node=0)
        cluster.run()
        assert victim.state == "terminated"
        for kernel in cluster.kernels.values():
            assert kernel.location_hints.peek(victim.tid) is None
        future = cluster.raise_and_wait("INTERRUPT", victim.tid,
                                        from_node=1)
        cluster.run()
        with pytest.raises(DeadThreadError):
            future.result()
        assert cluster.events.dead_targets >= 1

    def test_hint_table_is_bounded_lru(self):
        from repro.kernel.tcb import LocationHintTable

        table = LocationHintTable(node_id=0, capacity=2)
        table.install("t1", 1)
        table.install("t2", 2)
        table.install("t3", 3)  # evicts t1
        assert table.peek("t1") is None
        assert table.peek("t2") == 2
        assert table.evictions == 1
        assert table.get("t2") == 2  # refreshes LRU order
        table.install("t4", 4)  # evicts t3, not t2
        assert table.peek("t3") is None
        assert table.peek("t2") == 2
        stats = table.stats()
        assert stats["size"] == 2
        assert stats["hits"] == 1
        assert stats["misses"] == 0


class TestChasing:
    def test_notice_chases_moving_thread(self):
        """A thread that keeps migrating between nodes is still caught."""
        cluster = make_cluster(n_nodes=3, locator="path")

        class Bouncer(DistObject):
            @entry
            def bounce(self, ctx, other, rounds):
                for _ in range(rounds):
                    yield ctx.invoke(other, "quick")
                    yield ctx.sleep(0.002)
                yield ctx.sleep(100.0)
                return "settled"

            @entry
            def quick(self, ctx):
                yield ctx.compute(5e-4)
                return None

        a = cluster.create_object(Bouncer, node=1)
        b = cluster.create_object(Bouncer, node=2)
        thread = cluster.spawn(a, "bounce", b, 50, at=0)
        cluster.run(until=0.01)  # mid-bouncing
        assert thread.alive
        cluster.raise_event("TERMINATE", thread.tid, from_node=0)
        cluster.run()
        assert thread.state == "terminated"
