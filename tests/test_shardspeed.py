"""Tests for the sharded speed campaign: barrier batching, quiescent
skip-ahead, the owner-map routing helper, the new config knobs, and
worker teardown diagnostics.

The load-bearing property throughout is *observational purity*: every
optimisation knob (wire codec, window batching, skip-ahead, fork start
method) must leave same-seed run digests bit-identical to the legacy
per-message/spawn protocol — only wall-clock and round-trip counts may
change.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro.bench.scale import ScaleSpec
from repro.bench.shardspeed import (
    LEGACY_KNOBS,
    run_sharded_with,
    sparse_spec,
)
from repro.errors import KernelError, NetworkError
from repro.kernel.config import (
    ClusterConfig,
    shard_bounds,
    shard_owner_map,
)
from repro.transport.sharded import ShardContext, run_sharded

FORK_AVAILABLE = "fork" in multiprocessing.get_all_start_methods()

#: small enough to keep each multi-process run under a second
SMALL = ScaleSpec(n_nodes=8, shard_count=2, posts_per_node=15)


def dying_scenario(ctx):
    """Shard 1's worker dies silently mid-setup (teardown diagnostics)."""
    if ctx.shard_index == 1:
        os._exit(3)
    return lambda: {"raised": 0, "executed": 0, "per_node": {}, "sha": "0"}


# ----------------------------------------------------------------------
# owner map
# ----------------------------------------------------------------------

class TestOwnerMap:
    @pytest.mark.parametrize("n_nodes,shard_count",
                             [(1, 1), (8, 2), (10, 3), (128, 8)])
    def test_matches_shard_bounds(self, n_nodes, shard_count):
        owner = shard_owner_map(n_nodes, shard_count)
        assert sorted(owner) == list(range(n_nodes))
        for shard in range(shard_count):
            lo, hi = shard_bounds(n_nodes, shard_count, shard)
            for node in range(lo, hi):
                assert owner[node] == shard

    def test_owner_shard_uses_shared_map(self):
        ctx = ShardContext(cluster=None, shard_index=0, shard_count=3,
                           n_nodes=10, local_nodes=range(0, 4))
        assert ctx.owner_shard(0) == 0
        assert ctx.owner_shard(9) == 2
        # the map is built once and reused
        assert ctx._owner_map is not None
        assert ctx.owner_shard(5) == shard_owner_map(10, 3)[5]

    def test_owner_shard_rejects_unknown_node(self):
        ctx = ShardContext(cluster=None, shard_index=0, shard_count=2,
                           n_nodes=8, local_nodes=range(0, 4))
        with pytest.raises(NetworkError, match="outside the cluster"):
            ctx.owner_shard(8)


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------

class TestConfigKnobs:
    def test_defaults(self):
        config = ClusterConfig(n_nodes=2)
        assert config.wire_codec is True
        assert config.shard_window_batching is True
        assert config.shard_quiescent_skip is True
        assert config.shard_start_method is None

    def test_window_precedence(self):
        base = dict(n_nodes=4, link_latency=1e-3)
        assert ClusterConfig(**base).effective_shard_window() == 1e-3
        assert ClusterConfig(
            **base, cross_shard_latency=5e-3
        ).effective_shard_window() == 5e-3
        assert ClusterConfig(
            **base, cross_shard_latency=5e-3, shard_window=2e-3
        ).effective_shard_window() == 2e-3

    def test_cross_shard_latency_below_link_latency_rejected(self):
        with pytest.raises(KernelError, match="cannot be below"):
            ClusterConfig(n_nodes=4, link_latency=5e-3,
                          cross_shard_latency=1e-3)

    def test_cross_shard_latency_must_be_positive(self):
        with pytest.raises(KernelError, match="positive"):
            ClusterConfig(n_nodes=4, cross_shard_latency=0.0)

    def test_window_beyond_lookahead_rejected(self):
        with pytest.raises(KernelError, match="lookahead"):
            ClusterConfig(n_nodes=4, transport="sharded", shard_count=2,
                          shard_index=0, link_latency=1e-3,
                          shard_window=2e-3)

    def test_window_may_stretch_to_declared_latency(self):
        config = ClusterConfig(n_nodes=4, transport="sharded",
                               shard_count=2, shard_index=0,
                               link_latency=1e-3,
                               cross_shard_latency=4e-3,
                               shard_window=4e-3)
        assert config.effective_shard_window() == 4e-3

    def test_unknown_start_method_rejected(self):
        with pytest.raises(KernelError, match="shard_start_method"):
            ClusterConfig(n_nodes=4, shard_start_method="thread")


# ----------------------------------------------------------------------
# observational purity of the fast paths (multi-process)
# ----------------------------------------------------------------------

class TestBarrierDeterminism:
    def test_defaults_vs_legacy_digest_identical(self):
        fast = run_sharded_with(SMALL)
        slow = run_sharded_with(SMALL, **LEGACY_KNOBS)
        assert fast["digest"] == slow["digest"]
        assert fast["executed"] == slow["executed"] == SMALL.total_posts
        # batching/skip change round-trips and encoding, never traffic
        assert fast["cross_shard"] == slow["cross_shard"]

    def test_codec_vs_pickle_digest_identical(self):
        with_codec = run_sharded_with(SMALL, wire_codec=True)
        with_pickle = run_sharded_with(SMALL, wire_codec=False)
        assert with_codec["digest"] == with_pickle["digest"]

    def test_skip_ahead_elides_quiescent_windows(self):
        spec = sparse_spec(quick=True)
        skip = run_sharded_with(spec, shard_quiescent_skip=True)
        dense = run_sharded_with(spec, shard_quiescent_skip=False)
        assert skip["digest"] == dense["digest"]
        assert skip["executed"] == dense["executed"] == spec.total_posts
        assert skip["windows"] < dense["windows"]

    @pytest.mark.skipif(not FORK_AVAILABLE,
                        reason="fork start method unavailable")
    def test_fork_vs_spawn_digest_identical(self):
        forked = run_sharded_with(SMALL, shard_start_method="fork")
        spawned = run_sharded_with(SMALL, shard_start_method="spawn")
        assert forked["digest"] == spawned["digest"]
        assert forked["windows"] == spawned["windows"]


# ----------------------------------------------------------------------
# worker teardown diagnostics
# ----------------------------------------------------------------------

class TestWorkerTeardown:
    @pytest.mark.skipif(not FORK_AVAILABLE,
                        reason="dying_scenario needs the inherited module")
    def test_dead_worker_raises_clear_error(self):
        config = ClusterConfig(n_nodes=4, transport="sharded",
                               shard_count=2, trace_net=False,
                               shard_start_method="fork")
        with pytest.raises(NetworkError,
                           match=r"shard 1 .*(died|failed|exited)"):
            run_sharded(config, "tests.test_shardspeed:dying_scenario",
                        scenario_args={})
