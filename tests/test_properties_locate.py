"""Property-based tests: locators always find a live thread.

Random migration patterns, random posting nodes, each §7.1 strategy —
an asynchronously raised event must reach the thread (and never be
delivered twice for a single raise).
"""

from hypothesis import given, settings, strategies as st

from repro import Decision, DistObject, entry
from tests.conftest import make_cluster


class Wanderer(DistObject):
    @entry
    def wander(self, ctx, caps, plan, counter_key):
        """Visit objects per ``plan`` (indices into caps), then hold."""
        ctx.attributes.per_thread_memory[counter_key] = 0

        def on_poke(hctx, block):
            hctx.attributes.per_thread_memory[counter_key] += 1
            yield hctx.compute(0)
            return Decision.RESUME

        yield ctx.attach_handler("POKE", on_poke)
        yield from self._visit(ctx, caps, plan)
        yield ctx.sleep(1e6)
        return "held"

    def _visit(self, ctx, caps, plan):
        if plan:
            yield ctx.invoke(caps[plan[0]], "leg", caps, plan[1:])

    @entry
    def leg(self, ctx, caps, plan):
        if plan:
            result = yield ctx.invoke(caps[plan[0]], "leg", caps, plan[1:])
            return result
        yield ctx.sleep(1e6)
        return "deep"


@settings(max_examples=25, deadline=None)
@given(
    locator=st.sampled_from(["path", "broadcast", "multicast"]),
    n_nodes=st.integers(min_value=2, max_value=8),
    plan=st.lists(st.integers(min_value=0, max_value=7), max_size=6),
    post_from=st.integers(min_value=0, max_value=7),
    posts=st.integers(min_value=1, max_value=4),
)
def test_post_always_reaches_live_thread(locator, n_nodes, plan,
                                         post_from, posts):
    cluster = make_cluster(n_nodes=n_nodes, locator=locator,
                           trace_net=False)
    cluster.register_event("POKE")
    caps = [cluster.create_object(Wanderer, node=i % n_nodes)
            for i in range(8)]
    plan = [index % len(caps) for index in plan]
    thread = cluster.spawn(caps[0], "wander", caps, plan, "pokes", at=0)
    cluster.run(until=5.0)
    assert thread.alive
    for _ in range(posts):
        cluster.raise_event("POKE", thread.tid, from_node=post_from % n_nodes)
        cluster.run(until=cluster.now + 1.0)
    # exactly-once per raise: the handler bumped the counter `posts` times
    assert thread.attributes.per_thread_memory["pokes"] == posts
    assert thread.alive
