"""Tests for the DSM substrate: segments, coherence, consistency, transport
transparency."""

import pytest

from repro import DistObject, TRANSPORT_DSM, TRANSPORT_RPC, entry
from repro.dsm.page import MODE_NONE, MODE_READ, MODE_WRITE, Segment
from repro.errors import SegmentError
from tests.conftest import make_cluster


class Counter(DistObject):
    dsm_fields = {"count": 0, "label": "none"}

    @entry
    def incr(self, ctx, n=1):
        for _ in range(n):
            value = yield ctx.read("count")
            yield ctx.write("count", value + 1)
        result = yield ctx.read("count")
        return result

    @entry
    def get(self, ctx):
        result = yield ctx.read("count")
        return result

    @entry
    def relabel(self, ctx, label):
        yield ctx.write("label", label)
        result = yield ctx.read("label")
        return result


class TestSegmentLayout:
    def test_enumerated_fields_packed(self):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          fields={"a": 1, "b": 2, "c": 3},
                          fields_per_page=2)
        assert segment.n_pages == 2
        assert segment.page_of("a").page_id == segment.page_of("b").page_id
        assert segment.page_of("c").page_id == 1
        assert segment.fields() == ["a", "b", "c"]

    def test_enumerated_pages_materialized_with_defaults(self):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          fields={"a": 42})
        page = segment.page_of("a")
        assert page.materialized
        assert page.read("a") == 42

    def test_unknown_field_rejected(self):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          fields={"a": 1})
        with pytest.raises(SegmentError):
            segment.page_of("ghost")

    def test_pageable_segment_unmaterialized(self):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          pageable=True, n_pages=4)
        assert segment.n_pages == 4
        assert not segment.page_of("anything").materialized

    def test_pageable_field_mapping_stable(self):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          pageable=True, n_pages=4)
        assert segment.page_of("key").page_id == segment.page_of("key").page_id

    def test_cannot_be_both(self):
        with pytest.raises(SegmentError):
            Segment(segment_id=1, home=0, page_size=4096,
                    fields={"a": 1}, pageable=True)

    def test_empty_enumerated_rejected(self):
        with pytest.raises(SegmentError):
            Segment(segment_id=1, home=0, page_size=4096, fields={})


class TestDsmObjectBasics:
    def test_dsm_object_needs_declaration(self):
        cluster = make_cluster(n_nodes=2)

        class Bare(DistObject):
            @entry
            def x(self, ctx):
                yield ctx.compute(0)

        with pytest.raises(SegmentError):
            cluster.create_object(Bare, node=0, transport=TRANSPORT_DSM)

    def test_entry_runs_on_invoking_node(self):
        """DSM transport: the thread does NOT migrate."""
        cluster = make_cluster(n_nodes=3)

        class Where(DistObject):
            dsm_fields = {"x": 0}

            @entry
            def where(self, ctx):
                yield ctx.read("x")
                return ctx.node

        cap = cluster.create_object(Where, node=2, transport=TRANSPORT_DSM)
        thread = cluster.spawn(cap, "where", at=0)
        cluster.run()
        assert thread.completion.result() == 0
        assert cluster.fabric.stats.count("invoke.request") == 0

    def test_state_shared_across_nodes(self):
        cluster = make_cluster(n_nodes=3)
        cap = cluster.create_object(Counter, node=1, transport=TRANSPORT_DSM)
        cluster.spawn(cap, "incr", 3, at=0)
        cluster.run()
        t2 = cluster.spawn(cap, "incr", 3, at=2)
        cluster.run()
        assert t2.completion.result() == 6

    def test_local_access_after_first_fault_is_free(self):
        cluster = make_cluster(n_nodes=2)
        cap = cluster.create_object(Counter, node=1, transport=TRANSPORT_DSM)
        thread = cluster.spawn(cap, "incr", 50, at=0)
        cluster.run()
        stats = cluster.dsm.protocol_stats()
        # one write-fault materialises write mode; the other 100+ accesses
        # hit locally
        assert stats["faults"] <= 2
        assert thread.completion.result() == 50

    def test_rpc_transport_same_code_path(self):
        """Transport transparency: ctx.read/write work under RPC too."""
        cluster = make_cluster(n_nodes=2)
        cap = cluster.create_object(Counter, node=1, transport=TRANSPORT_RPC)
        # RPC objects don't get dsm_fields materialised; seed the attr.
        cluster.get_object(cap).count = 0
        thread = cluster.spawn(cap, "incr", 5, at=0)
        cluster.run()
        assert thread.completion.result() == 5
        assert cluster.dsm.protocol_stats()["faults"] == 0
        # and the thread DID migrate this time
        assert cluster.fabric.stats.count("invoke.request") == 1


class TestCoherence:
    def test_write_invalidates_readers(self):
        cluster = make_cluster(n_nodes=3)
        cap = cluster.create_object(Counter, node=0, transport=TRANSPORT_DSM)
        segment = cluster.dsm.segment_of(cap.oid)
        page = segment.page_of("count")
        # readers on nodes 1 and 2
        for node in (1, 2):
            cluster.spawn(cap, "get", at=node)
            cluster.run()
        assert cluster.dsm.local_mode(1, segment, page) == MODE_READ
        assert cluster.dsm.local_mode(2, segment, page) == MODE_READ
        # writer on node 1 invalidates node 2
        cluster.spawn(cap, "incr", 1, at=1)
        cluster.run()
        assert cluster.dsm.local_mode(1, segment, page) == MODE_WRITE
        assert cluster.dsm.local_mode(2, segment, page) == MODE_NONE
        stats = cluster.dsm.protocol_stats()
        assert stats["invalidations"] >= 1

    def test_reader_downgrades_exclusive_owner(self):
        cluster = make_cluster(n_nodes=3)
        cap = cluster.create_object(Counter, node=0, transport=TRANSPORT_DSM)
        segment = cluster.dsm.segment_of(cap.oid)
        page = segment.page_of("count")
        t = cluster.spawn(cap, "incr", 1, at=1)
        cluster.run()
        assert cluster.dsm.local_mode(1, segment, page) == MODE_WRITE
        t = cluster.spawn(cap, "get", at=2)
        cluster.run()
        assert t.completion.result() == 1
        assert cluster.dsm.local_mode(1, segment, page) == MODE_READ
        assert cluster.dsm.local_mode(2, segment, page) == MODE_READ

    def test_sequential_consistency_under_contention(self):
        cluster = make_cluster(n_nodes=4)
        cap = cluster.create_object(Counter, node=0, transport=TRANSPORT_DSM)
        threads = [cluster.spawn(cap, "incr", 10, at=node)
                   for node in range(4)]
        cluster.run()
        final = [t.completion.result() for t in threads]
        # Sequential consistency does NOT make read-modify-write atomic:
        # unsynchronised increments may be lost (that's what the lock
        # manager is for) — but every read must return the latest
        # committed write, which the audit log verifies.
        assert 10 <= max(final) <= 40
        assert cluster.dsm.log.check() == []

    def test_page_transfers_charged_at_page_size(self):
        cluster = make_cluster(n_nodes=2, page_size=8192)
        cap = cluster.create_object(Counter, node=1, transport=TRANSPORT_DSM)
        before = cluster.fabric.stats.bytes_sent
        cluster.spawn(cap, "get", at=0)
        cluster.run()
        assert cluster.fabric.stats.bytes_sent - before >= 8192

    def test_false_sharing_with_packed_fields(self):
        """Two fields on one page: writing either contends for the page."""

        class Pair(DistObject):
            dsm_fields = {"a": 0, "b": 0}

            @entry
            def write_a(self, ctx, n):
                for i in range(n):
                    yield ctx.write("a", i)

            @entry
            def write_b(self, ctx, n):
                for i in range(n):
                    yield ctx.write("b", i)

        def run(fields_per_page):
            cluster = make_cluster(n_nodes=3,
                                   dsm_fields_per_page=fields_per_page)
            cap = cluster.create_object(Pair, node=0,
                                        transport=TRANSPORT_DSM)
            cluster.spawn(cap, "write_a", 20, at=1)
            cluster.spawn(cap, "write_b", 20, at=2)
            cluster.run()
            return cluster.dsm.protocol_stats()["invalidations"]

        assert run(fields_per_page=2) > run(fields_per_page=1)
