"""Unit tests for thread ids, attributes, groups and handler chains."""

import pytest

from repro.errors import EventError, GroupError, ThreadError
from repro.events.handlers import (
    HandlerChain,
    HandlerContext,
    HandlerRegistration,
)
from repro.threads import (
    GroupId,
    GroupRegistry,
    IdAllocator,
    IoChannel,
    ThreadAttributes,
    ThreadId,
    TimerSpec,
)


class TestIds:
    def test_tid_roundtrip(self):
        tid = ThreadId(root=3, seq=7)
        assert str(tid) == "T3.7"
        assert ThreadId.parse("T3.7") == tid

    def test_tid_parse_rejects_garbage(self):
        with pytest.raises(ThreadError):
            ThreadId.parse("thread-3-7")

    def test_gid_roundtrip(self):
        gid = GroupId(root=1, seq=2)
        assert str(gid) == "G1.2"
        assert GroupId.parse("G1.2") == gid

    def test_multicast_group_name(self):
        assert ThreadId(0, 1).multicast_group == "thread:T0.1"

    def test_allocator_monotonic_per_node(self):
        alloc = IdAllocator(5)
        t1, t2 = alloc.new_tid(), alloc.new_tid()
        assert t1.root == t2.root == 5
        assert t2.seq == t1.seq + 1

    def test_ids_ordered(self):
        assert ThreadId(0, 1) < ThreadId(0, 2) < ThreadId(1, 1)


class TestHandlerChain:
    def _reg(self, event="E", context=HandlerContext.CURRENT, proc="p"):
        return HandlerRegistration(event=event, context=context,
                                   procedure=proc)

    def test_lifo_order(self):
        chain = HandlerChain("E")
        first, second = self._reg(), self._reg()
        chain.push(first)
        chain.push(second)
        assert chain.in_order() == [second, first]
        assert chain.top() is second

    def test_wrong_event_rejected(self):
        chain = HandlerChain("E")
        with pytest.raises(EventError):
            chain.push(self._reg(event="OTHER"))

    def test_pop_empty_raises(self):
        with pytest.raises(EventError):
            HandlerChain("E").pop()

    def test_remove_by_reg_id(self):
        chain = HandlerChain("E")
        a, b = self._reg(), self._reg()
        chain.push(a)
        chain.push(b)
        assert chain.remove(a.reg_id) is True
        assert chain.remove(a.reg_id) is False
        assert chain.in_order() == [b]

    def test_copy_is_shallow_but_independent(self):
        chain = HandlerChain("E")
        chain.push(self._reg())
        clone = chain.copy()
        clone.push(self._reg())
        assert len(chain) == 1
        assert len(clone) == 2

    def test_registration_validation(self):
        with pytest.raises(EventError):
            HandlerRegistration(event="E", context=HandlerContext.CURRENT)
        with pytest.raises(EventError):
            HandlerRegistration(event="E", context=HandlerContext.BUDDY,
                                fn_name="h")  # missing target_oid
        ok = HandlerRegistration(event="E", context=HandlerContext.BUDDY,
                                 fn_name="h", target_oid=4)
        assert ok.target_oid == 4


class TestAttributes:
    def test_attach_detach(self):
        attrs = ThreadAttributes()
        reg = HandlerRegistration(event="E", context=HandlerContext.CURRENT,
                                  procedure="p")
        attrs.attach(reg)
        assert attrs.handlers_for("E") == [reg]
        assert attrs.detach_top("E") is reg
        assert attrs.handlers_for("E") == []
        assert attrs.detach_top("E") is None

    def test_detach_specific(self):
        attrs = ThreadAttributes()
        a = HandlerRegistration(event="E", context=HandlerContext.CURRENT,
                                procedure="a")
        b = HandlerRegistration(event="E", context=HandlerContext.CURRENT,
                                procedure="b")
        attrs.attach(a)
        attrs.attach(b)
        assert attrs.detach("E", a.reg_id) is True
        assert attrs.handlers_for("E") == [b]

    def test_timers(self):
        attrs = ThreadAttributes()
        spec = TimerSpec(event="TIMER", interval=0.5)
        attrs.add_timer(spec)
        assert attrs.timers == [spec]
        assert attrs.remove_timer(spec.spec_id) is True
        assert attrs.remove_timer(spec.spec_id) is False

    def test_inherit_copies_chains_and_memory(self):
        attrs = ThreadAttributes(creator="root", group="g")
        attrs.per_thread_memory["k"] = 1
        attrs.attach(HandlerRegistration(
            event="E", context=HandlerContext.CURRENT, procedure="p"))
        attrs.add_timer(TimerSpec(event="TIMER", interval=1.0))
        attrs.consistency_labels["label"] = "strict"
        child = attrs.inherit()
        # copies present
        assert child.handlers_for("E")
        assert child.per_thread_memory["k"] == 1
        assert len(child.timers) == 1
        assert child.consistency_labels == {"label": "strict"}
        # and independent
        child.attach(HandlerRegistration(
            event="E", context=HandlerContext.CURRENT, procedure="q"))
        assert len(attrs.handlers_for("E")) == 1

    def test_inherit_shares_io_channel(self):
        channel = IoChannel("term")
        attrs = ThreadAttributes(io_channel=channel)
        child = attrs.inherit()
        assert child.io_channel is channel

    def test_nominal_size_tracks_content(self):
        attrs = ThreadAttributes()
        base = attrs.nominal_size
        attrs.attach(HandlerRegistration(
            event="E", context=HandlerContext.CURRENT, procedure="p"))
        assert attrs.nominal_size > base


class TestIoChannel:
    def test_collects_writes_in_order(self):
        channel = IoChannel("term")
        channel.write(0.0, "T0.1", "first")
        channel.write(1.0, "T0.2", "second")
        assert channel.text() == "first\nsecond"
        assert channel.lines[0] == (0.0, "T0.1", "first")


class TestGroups:
    def test_create_add_remove(self):
        groups = GroupRegistry()
        gid = GroupId(0, 1)
        groups.create(gid)
        groups.add(gid, ThreadId(0, 1))
        assert groups.members(gid) == frozenset({ThreadId(0, 1)})
        assert groups.remove(gid, ThreadId(0, 1)) is True
        # group was garbage collected when emptied
        assert not groups.exists(gid)

    def test_duplicate_create_rejected(self):
        groups = GroupRegistry()
        gid = GroupId(0, 1)
        groups.create(gid)
        with pytest.raises(GroupError):
            groups.create(gid)

    def test_add_to_missing_group_rejected(self):
        groups = GroupRegistry()
        with pytest.raises(GroupError):
            groups.add(GroupId(0, 9), ThreadId(0, 1))

    def test_members_or_empty(self):
        groups = GroupRegistry()
        assert groups.members_or_empty(GroupId(0, 9)) == frozenset()

    def test_remove_absent_member(self):
        groups = GroupRegistry()
        gid = GroupId(0, 1)
        groups.create(gid)
        assert groups.remove(gid, ThreadId(0, 5)) is False
