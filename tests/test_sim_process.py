"""Unit tests for generator-based simulated processes."""

import pytest

from repro.errors import Interrupted, ProcessError
from repro.sim import (
    Checkpoint,
    Process,
    Simulator,
    SimFuture,
    Sleep,
    Wait,
    WaitAll,
    spawn,
)


@pytest.fixture()
def sim():
    return Simulator()


def test_process_runs_to_completion(sim):
    log = []

    def body():
        log.append(("start", sim.now))
        yield Sleep(1.0)
        log.append(("mid", sim.now))
        yield Sleep(2.0)
        log.append(("end", sim.now))
        return "done"

    proc = Process(sim, body())
    sim.run()
    assert log == [("start", 0.0), ("mid", 1.0), ("end", 3.0)]
    assert proc.completion.result() == "done"
    assert not proc.alive


def test_body_must_be_generator(sim):
    with pytest.raises(ProcessError):
        Process(sim, lambda: None)  # type: ignore[arg-type]


def test_wait_on_future_yields_value(sim):
    fut = SimFuture(sim)
    results = []

    def body():
        value = yield Wait(fut)
        results.append((value, sim.now))

    Process(sim, body())
    sim.call_after(2.5, fut.resolve, "payload")
    sim.run()
    assert results == [("payload", 2.5)]


def test_wait_on_failed_future_raises_inside(sim):
    fut = SimFuture(sim)

    def body():
        try:
            yield Wait(fut)
        except ValueError as exc:
            return f"caught {exc}"

    proc = Process(sim, body())
    sim.call_after(1.0, fut.fail, ValueError("nope"))
    sim.run()
    assert proc.completion.result() == "caught nope"


def test_wait_all_collects_in_order(sim):
    futs = [SimFuture(sim) for _ in range(3)]

    def body():
        values = yield WaitAll(futs)
        return values

    proc = Process(sim, body())
    # resolve out of order
    sim.call_after(3.0, futs[0].resolve, "a")
    sim.call_after(1.0, futs[1].resolve, "b")
    sim.call_after(2.0, futs[2].resolve, "c")
    sim.run()
    assert proc.completion.result() == ["a", "b", "c"]
    assert sim.now == 3.0


def test_wait_all_empty_list(sim):
    def body():
        values = yield WaitAll([])
        return values

    proc = Process(sim, body())
    sim.run()
    assert proc.completion.result() == []


def test_wait_all_propagates_first_failure(sim):
    futs = [SimFuture(sim), SimFuture(sim)]

    def body():
        yield WaitAll(futs)

    proc = Process(sim, body())
    sim.call_after(1.0, futs[1].fail, RuntimeError("bad"))
    sim.run()
    assert proc.completion.failed
    with pytest.raises(RuntimeError, match="bad"):
        proc.completion.result()


def test_crash_fails_completion(sim):
    def body():
        yield Sleep(1.0)
        raise KeyError("crash")

    proc = Process(sim, body())
    sim.run()
    assert proc.completion.failed
    with pytest.raises(KeyError):
        proc.completion.result()


def test_interrupt_during_sleep(sim):
    log = []

    def body():
        try:
            yield Sleep(100.0)
        except Interrupted as exc:
            log.append((exc.cause, sim.now))

    proc = Process(sim, body())
    sim.call_after(2.0, proc.interrupt, "wake-up")
    sim.run()
    assert log == [("wake-up", 2.0)]
    assert sim.now == 2.0  # sleep did not run to completion


def test_interrupt_during_future_wait(sim):
    fut = SimFuture(sim)
    log = []

    def body():
        try:
            yield Wait(fut)
        except Interrupted as exc:
            log.append(exc.cause)
        # process keeps running after handling the interrupt
        yield Sleep(1.0)
        return "survived"

    proc = Process(sim, body())
    sim.call_after(1.0, proc.interrupt, "now")
    sim.run()
    assert log == ["now"]
    assert proc.completion.result() == "survived"


def test_unhandled_interrupt_kills_process(sim):
    def body():
        yield Sleep(10.0)

    proc = Process(sim, body())
    sim.call_after(1.0, proc.interrupt, None)
    sim.run()
    assert proc.completion.failed
    with pytest.raises(Interrupted):
        proc.completion.result()


def test_interrupt_finished_process_is_noop(sim):
    def body():
        yield Sleep(1.0)

    proc = Process(sim, body())
    sim.run()
    proc.interrupt("late")
    sim.run()
    assert proc.completion.result() is None


def test_checkpoint_is_interruption_point(sim):
    progress = []

    def body():
        for i in range(100):
            progress.append(i)
            yield Checkpoint()

    proc = Process(sim, body())
    sim.call_soon(proc.interrupt, "stop")
    sim.run()
    assert proc.completion.failed
    assert len(progress) < 100


def test_invalid_yield_value_crashes_process(sim):
    def body():
        yield "not a syscall"  # type: ignore[misc]

    proc = Process(sim, body())
    sim.run()
    assert proc.completion.failed
    with pytest.raises(ProcessError):
        proc.completion.result()


def test_negative_sleep_rejected():
    with pytest.raises(ProcessError):
        Sleep(-1.0)


def test_spawn_helper_names_process(sim):
    def worker(n):
        yield Sleep(n)
        return n * 2

    proc = spawn(sim, worker, 3.0)
    assert proc.name == "worker"
    sim.run()
    assert proc.completion.result() == 6.0


def test_finally_blocks_run_on_interrupt(sim):
    cleaned = []

    def body():
        try:
            yield Sleep(50.0)
        finally:
            cleaned.append(True)

    proc = Process(sim, body())
    sim.call_after(1.0, proc.interrupt, None)
    sim.run()
    assert cleaned == [True]


def test_two_processes_interleave(sim):
    log = []

    def ticker(name, period, count):
        for _ in range(count):
            yield Sleep(period)
            log.append((name, sim.now))

    Process(sim, ticker("fast", 1.0, 3))
    Process(sim, ticker("slow", 2.0, 2))
    sim.run()
    assert log == [
        ("fast", 1.0), ("slow", 2.0), ("fast", 2.0),
        ("fast", 3.0), ("slow", 4.0),
    ]
