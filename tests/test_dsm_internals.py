"""Additional DSM manager internals: mode transitions, services, errors."""

import pytest

from repro import DistObject, TRANSPORT_DSM, entry
from repro.dsm.page import MODE_NONE, MODE_READ, MODE_WRITE
from repro.errors import SegmentError
from tests.conftest import make_cluster


class Word(DistObject):
    dsm_fields = {"w": 0}

    @entry
    def read_it(self, ctx):
        value = yield ctx.read("w")
        return value

    @entry
    def write_it(self, ctx, value):
        yield ctx.write("w", value)
        return value

    @entry
    def read_then_write(self, ctx, value):
        yield ctx.read("w")
        yield ctx.write("w", value)
        return value

    @entry
    def read_missing(self, ctx):
        value = yield ctx.read("no_such_field")
        return value


class TestModeTransitions:
    def _rig(self, n_nodes=3):
        cluster = make_cluster(n_nodes=n_nodes)
        cap = cluster.create_object(Word, node=0, transport=TRANSPORT_DSM)
        segment = cluster.dsm.segment_of(cap.oid)
        page = segment.page_of("w")
        return cluster, cap, segment, page

    def test_read_then_upgrade_to_write(self):
        cluster, cap, segment, page = self._rig()
        thread = cluster.spawn(cap, "read_then_write", 9, at=1)
        cluster.run()
        assert thread.completion.result() == 9
        assert cluster.dsm.local_mode(1, segment, page) == MODE_WRITE
        # the upgrade was a second directory transaction
        assert cluster.dsm.protocol_stats()["write_misses"] == 1
        assert cluster.dsm.protocol_stats()["read_misses"] == 1

    def test_write_does_not_grant_others(self):
        cluster, cap, segment, page = self._rig()
        cluster.spawn(cap, "write_it", 1, at=1)
        cluster.run()
        assert cluster.dsm.local_mode(2, segment, page) == MODE_NONE
        assert cluster.dsm.local_mode(0, segment, page) == MODE_NONE

    def test_three_readers_all_shared(self):
        cluster, cap, segment, page = self._rig()
        for node in range(3):
            cluster.spawn(cap, "read_it", at=node)
        cluster.run()
        for node in range(3):
            assert cluster.dsm.local_mode(node, segment, page) == MODE_READ

    def test_unknown_field_read_fails_thread(self):
        cluster, cap, segment, page = self._rig()
        thread = cluster.spawn(cap, "read_missing", at=1)
        cluster.run()
        with pytest.raises(SegmentError):
            thread.completion.result()

    def test_segment_of_unknown_oid(self):
        cluster, cap, segment, page = self._rig()
        with pytest.raises(SegmentError):
            cluster.dsm.segment_of(99999)

    def test_install_page_on_enumerated_segment_updates_values(self):
        cluster, cap, segment, page = self._rig()
        cluster.dsm.install_page(cap.oid, page.page_id, {"w": 77})
        thread = cluster.spawn(cap, "read_it", at=2)
        cluster.run()
        assert thread.completion.result() == 77


class TestConcurrentUpgradeRace:
    def test_simultaneous_read_write_from_same_node(self):
        """Two threads on one node, one reading one writing: the node's
        read request may be processed after its own write grant — the
        directory answers with the stronger mode instead of crashing."""
        cluster = make_cluster(n_nodes=3)
        cap = cluster.create_object(Word, node=0, transport=TRANSPORT_DSM)
        reader = cluster.spawn(cap, "read_it", at=2)
        writer = cluster.spawn(cap, "write_it", 5, at=2)
        cluster.run()
        assert writer.completion.result() == 5
        assert reader.completion.result() in (0, 5)
        segment = cluster.dsm.segment_of(cap.oid)
        page = segment.page_of("w")
        assert cluster.dsm.local_mode(2, segment, page) == MODE_WRITE
        assert cluster.dsm.log.check() == []

    def test_many_nodes_hammering_one_page(self):
        cluster = make_cluster(n_nodes=6)
        cap = cluster.create_object(Word, node=0, transport=TRANSPORT_DSM)
        threads = []
        for node in range(6):
            threads.append(cluster.spawn(cap, "read_then_write",
                                         node, at=node))
            threads.append(cluster.spawn(cap, "read_it", at=node))
        cluster.run()
        for thread in threads:
            thread.completion.result()
        assert cluster.dsm.log.check() == []
        # exactly one exclusive owner (or shared) at quiescence
        segment = cluster.dsm.segment_of(cap.oid)
        page = segment.page_of("w")
        writers = [n for n in range(6)
                   if cluster.dsm.local_mode(n, segment, page) == MODE_WRITE]
        assert len(writers) <= 1
