"""Tests for the benchmark harness, workloads and experiment plumbing."""

import pytest

from repro.bench.harness import Table, ratio, sweep
from repro.bench.workloads import (
    build_cluster,
    ctrl_c_app,
    deep_thread,
    lock_chain,
    object_event_storm,
    transport_workload,
)
from repro.errors import BenchmarkError
from repro.net import Message, MatrixLatency


class TestTable:
    def test_add_and_column(self):
        table = Table(title="t", columns=["a", "b"])
        table.add(1, "x")
        table.add(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]

    def test_row_arity_checked(self):
        table = Table(title="t", columns=["a", "b"])
        with pytest.raises(BenchmarkError):
            table.add(1)

    def test_unknown_column(self):
        table = Table(title="t", columns=["a"])
        with pytest.raises(BenchmarkError):
            table.column("zzz")

    def test_render_contains_everything(self):
        table = Table(title="demo", columns=["k", "v"])
        table.add("alpha", 3.14159)
        table.note("a note")
        text = table.render()
        assert "demo" in text
        assert "alpha" in text
        assert "3.14159" in text
        assert "note: a note" in text

    def test_render_empty_table(self):
        table = Table(title="empty", columns=["only"])
        assert "only" in table.render()

    def test_sweep_and_ratio(self):
        assert sweep([1, 2, 3], lambda x: x * 2) == [2, 4, 6]
        assert ratio(6, 3) == 2
        assert ratio(1, 0) == float("inf")


class TestWorkloadBuilders:
    def test_deep_thread_depth(self):
        cluster = build_cluster(n_nodes=5)
        thread = deep_thread(cluster, depth=3)
        assert thread.alive
        assert len(thread.frames) == 3
        assert thread.current_node != 0

    def test_object_event_storm_counts(self):
        cluster = object_event_storm("master", events=7)
        assert cluster.kernels[1].objects.events_served == 7

    def test_lock_chain_rig(self):
        rig = lock_chain(locks=3)
        manager = rig.cluster.get_object(rig.manager_cap)
        assert manager.acquires == 3
        assert len(rig.thread.attributes.handlers_for("TERMINATE")) == 3

    def test_ctrl_c_rig_group(self):
        rig = ctrl_c_app(workers=2, n_nodes=4)
        assert len(rig.cluster.groups.members(rig.gid)) == 3

    def test_transport_workload_shapes(self):
        run = transport_workload("rpc", workers=2, rounds=2)
        assert set(run.per_thread_traces) == {"w0", "w1"}
        assert run.final_total >= 2


class TestMatrixLatency:
    def test_explicit_link_and_default(self):
        model = MatrixLatency(default=0.5)
        model.set_link(0, 1, 0.1)
        msg = Message(src=0, dst=1, mtype="x")
        assert model.delay(0, 1, msg) == 0.1
        assert model.delay(1, 0, msg) == 0.1  # symmetric
        assert model.delay(0, 2, msg) == 0.5  # default
        assert model.delay(2, 2, msg) == model.local

    def test_asymmetric_link(self):
        model = MatrixLatency()
        model.set_link(0, 1, 0.2, symmetric=False)
        msg = Message(src=0, dst=1, mtype="x")
        assert model.delay(0, 1, msg) == 0.2
        assert model.delay(1, 0, msg) == model.default

    def test_negative_rejected(self):
        from repro.errors import NetworkError

        with pytest.raises(NetworkError):
            MatrixLatency(default=-1.0)
        model = MatrixLatency()
        with pytest.raises(NetworkError):
            model.set_link(0, 1, -0.1)

    def test_rack_topology_affects_invocation_time(self):
        """Two racks: cross-rack invocations pay the uplink."""
        from repro import Cluster, ClusterConfig
        from tests.conftest import Echo

        model = MatrixLatency(default=1e-4)   # fast intra-rack default
        for a in (0, 1):
            for b in (2, 3):
                model.set_link(a, b, 5e-3)    # slow uplink
        cluster = Cluster(ClusterConfig(n_nodes=4, thread_create_cost=0),
                          latency=model)
        near = cluster.create_object(Echo, node=1)
        far = cluster.create_object(Echo, node=3)
        cluster.spawn(near, "echo", 1, at=0)
        cluster.run()
        near_time = cluster.now
        cluster.spawn(far, "echo", 1, at=0)
        cluster.run()
        far_time = cluster.now - near_time
        assert far_time > 5 * near_time


class TestExperimentSmoke:
    """Tiny-parameter runs of each experiment: they complete and keep
    their basic invariants. The real assertions live in benchmarks/."""

    def test_table1(self):
        from repro.bench.experiments import run_table1

        table = run_table1()
        assert len(table.rows) == 6

    def test_e2(self):
        from repro.bench.experiments import run_e2

        table = run_e2(cluster_sizes=(2, 4), depths=(1,), posts=3)
        # 3 paper locators x 2 sizes, cached hot+cold x 2 sizes, and one
        # cached migrating-target row (needs >= 3 nodes)
        assert len(table.rows) == 11

    def test_e3(self):
        from repro.bench.experiments import run_e3

        table = run_e3(event_counts=(5,))
        assert len(table.rows) == 2

    def test_e4(self):
        from repro.bench.experiments import run_e4

        table = run_e4(lock_counts=(2,))
        assert table.column("released %") == [100.0]

    def test_e5(self):
        from repro.bench.experiments import run_e5

        table = run_e5(worker_counts=(2,), n_nodes=4)
        assert table.column("survivors") == [0]

    def test_e6(self):
        from repro.bench.experiments import run_e6

        table = run_e6(faulter_counts=(1,), n_nodes=3)
        assert len(table.rows) == 2

    def test_e7(self):
        from repro.bench.experiments import run_e7

        table = run_e7(workers=2, rounds=2)
        assert table.column("per-thread handler traces equal") == \
            ["yes", "yes"]

    def test_e8(self):
        from repro.bench.experiments import run_e8

        table = run_e8(seeds=range(2))
        assert table.rows[-1][0] == "OVERALL"

    def test_e9(self):
        from repro.bench.experiments import run_e9

        table = run_e9(service_times=(0.0,))
        assert table.column("async window (ms)") == [0.0]

    def test_main_module_subset(self, capsys):
        from repro.bench.__main__ import main

        assert main(["e4"]) == 0
        assert "TERMINATE-chained" in capsys.readouterr().out
        assert main(["nope"]) == 2
