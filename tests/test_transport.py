"""Tests for the transport port and its three backends.

Covers the narrow :class:`~repro.transport.base.Transport` protocol
(endpoint registry, factory, config knobs), the sharded backend's
conservative-window buffering, the wall-clock
:class:`~repro.transport.realtime.RealtimeScheduler`, the TCP loopback
transport, and the ``degrade_dedup_window`` receiver-memory knob the
degraded overload path sizes its dedup window with.
"""

from __future__ import annotations

import pickle

import pytest

from repro import Cluster, ClusterConfig
from repro.errors import KernelError, NetworkError, SimulationError
from repro.kernel.config import shard_bounds
from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.sim.scheduler import Simulator
from repro.transport.base import (
    TRANSPORT_BACKEND_NAMES,
    Transport,
    make_transport,
)
from repro.transport.realtime import RealtimeScheduler
from repro.transport.sharded import ShardSimTransport, sharded_config
from repro.transport.simlocal import SimTransport
from repro.transport.tcp import AsyncioTransport

from .conftest import make_cluster


# ----------------------------------------------------------------------
# the port itself: endpoint registry + factory
# ----------------------------------------------------------------------

class TestTransportPort:
    def _transport(self):
        return SimTransport(Simulator())

    def test_attach_detach_and_lookup(self):
        tp = self._transport()
        seen = []
        tp.attach(0, seen.append)
        tp.attach(1, seen.append)
        assert tp.node_ids == [0, 1]
        assert 0 in tp and 2 not in tp
        assert tp.endpoint(0) is not None
        tp.detach(0)
        assert tp.endpoint(0) is None
        assert tp.node_ids == [1]
        # detaching is idempotent (crash of an already-crashed node)
        tp.detach(0)

    def test_double_attach_rejected(self):
        tp = self._transport()
        tp.attach(0, lambda m: None)
        with pytest.raises(NetworkError):
            tp.attach(0, lambda m: None)

    def test_known_outlives_detach(self):
        # A detached node stays *known*: it is a crashed machine whose
        # traffic the wire swallows, not an addressing error.
        tp = self._transport()
        tp.attach(3, lambda m: None)
        tp.detach(3)
        assert tp.known(3)
        assert not tp.routable(3)
        tp.add_known(9)  # a peer hosted elsewhere
        assert tp.known(9) and not tp.routable(9)

    def test_stats_schema(self):
        tp = self._transport()
        tp.attach(0, lambda m: None)
        data = tp.stats()
        assert data["backend"] == "sim"
        assert data["attached"] == 1

    def test_factory_builds_named_backends(self):
        sim = make_transport(ClusterConfig(n_nodes=2))
        assert isinstance(sim, SimTransport)
        assert sim.backend_name() == "sim"
        with pytest.raises(NetworkError, match="shard_index"):
            make_transport(ClusterConfig(n_nodes=4, transport="sharded",
                                         shard_count=2))
        sharded = make_transport(ClusterConfig(
            n_nodes=4, transport="sharded", shard_count=2, shard_index=1))
        assert isinstance(sharded, ShardSimTransport)
        assert sharded.backend_name() == "sharded"

    def test_factory_rejects_unknown_backend(self):
        class Fake:
            transport = "carrier-pigeon"
        with pytest.raises(NetworkError, match="carrier-pigeon"):
            make_transport(Fake())

    def test_fabric_wraps_bare_simulator(self):
        # Back-compat: tests that build Fabric(Simulator()) directly
        # get a SimTransport wrapped in transparently.
        sim = Simulator()
        fabric = Fabric(sim)
        assert isinstance(fabric.transport, SimTransport)
        assert fabric.sim is sim
        inbox = []
        fabric.attach(0, inbox.append)
        fabric.attach(1, inbox.append)
        fabric.send(Message(src=0, dst=1, mtype="t.ping"))
        sim.run()
        assert [m.mtype for m in inbox] == ["t.ping"]


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------

class TestTransportConfig:
    def test_backend_name_validated(self):
        for name in TRANSPORT_BACKEND_NAMES:
            kwargs = {"transport": name}
            if name == "sharded":
                kwargs.update(shard_count=2, shard_index=0)
            ClusterConfig(n_nodes=4, **kwargs)
        with pytest.raises(KernelError, match="unknown transport"):
            ClusterConfig(n_nodes=4, transport="udp")

    def test_shard_knobs_validated(self):
        with pytest.raises(KernelError):
            ClusterConfig(n_nodes=4, shard_count=0)
        with pytest.raises(KernelError, match="exceeds n_nodes"):
            ClusterConfig(n_nodes=2, shard_count=3)
        with pytest.raises(KernelError, match="out of range"):
            ClusterConfig(n_nodes=4, shard_count=2, shard_index=2)
        with pytest.raises(KernelError, match="shard_window"):
            ClusterConfig(n_nodes=4, shard_window=0.0)
        # the conservative bound: lookahead must not exceed the minimum
        # cross-shard latency or a message could land inside its own window
        with pytest.raises(KernelError, match="lookahead"):
            ClusterConfig(n_nodes=4, transport="sharded", shard_count=2,
                          shard_index=0, link_latency=1e-3,
                          shard_window=2e-3)

    def test_tcp_and_dedup_knobs_validated(self):
        with pytest.raises(KernelError, match="tcp_base_port"):
            ClusterConfig(n_nodes=2, tcp_base_port=70000)
        with pytest.raises(KernelError, match="degrade_dedup_window"):
            ClusterConfig(n_nodes=2, degrade_dedup_window=0)
        ClusterConfig(n_nodes=2, degrade_dedup_window=1)

    def test_shard_bounds_partition_nodes(self):
        # every (n, k) partition covers 0..n-1 exactly once, contiguously,
        # with remainder nodes on the lowest-indexed shards
        for n_nodes, shard_count in [(4, 1), (7, 2), (16, 4), (130, 8)]:
            covered = []
            sizes = []
            for shard in range(shard_count):
                lo, hi = shard_bounds(n_nodes, shard_count, shard)
                assert lo <= hi
                covered.extend(range(lo, hi))
                sizes.append(hi - lo)
            assert covered == list(range(n_nodes))
            assert max(sizes) - min(sizes) <= 1
            assert sizes == sorted(sizes, reverse=True)

    def test_local_node_ids(self):
        plain = ClusterConfig(n_nodes=6)
        assert list(plain.local_node_ids()) == list(range(6))
        shard = ClusterConfig(n_nodes=7, transport="sharded",
                              shard_count=2, shard_index=1)
        lo, hi = shard_bounds(7, 2, 1)
        assert list(shard.local_node_ids()) == list(range(lo, hi))

    def test_effective_shard_window_defaults_to_link_latency(self):
        config = ClusterConfig(n_nodes=4, link_latency=3e-3)
        assert config.effective_shard_window() == 3e-3
        config = ClusterConfig(n_nodes=4, link_latency=3e-3,
                               shard_window=1e-3)
        assert config.effective_shard_window() == 1e-3

    def test_sharded_config_helper(self):
        base = ClusterConfig(n_nodes=2, locator="cached")
        conf = sharded_config(base, n_nodes=32, shard_count=4)
        assert conf.transport == "sharded"
        assert conf.n_nodes == 32 and conf.shard_count == 4
        assert conf.shard_index is None
        assert conf.locator == "cached"


# ----------------------------------------------------------------------
# sharded backend: conservative-window buffering
# ----------------------------------------------------------------------

class TestShardSimTransport:
    def _shard(self, lookahead=5e-3):
        sim = Simulator()
        tp = ShardSimTransport(sim, local_nodes=range(0, 2),
                               all_nodes=range(0, 4), lookahead=lookahead)
        return sim, tp

    def test_local_post_delivers_on_shard_simulator(self):
        sim, tp = self._shard()
        inbox = []
        tp.attach(0, inbox.append)
        tp.attach(1, inbox.append)
        tp.set_delivery_hook(lambda m, dst: tp.endpoint(dst)(m))
        tp.post(Message(src=0, dst=1, mtype="t.local"), 1, 1e-3)
        sim.run()
        assert [m.mtype for m in inbox] == ["t.local"]
        assert tp.cross_sent == 0 and not tp._outbound

    def test_remote_post_buffers_for_barrier(self):
        sim, tp = self._shard()
        tp.attach(0, lambda m: None)
        tp.post(Message(src=0, dst=2, mtype="t.cross"), 2, 5e-3)
        tp.post(Message(src=0, dst=3, mtype="t.cross"), 3, 6e-3)
        assert tp.cross_sent == 2
        assert sim.pending == 0  # nothing scheduled locally
        out = tp.take_outbound(window_end=5e-3)
        assert [(dst, round(at, 6)) for at, _seq, _m, dst in out] == \
            [(2, 0.005), (3, 0.006)]
        assert tp.take_outbound(window_end=5e-3) == []  # drained

    def test_remote_routable_without_endpoint(self):
        _sim, tp = self._shard()
        assert tp.routable(2) and tp.routable(3)  # other shard's nodes
        assert not tp.routable(0)  # local but not attached yet
        assert not tp.routable(99)  # not part of the run at all
        assert tp.known(2) and not tp.known(99)

    def test_window_violation_raises(self):
        # a cross-shard message computed to arrive *inside* the sending
        # window breaks conservative synchronization — loudly
        sim, tp = self._shard(lookahead=5e-3)
        tp.attach(0, lambda m: None)
        tp.post(Message(src=0, dst=2, mtype="t.early"), 2, 1e-3)
        with pytest.raises(NetworkError, match="conservative-window"):
            tp.take_outbound(window_end=5e-3)

    def test_inject_merges_arrival(self):
        sim, tp = self._shard()
        inbox = []
        tp.attach(1, inbox.append)
        tp.set_delivery_hook(lambda m, dst: tp.endpoint(dst)(m))
        tp.inject(Message(src=2, dst=1, mtype="t.merged"), 1,
                  deliver_at=7e-3)
        sim.run()
        assert [m.mtype for m in inbox] == ["t.merged"]
        assert sim.now == pytest.approx(7e-3)
        assert tp.cross_received == 1
        stats = tp.stats()
        assert stats["backend"] == "sharded"
        assert stats["cross_sent"] == 0 and stats["cross_received"] == 1


class TestShardedEndToEnd:
    def test_small_sharded_run_is_deterministic(self):
        from repro.bench.scale import ScaleSpec, run_scale_sharded
        spec = ScaleSpec(n_nodes=8, shard_count=2, posts_per_node=10)
        first = run_scale_sharded(spec)
        second = run_scale_sharded(spec)
        assert first["digest"] == second["digest"]
        assert first["executed"] == first["raised"] == spec.total_posts
        assert first["cross_shard"] > 0
        assert first["per_node"] == second["per_node"]


# ----------------------------------------------------------------------
# wall-clock scheduler
# ----------------------------------------------------------------------

class TestRealtimeScheduler:
    def test_timers_fire_in_order(self):
        sched = RealtimeScheduler(poll=0.001)
        try:
            fired = []
            sched.call_after(0.02, fired.append, "late")
            sched.call_after(0.005, fired.append, "early")
            sched.call_soon(fired.append, "now")
            assert sched.pending == 3
            sched.run()
            assert fired == ["now", "early", "late"]
            assert sched.pending == 0
            assert sched.events_processed == 3
        finally:
            sched.close()

    def test_cancel(self):
        sched = RealtimeScheduler(poll=0.001)
        try:
            fired = []
            handle = sched.call_after(0.01, fired.append, "cancelled")
            sched.call_after(0.02, fired.append, "kept")
            handle.cancel()
            assert handle.cancelled
            handle.cancel()  # idempotent
            sched.run()
            assert fired == ["kept"]
        finally:
            sched.close()

    def test_run_until_is_a_wall_clock_slice(self):
        sched = RealtimeScheduler(poll=0.001)
        try:
            fired = []
            sched.call_after(0.01, fired.append, "inside")
            sched.call_after(10.0, fired.append, "far-future")
            sched.run(until=sched.now + 0.05)
            assert fired == ["inside"]
            assert sched.now >= 0.05
            assert sched.pending == 1  # far-future timer still live
        finally:
            sched.close()

    def test_callback_error_reraises_from_run(self):
        sched = RealtimeScheduler(poll=0.001)
        try:
            def boom():
                raise ValueError("kaboom")
            sched.call_soon(boom)
            with pytest.raises(ValueError, match="kaboom"):
                sched.run()
            # the stored error is consumed; the scheduler stays usable
            fired = []
            sched.call_soon(fired.append, "after")
            sched.run()
            assert fired == ["after"]
        finally:
            sched.close()

    def test_idle_hooks_hold_run_open(self):
        sched = RealtimeScheduler(poll=0.001)
        try:
            state = {"busy": True}
            sched.add_idle_hook(lambda: not state["busy"])
            sched.call_after(0.01, state.__setitem__, "busy", False)
            sched.run()  # returns only once the hook agrees
            assert not state["busy"]
        finally:
            sched.close()

    def test_closed_scheduler_rejects_work(self):
        sched = RealtimeScheduler()
        sched.close()
        sched.close()  # idempotent
        with pytest.raises(SimulationError):
            sched.call_soon(lambda: None)
        with pytest.raises(SimulationError):
            sched.run()

    def test_stats_surface(self):
        sched = RealtimeScheduler()
        try:
            data = sched.stats()
            assert data["backend"] == "realtime"
            assert data["pending"] == 0
            assert sched.compactions == 0
        finally:
            sched.close()


# ----------------------------------------------------------------------
# TCP loopback transport
# ----------------------------------------------------------------------

class TestAsyncioTransport:
    def _loopback(self, nodes=2):
        tp = AsyncioTransport()
        inboxes = {n: [] for n in range(nodes)}
        for n in range(nodes):
            tp.attach(n, inboxes[n].append)
        tp.set_delivery_hook(lambda m, dst: tp.endpoint(dst)(m))
        tp.start()
        return tp, inboxes

    def test_frames_cross_real_sockets(self):
        tp, inboxes = self._loopback()
        try:
            tp.post(Message(src=0, dst=1, mtype="t.wire", payload=[1, 2]),
                    1, 0.0)
            tp.post(Message(src=1, dst=0, mtype="t.back"), 0, 0.0)
            tp.scheduler.run()  # idle hook waits for in-flight frames
            assert [m.mtype for m in inboxes[1]] == ["t.wire"]
            assert inboxes[1][0].payload == [1, 2]
            assert [m.mtype for m in inboxes[0]] == ["t.back"]
            stats = tp.stats()
            assert stats["backend"] == "tcp"
            assert stats["frames_sent"] == stats["frames_received"] == 2
            assert stats["in_flight"] == 0
            assert stats["bytes_sent"] > 0
            assert stats["oob_tokens"] == 0
            assert len(tp.addresses) == 2
        finally:
            tp.close()

    def test_unpicklable_payload_takes_oob_path(self):
        tp, inboxes = self._loopback()
        try:
            marker = lambda: None  # noqa: E731 - locals don't pickle
            with pytest.raises(Exception):
                pickle.dumps(marker)
            message = Message(src=0, dst=1, mtype="t.oob", payload=marker)
            tp.post(message, 1, 0.0)
            tp.scheduler.run()
            assert inboxes[1] == [message]  # the very same live object
            assert tp.stats()["oob_tokens"] == 1
            assert not tp._oob  # token table drained on receipt
        finally:
            tp.close()

    def test_post_to_closed_destination_is_swallowed(self):
        tp, inboxes = self._loopback()
        try:
            tp._conns[1].close()
            tp.post(Message(src=0, dst=1, mtype="t.void"), 1, 0.0)
            tp.scheduler.run()
            assert inboxes[1] == []
            assert tp.stats()["in_flight"] == 0  # not leaked
        finally:
            tp.close()

    def test_close_is_idempotent(self):
        tp, _ = self._loopback()
        tp.close()
        tp.close()

    def test_cluster_end_to_end_over_tcp(self):
        # A whole Cluster on the tcp backend: a cross-node event post
        # with the reliable channel on, over real loopback sockets.
        from repro.objects.base import DistObject, on_event

        class Sink(DistObject):
            def __init__(self):
                super().__init__()
                self.seen = 0

            @on_event("TCP_TEST")
            def on_ping(self, ctx, block):
                self.seen += 1
                yield ctx.compute(0)

        cluster = Cluster(ClusterConfig(n_nodes=2, transport="tcp",
                                        reliable_delivery=True,
                                        link_latency=1e-4,
                                        trace_net=False))
        try:
            cluster.register_event("TCP_TEST")
            cap = cluster.create_object(Sink, node=1)
            for _ in range(5):
                cluster.raise_event("TCP_TEST", cap, from_node=0)
            deadline = cluster.now + 10.0
            while (cluster.get_object(cap).seen < 5
                   and cluster.now < deadline):
                cluster.run(until=cluster.now + 0.1)
            assert cluster.get_object(cap).seen == 5
            assert cluster.transport_stats()["backend"] == "tcp"
        finally:
            cluster.close()


# ----------------------------------------------------------------------
# degrade_dedup_window sizing (satellite: receiver-side dedup memory)
# ----------------------------------------------------------------------

class _FakeBlock:
    def __init__(self, block_id):
        self.block_id = block_id


class TestDegradeDedupWindow:
    def test_undersized_window_readmits_late_duplicate(self):
        # The sizing hazard the knob exists for: with only 2 slots of
        # receiver memory, two fresh posts evict a block id and a late
        # fabric duplicate of it is re-admitted as a fresh post.
        cluster = make_cluster(n_nodes=2, degrade_dedup_window=2)
        events = cluster.events
        assert events._accept_degraded(1, _FakeBlock("a"))
        assert not events._accept_degraded(1, _FakeBlock("a"))  # prompt dup
        assert events._accept_degraded(1, _FakeBlock("b"))
        assert events._accept_degraded(1, _FakeBlock("c"))  # evicts "a"
        assert events._accept_degraded(1, _FakeBlock("a"))  # re-admitted!

    def test_sized_window_rejects_late_duplicate(self):
        cluster = make_cluster(n_nodes=2, degrade_dedup_window=10)
        events = cluster.events
        assert events._accept_degraded(1, _FakeBlock("a"))
        assert events._accept_degraded(1, _FakeBlock("b"))
        assert events._accept_degraded(1, _FakeBlock("c"))
        assert not events._accept_degraded(1, _FakeBlock("a"))  # remembered

    def test_window_is_per_node(self):
        cluster = make_cluster(n_nodes=3, degrade_dedup_window=4)
        events = cluster.events
        assert events._accept_degraded(1, _FakeBlock("a"))
        # the same block id arriving at another node is that node's
        # first sighting — dedup memory is per receiver
        assert events._accept_degraded(2, _FakeBlock("a"))

    def test_default_follows_dedup_window(self):
        cluster = make_cluster(n_nodes=2, dedup_window=3)
        assert cluster.config.degrade_dedup_window is None
        events = cluster.events
        for bid in "abcd":
            assert events._accept_degraded(1, _FakeBlock(bid))
        # "a" was evicted once the 4th id overflowed the 3-slot window
        assert events._accept_degraded(1, _FakeBlock("a"))

    def test_knob_overrides_channel_window(self):
        # same traffic, wider degrade window: the late duplicate now hits
        cluster = make_cluster(n_nodes=2, dedup_window=3,
                               degrade_dedup_window=8)
        events = cluster.events
        for bid in "abcd":
            assert events._accept_degraded(1, _FakeBlock(bid))
        assert not events._accept_degraded(1, _FakeBlock("a"))
