"""SWIM gossip membership: protocol, views, adapter, churn property.

Covers the PR 10 tentpole (detection / refutation / rejoin / piggyback
dissemination, locator dead-skip, heartbeat-detector subsumption) plus
the satellites: the FailureDetector lifecycle regressions (no beat from
a crashed node, no stale suspicion surviving recovery, cached peer
list) and the hypothesis churn property (randomized join/leave/crash/
recover schedules with drops never lose a durable post and never
double-execute, on both scheduler backends).
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import Decision, DistObject, entry
from repro.bench.chaos import ChaosSpec, ChurnSpec, run_chaos
from repro.errors import KernelError
from repro.kernel.config import ClusterConfig
from repro.kernel.membership import ALIVE, DEAD, SUSPECT, Membership
from tests.conftest import Recorder, make_cluster

INTERVAL = 0.05


class HandlerApp(DistObject):
    """Thread app that attaches an EVT handler and parks."""

    @entry
    def work(self, ctx, seen):
        def on_evt(hctx, block):
            seen.append(block.user_data)
            yield hctx.compute(0)
            return Decision.RESUME

        yield ctx.attach_handler("EVT", on_evt)
        yield ctx.sleep(100.0)


def swim_cluster(n_nodes=4, **overrides):
    overrides.setdefault("swim_interval", INTERVAL)
    return make_cluster(n_nodes=n_nodes, **overrides)


def run_periods(cluster, periods):
    cluster.run(until=cluster.now + periods * INTERVAL)


# ======================================================================
# config knobs
# ======================================================================

class TestConfig:
    def test_swim_knob_validation(self):
        for bad in (dict(swim_interval=0.0), dict(swim_interval=-1.0),
                    dict(swim_interval=0.1, swim_ping_timeout=0.0),
                    dict(swim_interval=0.1, swim_suspect_timeout=-2.0),
                    dict(swim_indirect_probes=-1),
                    dict(swim_gossip_max=0)):
            with pytest.raises(KernelError):
                ClusterConfig(n_nodes=2, **bad)

    def test_effective_timeouts_default_from_interval(self):
        config = ClusterConfig(n_nodes=2, swim_interval=0.3)
        assert config.effective_swim_ping_timeout() == pytest.approx(0.1)
        assert config.effective_swim_suspect_timeout() == pytest.approx(0.9)
        explicit = ClusterConfig(n_nodes=2, swim_interval=0.3,
                                 swim_ping_timeout=0.05,
                                 swim_suspect_timeout=2.0)
        assert explicit.effective_swim_ping_timeout() == 0.05
        assert explicit.effective_swim_suspect_timeout() == 2.0


# ======================================================================
# update ordering (the SWIM merge rules)
# ======================================================================

class TestSupersedes:
    def test_alive_needs_higher_incarnation(self):
        assert Membership._supersedes(ALIVE, 2, ALIVE, 1)
        assert Membership._supersedes(ALIVE, 2, SUSPECT, 1)
        assert Membership._supersedes(ALIVE, 2, DEAD, 1)
        assert not Membership._supersedes(ALIVE, 1, ALIVE, 1)
        assert not Membership._supersedes(ALIVE, 1, SUSPECT, 1)
        assert not Membership._supersedes(ALIVE, 1, DEAD, 1)

    def test_suspect_overrides_same_incarnation_alive(self):
        assert Membership._supersedes(SUSPECT, 1, ALIVE, 1)
        assert Membership._supersedes(SUSPECT, 2, SUSPECT, 1)
        assert not Membership._supersedes(SUSPECT, 1, SUSPECT, 1)
        assert not Membership._supersedes(SUSPECT, 1, DEAD, 1)
        assert not Membership._supersedes(SUSPECT, 0, ALIVE, 1)

    def test_dead_is_final_for_its_incarnation(self):
        assert Membership._supersedes(DEAD, 1, ALIVE, 1)
        assert Membership._supersedes(DEAD, 1, SUSPECT, 1)
        assert Membership._supersedes(DEAD, 2, ALIVE, 1)
        assert not Membership._supersedes(DEAD, 1, DEAD, 1)
        assert not Membership._supersedes(DEAD, 2, DEAD, 1)
        assert not Membership._supersedes(DEAD, 0, ALIVE, 1)


# ======================================================================
# detection, refutation, leave/rejoin
# ======================================================================

class TestDetection:
    def test_crash_is_suspected_then_confirmed_dead(self):
        cluster = swim_cluster()
        run_periods(cluster, 10)
        victim = 3
        cluster.crash_node(victim)
        run_periods(cluster, 40)
        for node in (0, 1, 2):
            membership = cluster.kernels[node].membership
            assert membership.is_dead(victim)
            assert victim not in membership.alive()
            assert victim not in membership.members()
            # suspicion always precedes the verdict
            states = [s for _t, peer, s, _i in membership.transitions
                      if peer == victim]
            assert "suspect" in states
            assert states.index("suspect") < states.index("dead")
        stats = cluster.membership_stats()
        assert stats["suspicions"] >= 1
        assert stats["confirms"] >= 3

    def test_view_api_reflects_self_state(self):
        cluster = swim_cluster(n_nodes=3)
        membership = cluster.kernels[1].membership
        assert membership.is_alive(1) and membership.is_member(1)
        assert 1 in membership.alive()
        cluster.crash_node(1)
        assert not membership.is_alive(1)
        assert 1 not in membership.alive()

    def test_false_suspicion_is_refuted_with_bumped_incarnation(self):
        cluster = swim_cluster()
        run_periods(cluster, 4)
        victim = cluster.kernels[2].membership
        assert victim.incarnation == 0
        # Node 0 is fed a (false) suspicion about the live node 2; it
        # must gossip onward, and 2 must refute by bumping incarnation.
        cluster.kernels[0].membership.on_gossip(((2, SUSPECT, 0),), src=1)
        assert cluster.kernels[0].membership.is_suspected(2)
        run_periods(cluster, 40)
        assert victim.incarnation >= 1
        assert victim.refutations >= 1
        for node in (0, 1, 3):
            assert cluster.kernels[node].membership.is_alive(2)
        assert cluster.membership_stats()["view_suspect"] == 0

    def test_recover_rejoins_with_higher_incarnation(self):
        cluster = swim_cluster()
        run_periods(cluster, 10)
        victim = 3
        cluster.crash_node(victim)
        run_periods(cluster, 40)
        assert cluster.kernels[0].membership.is_dead(victim)
        cluster.recover_node(victim)
        run_periods(cluster, 40)
        assert cluster.kernels[victim].membership.incarnation >= 1
        for node in (0, 1, 2):
            membership = cluster.kernels[node].membership
            assert membership.is_alive(victim), membership.stats()
        stats = cluster.membership_stats()
        assert stats["rejoins"] == 1
        assert stats["resurrections"] >= 3

    def test_graceful_leave_converges_without_suspicion_cycle(self):
        cluster = swim_cluster(n_nodes=5)
        run_periods(cluster, 6)
        cluster.leave_node(2)
        assert cluster.kernels[2].crashed
        # The dead verdict spreads by direct announce + gossip — well
        # inside the suspicion timeout (no refutation wait needed).
        run_periods(cluster, 8)
        for node in (0, 1, 3, 4):
            assert cluster.kernels[node].membership.is_dead(2)
        stats = cluster.membership_stats()
        assert stats["leaves"] == 1
        cluster.recover_node(2)
        run_periods(cluster, 40)
        assert all(cluster.kernels[n].membership.is_alive(2)
                   for n in (0, 1, 3, 4))


# ======================================================================
# piggyback dissemination
# ======================================================================

class TestPiggyback:
    def test_updates_ride_application_traffic(self):
        cluster = swim_cluster()
        cluster.register_event("PING")
        cap = cluster.create_object(Recorder, node=1)
        carried = []
        original = cluster.kernels[1].deliver

        def spy(message):
            if (message.gossip is not None
                    and not message.mtype.startswith("swim.")):
                carried.append(message.mtype)
            original(message)

        cluster.fabric.detach(1)
        cluster.fabric.attach(1, spy)
        run_periods(cluster, 4)
        cluster.crash_node(3)  # something to gossip about
        for i in range(20):
            cluster.raise_event("PING", cap, from_node=0, user_data=i)
            run_periods(cluster, 2)
        assert carried, "no membership update rode an application message"
        assert cluster.membership_stats()["updates_piggybacked"] > 0

    def test_piggyback_off_still_detects(self):
        cluster = swim_cluster(swim_piggyback=False)
        run_periods(cluster, 10)
        cluster.crash_node(3)
        run_periods(cluster, 60)
        assert all(cluster.kernels[n].membership.is_dead(3)
                   for n in (0, 1, 2))
        assert cluster.membership_stats()["updates_piggybacked"] == 0

    def test_indirect_probes_cover_a_severed_direct_link(self):
        cluster = swim_cluster(n_nodes=4)
        run_periods(cluster, 4)
        # Sever 0 <-> 3 both ways: direct pings die, but ping-req
        # through 1/2 keeps 3 alive in 0's view (no false confirm).
        cluster.fabric.faults.partition({0}, {3})
        run_periods(cluster, 60)
        assert not cluster.kernels[0].membership.is_dead(3)
        assert cluster.membership_stats()["ping_reqs_relayed"] >= 1


# ======================================================================
# locators skip confirmed-dead nodes
# ======================================================================

class TestLocatorViewPruning:
    def _dead_confirmed(self, locator_name):
        cluster = swim_cluster(locator=locator_name)
        run_periods(cluster, 10)
        cluster.crash_node(3)
        run_periods(cluster, 40)
        assert cluster.kernels[0].membership.is_dead(3)
        return cluster

    def test_drop_dead_filters_confirmed_only(self):
        cluster = self._dead_confirmed("broadcast")
        locator = cluster.events.locator
        assert locator._drop_dead(0, [1, 2, 3]) == [1, 2]
        # a mere suspect stays targeted (it may yet refute)
        cluster.kernels[0].membership._status[2] = (SUSPECT, 0)
        assert locator._drop_dead(0, [1, 2]) == [1, 2]

    def test_drop_dead_is_identity_without_swim(self):
        cluster = make_cluster(n_nodes=4, locator="broadcast")
        cluster.crash_node(3)
        assert cluster.events.locator._drop_dead(0, [1, 2, 3]) == [1, 2, 3]

    def test_broadcast_raise_probes_live_members_only(self):
        cluster = self._dead_confirmed("broadcast")
        cluster.register_event("EVT")
        seen = []
        app = cluster.create_object(HandlerApp, node=1)
        thread = cluster.spawn(app, "work", seen, at=1)
        cluster.run(until=cluster.now + 0.1)
        before = cluster.fabric.stats.count("locate.bcast")
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=7)
        cluster.run(until=cluster.now + 0.5)
        assert seen == [7]
        # One broadcast round from node 0: probes 1 and 2 only — the
        # confirmed-dead node 3 is pruned from the candidate list.
        assert cluster.fabric.stats.count("locate.bcast") - before == 2


# ======================================================================
# heartbeat detector: subsumption + lifecycle satellites
# ======================================================================

class TestDetectorSubsumption:
    def test_swim_disarms_heartbeat_machinery(self):
        cluster = swim_cluster(heartbeat_interval=0.02)
        run_periods(cluster, 20)
        assert cluster.fabric.stats.count("fd.beat") == 0
        for kernel in cluster.kernels.values():
            assert not kernel.failure.enabled
            assert kernel.failure.beats_sent == 0

    def test_adapter_reports_swim_suspicion(self):
        cluster = swim_cluster(heartbeat_interval=0.02)
        run_periods(cluster, 10)
        cluster.crash_node(3)
        run_periods(cluster, 40)
        fd = cluster.kernels[0].failure
        assert fd.is_suspected(3)
        assert fd.suspected() == [3]
        assert not fd.is_suspected(1)

    def test_view_change_invalidates_cached_peer_list(self):
        cluster = swim_cluster()
        fd = cluster.kernels[0].failure
        first = fd._peers()
        assert fd._peers() is first  # cached, not rebuilt per tick
        run_periods(cluster, 10)
        cluster.crash_node(3)
        run_periods(cluster, 40)  # confirm-dead fires the view listener
        assert fd._peer_list is None
        rebuilt = fd._peers()
        assert rebuilt is not first and rebuilt == first


class TestHeartbeatLifecycle:
    def test_no_beat_fires_from_a_crashed_node(self):
        cluster = make_cluster(n_nodes=3, heartbeat_interval=0.02)
        cluster.run(until=0.2)
        fd = cluster.kernels[1].failure
        assert fd.beats_sent > 0
        cluster.crash_node(1)
        assert fd._timer is None
        frozen = fd.beats_sent
        cluster.run(until=cluster.now + 0.5)
        assert fd.beats_sent == frozen

    def test_stale_suspicion_does_not_survive_recovery(self):
        cluster = make_cluster(n_nodes=3, heartbeat_interval=0.02,
                               suspect_after=3)
        cluster.run(until=0.2)
        cluster.crash_node(2)
        cluster.run(until=1.0)  # node 0/1 suspect 2; 2's clock is stale
        assert cluster.kernels[0].failure.is_suspected(2)
        cluster.recover_node(2)
        fd = cluster.kernels[2].failure
        # Fresh grace stamps: nothing suspected on the first post-recover
        # tick even though the node was down for many intervals.
        cluster.run(until=cluster.now + 0.03)
        assert fd.suspected() == []
        assert fd._last_heard and all(
            t >= 1.0 for t in fd._last_heard.values())
        cluster.run(until=cluster.now + 1.0)
        assert fd.suspected() == []

    def test_crash_clears_detector_state(self):
        cluster = make_cluster(n_nodes=3, heartbeat_interval=0.02,
                               suspect_after=3)
        cluster.run(until=0.2)
        cluster.crash_node(2)
        cluster.run(until=1.0)
        fd = cluster.kernels[0].failure
        assert fd.is_suspected(2)
        cluster.crash_node(0)
        assert fd._last_heard == {} and fd.suspected() == []
        assert fd._peer_list is None


# ======================================================================
# knobs off: inert layer, unchanged digests
# ======================================================================

class TestKnobsOffUnchanged:
    def test_swim_off_is_completely_inert(self):
        cluster = make_cluster(n_nodes=4)
        cluster.register_event("PING")
        cap = cluster.create_object(Recorder, node=1)
        cluster.raise_event("PING", cap, from_node=0, user_data=0)
        cluster.run(until=2.0)
        assert cluster.fabric.stats.count_prefix("swim.") == 0
        for kernel in cluster.kernels.values():
            assert not kernel.membership.enabled
            assert kernel.membership._timer is None
            assert all(v == 0 for k, v in kernel.membership.stats().items()
                       if not k.startswith("view_"))
        assert "membership_pings_sent" not in cluster.supervision_stats()

    def test_no_gossip_field_without_swim(self):
        cluster = make_cluster(n_nodes=3, reliable_delivery=True)
        seen = []
        original = cluster.kernels[1].deliver

        def spy(message):
            seen.append(message.gossip)
            original(message)

        cluster.fabric.detach(1)
        cluster.fabric.attach(1, spy)
        cluster.register_event("PING")
        cap = cluster.create_object(Recorder, node=1)
        cluster.raise_event("PING", cap, from_node=0, user_data=0)
        cluster.run(until=1.0)
        assert seen and all(g is None for g in seen)

    def test_chaos_defaults_digest_untouched_by_churn_knobs(self):
        spec = ChaosSpec(seed=11, posts=30)
        first = run_chaos(spec)
        assert first.membership == {}
        assert first.churn_events == []
        # Adding the *fields* at their defaults draws nothing extra from
        # the seeded stream: digest identical.
        again = run_chaos(replace(spec, churn=None, swim_interval=None))
        assert first.digest == again.digest


# ======================================================================
# churn chaos: scheduled join/leave/crash/recover + drops
# ======================================================================

CHURN = ChurnSpec(period=0.3, down_time=0.4, max_down=2)


class TestChurnChaos:
    def test_churn_invariant_and_determinism(self):
        spec = ChaosSpec(seed=7, n_nodes=8, posts=60, drop_rate=0.05,
                         crash_period=None, swim_interval=INTERVAL,
                         churn=CHURN, settle=12.0)
        report = run_chaos(spec)
        assert report.violations == []
        assert report.accounted_rate == 1.0
        assert report.churn_events
        assert report.membership["rejoins"] >= 1
        assert report.digest == run_chaos(spec).digest

    def test_churn_off_leaves_no_trace(self):
        spec = ChaosSpec(seed=7, n_nodes=8, posts=60, drop_rate=0.05,
                         crash_period=None, swim_interval=INTERVAL,
                         settle=12.0)
        report = run_chaos(spec)
        assert report.churn_events == []
        assert report.violations == []

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(0, 2**16),
           scheduler=st.sampled_from(["heap", "wheel"]),
           drop_rate=st.sampled_from([0.0, 0.05, 0.1]),
           leave_fraction=st.sampled_from([0.0, 0.5, 1.0]))
    def test_randomized_churn_never_loses_durable_posts(
            self, seed, scheduler, drop_rate, leave_fraction):
        """Satellite: whatever the churn interleaving, a journaled post
        executes exactly once (or is quarantined) — never lost, never
        doubled — on both scheduler backends."""
        spec = ChaosSpec(
            seed=seed, n_nodes=6, posts=30, drop_rate=drop_rate,
            crash_period=None, durable=True, swim_interval=INTERVAL,
            scheduler=scheduler,
            churn=ChurnSpec(period=0.35, down_time=0.45, max_down=2,
                            leave_fraction=leave_fraction),
            settle=15.0)
        report = run_chaos(spec)
        assert report.violations == [], report.violations[:3]
        for pid in range(spec.posts):
            assert report.executions.get(pid, 0) <= 1
