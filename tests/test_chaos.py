"""Chaos-harness tests: delivery guarantees across all four locators
under seeded drops, duplicates, partitions and crash/recover cycles."""

import pytest

from repro.bench.chaos import ChaosSpec, run_chaos

LOCATORS = ["path", "broadcast", "multicast", "cached"]


@pytest.mark.parametrize("locator", LOCATORS)
class TestChaosInvariants:
    def test_drop_and_duplicate_sweep(self, locator):
        """Exactly-once execution and zero lost-or-hung posts at every
        swept fault rate, with crashes disabled (pure network chaos)."""
        for drop, dup in [(0.05, 0.0), (0.1, 0.1), (0.2, 0.05)]:
            spec = ChaosSpec(seed=5, locator=locator, posts=40,
                             drop_rate=drop, duplicate_rate=dup,
                             crash_period=None, settle=15.0)
            report = run_chaos(spec)
            assert not report.violations, report.violations[:3]
            # no crashes -> retransmission recovers everything
            assert report.success_rate == 1.0, \
                (locator, drop, dup, sorted(report.notices))
            assert report.accounted_rate == 1.0

    def test_crashes_surface_dead_target_notices(self, locator):
        """With periodic crash/recover, posts that lose their target get
        a §7.2 notice — never silence, never a duplicate execution."""
        spec = ChaosSpec(seed=9, locator=locator, posts=60, drop_rate=0.1,
                         duplicate_rate=0.05, crash_period=0.6,
                         down_time=0.4)
        report = run_chaos(spec)
        assert not report.violations, report.violations[:3]
        assert report.crashes, "schedule must include crashes"
        assert report.notices, "crash windows must produce notices"
        assert report.accounted_rate == 1.0
        # handlers never ran twice for any post
        assert all(n <= 1 for n in report.executions.values())

    def test_partitions_heal_and_converge(self, locator):
        spec = ChaosSpec(seed=13, locator=locator, posts=40, drop_rate=0.05,
                         duplicate_rate=0.0, crash_period=None,
                         partition_period=0.3, partition_length=0.15)
        report = run_chaos(spec)
        assert not report.violations, report.violations[:3]
        assert report.partitions, "schedule must include partitions"
        # convergence: every post-heal probe executed exactly once
        assert all(n == 1 for n in report.probe_executions.values())


class TestDurableChaos:
    """Durable mode: journaled posts to persistent objects must never be
    lost — exactly-once execution with no notice escape hatch, and the
    outbox fully drained by the end of the run (ISSUE acceptance point:
    drop=0.1 with periodic crash/recover)."""

    def test_zero_journaled_posts_lost_across_crashes(self):
        spec = ChaosSpec(seed=3, durable=True, posts=120, drop_rate=0.1,
                         crash_period=0.8, down_time=0.5)
        report = run_chaos(spec)
        assert not report.violations, report.violations[:3]
        assert report.crashes, "schedule must include crashes"
        assert report.executed_once == spec.posts
        assert not report.notices, "durable posts must not degrade to notices"
        assert report.durability["pending"] == 0
        # crashes force real redelivery work, not a lucky clean run
        assert report.durability["redelivered"] > 0
        assert report.durability["recoveries"] > 0

    def test_durable_invariants_across_seeds(self):
        for seed in range(4):
            spec = ChaosSpec(seed=seed, durable=True, posts=80,
                             drop_rate=0.1, crash_period=0.6, down_time=0.4)
            report = run_chaos(spec)
            assert not report.violations, (seed, report.violations[:3])
            assert report.executed_once == spec.posts, seed

    def test_durable_run_is_deterministic(self):
        spec = ChaosSpec(seed=17, durable=True, posts=60, drop_rate=0.15,
                         crash_period=0.6, down_time=0.4,
                         checkpoint_interval=16)
        first, second = run_chaos(spec), run_chaos(spec)
        assert first.digest == second.digest
        assert first.durability == second.durability
        assert first.recoveries == second.recoveries

    def test_fault_free_durable_overhead_bounded(self):
        """Without faults the journal costs at most two appends per
        fabric message (it is three appends per remote post against
        four-plus messages)."""
        spec = ChaosSpec(seed=4, durable=True, posts=40, drop_rate=0.0,
                         duplicate_rate=0.0, crash_period=None)
        report = run_chaos(spec)
        assert not report.violations
        assert report.durability["redelivered"] == 0
        assert report.durability["appends"] <= \
            2 * report.message_stats["sent"]


class TestDeterminism:
    def test_same_seed_same_digest(self):
        spec = ChaosSpec(seed=21, locator="cached", posts=50, drop_rate=0.1,
                         duplicate_rate=0.1, partition_period=1.3)
        first = run_chaos(spec)
        second = run_chaos(spec)
        assert first.digest == second.digest
        assert first.executions == second.executions
        assert first.notices == second.notices
        assert first.reliability == second.reliability
        assert first.message_stats == second.message_stats

    def test_different_seed_different_outcome(self):
        a = run_chaos(ChaosSpec(seed=1, posts=40, drop_rate=0.15))
        b = run_chaos(ChaosSpec(seed=2, posts=40, drop_rate=0.15))
        assert a.digest != b.digest


class TestReportShape:
    def test_report_metrics(self):
        report = run_chaos(ChaosSpec(seed=4, posts=30, drop_rate=0.1,
                                     duplicate_rate=0.1))
        assert 0.0 <= report.success_rate <= 1.0
        assert report.retransmits_per_post > 0
        assert report.p99_latency > 0
        assert report.reliability["duplicates_suppressed"] > 0
        breakdown = report.fault_breakdown
        assert breakdown["dropped"], "drops must be classified by type"
        assert all(isinstance(k, str) for k in breakdown["dropped"])

    def test_no_faults_is_clean(self):
        report = run_chaos(ChaosSpec(seed=4, posts=30, drop_rate=0.0,
                                     duplicate_rate=0.0, crash_period=None))
        assert report.success_rate == 1.0
        assert not report.notices
        assert report.reliability["retransmits"] == 0
        assert report.reliability["gave_up"] == 0
