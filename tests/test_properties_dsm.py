"""Property-based tests for DSM layout and coherence."""

from hypothesis import given, settings, strategies as st

from repro import DistObject, TRANSPORT_DSM, entry
from repro.dsm.page import Segment
from repro.dsm.directory import ST_EXCLUSIVE, ST_IDLE, ST_SHARED
from tests.conftest import make_cluster

field_names = st.lists(
    st.text(alphabet="abcdefghij", min_size=1, max_size=6),
    min_size=1, max_size=12, unique=True)


class TestSegmentLayoutProperties:
    @given(field_names, st.integers(min_value=1, max_value=5))
    def test_every_field_maps_to_exactly_one_page(self, names,
                                                  fields_per_page):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          fields={name: 0 for name in names},
                          fields_per_page=fields_per_page)
        for name in names:
            page = segment.page_of(name)
            assert page is segment.page_of(name)
            assert name in page.values
        # packing bound: ceil(len/fields_per_page) pages
        assert segment.n_pages == -(-len(names) // fields_per_page)

    @given(field_names, st.integers(min_value=1, max_value=8))
    def test_pageable_mapping_is_stable_and_in_range(self, names, n_pages):
        segment = Segment(segment_id=1, home=0, page_size=4096,
                          pageable=True, n_pages=n_pages)
        for name in names:
            first = segment.page_of(name).page_id
            again = segment.page_of(name).page_id
            assert first == again
            assert 0 <= first < n_pages


class SharedWord(DistObject):
    dsm_fields = {"word": 0}

    @entry
    def do_ops(self, ctx, ops):
        """ops: list of ('r',) or ('w', value)."""
        log = []
        for op in ops:
            if op[0] == "w":
                yield ctx.write("word", op[1])
            else:
                value = yield ctx.read("word")
                log.append(value)
        return log


#: per-thread operation scripts
scripts = st.lists(
    st.lists(
        st.one_of(st.tuples(st.just("r")),
                  st.tuples(st.just("w"), st.integers(0, 9))),
        min_size=1, max_size=8),
    min_size=1, max_size=4)


class TestCoherenceProperties:
    @settings(max_examples=30, deadline=None)
    @given(scripts)
    def test_random_access_patterns_stay_sequentially_consistent(
            self, per_thread_ops):
        cluster = make_cluster(n_nodes=4, trace_net=False)
        cap = cluster.create_object(SharedWord, node=0,
                                    transport=TRANSPORT_DSM)
        threads = [cluster.spawn(cap, "do_ops", ops, at=i % 4)
                   for i, ops in enumerate(per_thread_ops)]
        cluster.run()
        for thread in threads:
            thread.completion.result()  # no crashes
        assert cluster.dsm.log.check() == []
        self._check_directory_invariants(cluster, cap)

    def _check_directory_invariants(self, cluster, cap):
        segment = cluster.dsm.segment_of(cap.oid)
        for page in segment.pages:
            entry_ = cluster.dsm.directory_entry(segment, page)
            if entry_.state == ST_EXCLUSIVE:
                # exclusive means exactly one holder, who is the owner
                assert entry_.owner is not None
                assert entry_.sharers == {entry_.owner}
            elif entry_.state == ST_SHARED:
                assert entry_.sharers
                assert entry_.owner is None
            else:
                assert entry_.state == ST_IDLE
                assert not entry_.sharers

    @settings(max_examples=15, deadline=None)
    @given(scripts)
    def test_reads_only_return_written_values(self, per_thread_ops):
        cluster = make_cluster(n_nodes=3, trace_net=False)
        cap = cluster.create_object(SharedWord, node=0,
                                    transport=TRANSPORT_DSM)
        written = {0}  # the field default
        for ops in per_thread_ops:
            written.update(op[1] for op in ops if op[0] == "w")
        threads = [cluster.spawn(cap, "do_ops", ops, at=i % 3)
                   for i, ops in enumerate(per_thread_ops)]
        cluster.run()
        for thread in threads:
            for value in thread.completion.result():
                assert value in written
