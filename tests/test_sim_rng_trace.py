"""Unit tests for seeded RNG streams and the tracer."""

from repro.sim import RngRegistry, Simulator, Tracer


class TestRngRegistry:
    def test_same_seed_same_stream(self):
        a = RngRegistry(seed=7).stream("latency")
        b = RngRegistry(seed=7).stream("latency")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_independent(self):
        reg = RngRegistry(seed=7)
        a = [reg.stream("a").random() for _ in range(5)]
        b = [reg.stream("b").random() for _ in range(5)]
        assert a != b

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(seed=3)
        r1.stream("x")
        x_then_y = r1.stream("y").random()
        r2 = RngRegistry(seed=3)
        y_only = r2.stream("y").random()
        assert x_then_y == y_only

    def test_stream_is_cached(self):
        reg = RngRegistry(seed=1)
        assert reg.stream("s") is reg.stream("s")

    def test_fork_changes_streams(self):
        parent = RngRegistry(seed=9)
        child = parent.fork("child")
        assert parent.stream("n").random() != child.stream("n").random()

    def test_fork_deterministic(self):
        c1 = RngRegistry(seed=9).fork("lbl")
        c2 = RngRegistry(seed=9).fork("lbl")
        assert c1.stream("n").random() == c2.stream("n").random()


class TestTracer:
    def _tracer(self):
        sim = Simulator()
        return sim, Tracer(sim)

    def test_emit_records_time_and_fields(self):
        sim, tracer = self._tracer()
        sim.call_after(2.0, tracer.emit, "net", "send")
        sim.run()
        (rec,) = tracer.records
        assert rec.time == 2.0
        assert rec.category == "net"
        assert rec.name == "send"

    def test_select_by_fields(self):
        sim, tracer = self._tracer()
        tracer.emit("net", "send", src=0, dst=1)
        tracer.emit("net", "send", src=1, dst=0)
        tracer.emit("net", "recv", src=0, dst=1)
        assert len(tracer.select("net")) == 3
        assert len(tracer.select("net", "send")) == 2
        assert len(tracer.select("net", "send", src=1)) == 1

    def test_count_includes_muted(self):
        sim, tracer = self._tracer()
        tracer.mute("net")
        tracer.emit("net", "send")
        tracer.emit("net", "send")
        assert tracer.records == []
        assert tracer.count("net", "send") == 2
        assert tracer.count("net") == 2

    def test_unmute_restores_storage(self):
        sim, tracer = self._tracer()
        tracer.mute("net")
        tracer.emit("net", "send")
        tracer.unmute("net")
        tracer.emit("net", "send")
        assert len(tracer.records) == 1

    def test_record_get_and_as_dict(self):
        sim, tracer = self._tracer()
        tracer.emit("ev", "raise", event="TERMINATE", tid=4)
        rec = tracer.records[0]
        assert rec.get("event") == "TERMINATE"
        assert rec.get("missing", "dflt") == "dflt"
        assert rec.as_dict()["tid"] == 4

    def test_subscribe_listener_sees_muted(self):
        sim, tracer = self._tracer()
        seen = []
        tracer.subscribe(lambda r: seen.append(r.name))
        tracer.mute("net")
        tracer.emit("net", "send")
        assert seen == ["send"]

    def test_signature_equality_for_identical_runs(self):
        def run():
            sim = Simulator()
            tracer = Tracer(sim)
            sim.call_after(1.0, tracer.emit, "a", "x")
            sim.call_after(2.0, tracer.emit, "a", "y")
            sim.run()
            return tracer.signature()

        assert run() == run()

    def test_clear(self):
        sim, tracer = self._tracer()
        tracer.emit("a", "x")
        tracer.clear()
        assert tracer.records == []
        assert tracer.count("a") == 0
