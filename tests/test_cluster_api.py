"""Tests for the Cluster facade: naming, lookups, diagnostics."""

import pytest

from repro import Cluster, ClusterConfig
from repro.errors import KernelError, NameServiceError, UnknownThreadError
from tests.conftest import Echo, Sleeper, make_cluster


class TestObjectCreation:
    def test_create_with_name_binding(self):
        cluster = make_cluster(n_nodes=2)
        cap = cluster.create_object(Echo, node=1, name="echo-service")
        assert cluster.names.lookup("echo-service") == cap

    def test_duplicate_name_rejected(self):
        cluster = make_cluster(n_nodes=2)
        cluster.create_object(Echo, node=0, name="svc")
        with pytest.raises(NameServiceError):
            cluster.create_object(Echo, node=1, name="svc")

    def test_create_on_unknown_node(self):
        cluster = make_cluster(n_nodes=2)
        with pytest.raises(KernelError):
            cluster.create_object(Echo, node=9)

    def test_get_object_unknown_oid(self):
        cluster = make_cluster(n_nodes=1)
        with pytest.raises(KernelError):
            cluster.get_object(424242)

    def test_oids_deterministic_per_cluster(self):
        a = make_cluster(n_nodes=1)
        b = make_cluster(n_nodes=1)
        assert a.create_object(Echo).oid == b.create_object(Echo).oid


class TestThreadLookup:
    def test_thread_by_tid(self):
        cluster = make_cluster(n_nodes=2)
        sleeper = cluster.create_object(Sleeper, node=1)
        thread = cluster.spawn(sleeper, "hold", 10.0, at=0)
        cluster.run(until=0.5)
        assert cluster.thread(thread.tid) is thread

    def test_dead_thread_lookup_raises(self):
        cluster = make_cluster(n_nodes=2)
        echo = cluster.create_object(Echo, node=1)
        thread = cluster.spawn(echo, "echo", 1, at=0)
        cluster.run()
        with pytest.raises(UnknownThreadError):
            cluster.thread(thread.tid)


class TestDiagnostics:
    def test_quiescent_after_run(self):
        cluster = make_cluster(n_nodes=2)
        echo = cluster.create_object(Echo, node=1)
        cluster.spawn(echo, "echo", 1, at=0)
        assert not cluster.quiescent()
        cluster.run()
        assert cluster.quiescent()

    def test_message_stats_shape(self):
        cluster = make_cluster(n_nodes=2)
        echo = cluster.create_object(Echo, node=1)
        cluster.spawn(echo, "echo", 1, at=0)
        cluster.run()
        stats = cluster.message_stats()
        assert stats["sent"] == stats["delivered"] > 0
        assert stats["dropped"] == 0

    def test_now_tracks_simulator(self):
        cluster = make_cluster(n_nodes=1)
        cluster.run(until=1.25)
        assert cluster.now == 1.25

    def test_new_group_rooted_at_node(self):
        cluster = make_cluster(n_nodes=3)
        gid = cluster.new_group(root=2)
        assert gid.root == 2
        assert cluster.groups.exists(gid)


class TestConfigVariants:
    @pytest.mark.parametrize("locator", ["path", "broadcast", "multicast"])
    @pytest.mark.parametrize("mode", ["master", "per-event"])
    def test_all_config_combinations_boot_and_run(self, locator, mode):
        cluster = Cluster(ClusterConfig(n_nodes=3, locator=locator,
                                        object_event_mode=mode))
        echo = cluster.create_object(Echo, node=2)
        thread = cluster.spawn(echo, "echo", "ok", at=0)
        cluster.run()
        assert thread.completion.result() == "ok"

    def test_single_node_cluster_works(self):
        cluster = Cluster(ClusterConfig(n_nodes=1))
        echo = cluster.create_object(Echo, node=0)
        thread = cluster.spawn(echo, "echo", 5, at=0)
        cluster.run()
        assert thread.completion.result() == 5
        assert cluster.fabric.stats.sent == 0  # everything local
