"""Property-based tests for the invocation engine.

Random call trees over random placements must compute the right values,
leave no TCB/thread residue, and keep the per-node forwarding chains
consistent with the thread's actual frame stack at any quiescent point.
"""

from hypothesis import given, settings, strategies as st

from repro import DistObject, entry
from tests.conftest import make_cluster


class TreeNode(DistObject):
    """Evaluates arithmetic call trees by invoking child objects."""

    @entry
    def evaluate(self, ctx, tree, caps):
        """tree: int leaf, or ("add"|"mul", left, right, cap_index)."""
        if isinstance(tree, int):
            yield ctx.compute(1e-5)
            return tree
        op, left, right, index = tree
        left_value = yield ctx.invoke(caps[index % len(caps)], "evaluate",
                                      left, caps)
        right_value = yield ctx.invoke(caps[(index + 1) % len(caps)],
                                       "evaluate", right, caps)
        return (left_value + right_value if op == "add"
                else left_value * right_value)


def model_eval(tree):
    if isinstance(tree, int):
        return tree
    op, left, right, _ = tree
    a, b = model_eval(left), model_eval(right)
    return a + b if op == "add" else a * b


trees = st.recursive(
    st.integers(min_value=-5, max_value=5),
    lambda children: st.tuples(st.sampled_from(["add", "mul"]),
                               children, children,
                               st.integers(min_value=0, max_value=7)),
    max_leaves=8)


@settings(max_examples=30, deadline=None)
@given(tree=trees,
       n_nodes=st.integers(min_value=1, max_value=6),
       n_objects=st.integers(min_value=1, max_value=5))
def test_call_trees_compute_model_value(tree, n_nodes, n_objects):
    cluster = make_cluster(n_nodes=n_nodes, trace_net=False)
    caps = [cluster.create_object(TreeNode, node=i % n_nodes)
            for i in range(n_objects)]
    thread = cluster.spawn(caps[0], "evaluate", tree, caps, at=0)
    cluster.run()
    assert thread.completion.result() == model_eval(tree)
    # no residue anywhere
    assert thread.tid not in cluster.live_threads
    for kernel in cluster.kernels.values():
        assert thread.tid not in kernel.thread_table


class Parker(DistObject):
    @entry
    def descend(self, ctx, caps, plan):
        if plan:
            result = yield ctx.invoke(caps[plan[0] % len(caps)], "descend",
                                      caps, plan[1:])
            return result
        yield ctx.sleep(1e6)
        return "deep"


@settings(max_examples=30, deadline=None)
@given(plan=st.lists(st.integers(min_value=0, max_value=9), max_size=8),
       n_nodes=st.integers(min_value=2, max_value=6))
def test_forwarding_chain_matches_frames(plan, n_nodes):
    """At quiescence, walking next_node pointers from the root reaches the
    innermost node, and frame counts per node match the stack."""
    cluster = make_cluster(n_nodes=n_nodes, trace_net=False)
    caps = [cluster.create_object(Parker, node=(i % (n_nodes - 1)) + 1
                                  if n_nodes > 1 else 0)
            for i in range(6)]
    thread = cluster.spawn(caps[0], "descend", caps, plan, at=0)
    cluster.run(until=10.0)
    assert thread.alive

    # 1. TCB frame counts match *arrival episodes* per node: a TCB entry
    # is created per remote arrival; locally-nested frames share it.
    per_node: dict[int, int] = {thread.tid.root: 1}  # the root anchor
    previous = thread.tid.root
    for frame in thread.frames:
        if frame.node != previous:
            per_node[frame.node] = per_node.get(frame.node, 0) + 1
        previous = frame.node
    for node, kernel in cluster.kernels.items():
        tcb = kernel.thread_table.get(thread.tid)
        expected = per_node.get(node, 0)
        if expected == 0:
            assert tcb is None
        else:
            assert tcb is not None and tcb.frames == expected

    # 2. the forwarding walk terminates at the innermost node
    seen = set()
    node = thread.tid.root
    while True:
        assert node not in seen, "forwarding cycle"
        seen.add(node)
        tcb = cluster.kernels[node].thread_table.get(thread.tid)
        assert tcb is not None
        if tcb.innermost:
            assert node == thread.current_node
            break
        assert tcb.next_node is not None
        node = tcb.next_node
