"""Tests for the distributed lock manager and §4.2 cleanup chaining."""

import pytest

from repro import DistObject, entry
from repro.errors import LockNotHeldError
from repro.locks import LockManager
from tests.conftest import make_cluster


class LockUser(DistObject):
    @entry
    def acquire_and_hold(self, ctx, mgr, names, hold=1000.0):
        for name in names:
            yield ctx.invoke(mgr, "acquire", name)
        yield ctx.sleep(hold)
        for name in reversed(names):
            yield ctx.invoke(mgr, "release", name)
        return "released"

    @entry
    def acquire_release(self, ctx, mgr, name):
        yield ctx.invoke(mgr, "acquire", name)
        yield ctx.compute(1e-4)
        yield ctx.invoke(mgr, "release", name)
        return "cycled"

    @entry
    def try_it(self, ctx, mgr, name):
        result = yield ctx.invoke(mgr, "try_acquire", name)
        return result

    @entry
    def release_unheld(self, ctx, mgr, name):
        yield ctx.invoke(mgr, "release", name)

    @entry
    def reentrant(self, ctx, mgr, name):
        yield ctx.invoke(mgr, "acquire", name)
        yield ctx.invoke(mgr, "acquire", name)
        yield ctx.invoke(mgr, "release", name)
        holder_mid = yield ctx.invoke(mgr, "holder_of", name)
        yield ctx.invoke(mgr, "release", name)
        holder_end = yield ctx.invoke(mgr, "holder_of", name)
        return holder_mid, holder_end

    @entry
    def count_critical(self, ctx, mgr, name, counter_obj, rounds):
        for _ in range(rounds):
            yield ctx.invoke(mgr, "acquire", name)
            value = yield ctx.invoke(counter_obj, "get")
            yield ctx.compute(1e-4)
            yield ctx.invoke(counter_obj, "set", value + 1)
            yield ctx.invoke(mgr, "release", name)
        return "done"


class Cell(DistObject):
    def __init__(self):
        super().__init__()
        self.value = 0

    @entry
    def get(self, ctx):
        yield ctx.compute(0)
        return self.value

    @entry
    def set(self, ctx, value):
        yield ctx.compute(0)
        self.value = value


@pytest.fixture()
def rig():
    cluster = make_cluster(n_nodes=4)
    mgr = cluster.create_object(LockManager, node=3)
    user = cluster.create_object(LockUser, node=1)
    return cluster, mgr, user


class TestBasicLocking:
    def test_acquire_release_cycle(self, rig):
        cluster, mgr, user = rig
        thread = cluster.spawn(user, "acquire_release", mgr, "L", at=0)
        cluster.run()
        assert thread.completion.result() == "cycled"
        assert cluster.get_object(mgr).acquires == 1
        assert cluster.get_object(mgr).releases == 1

    def test_contention_serialises(self, rig):
        cluster, mgr, user = rig
        cell = cluster.create_object(Cell, node=2)
        threads = [cluster.spawn(user, "count_critical", mgr, "L", cell,
                                 5, at=i) for i in range(4)]
        cluster.run()
        assert all(t.completion.result() == "done" for t in threads)
        # with the lock, no increments are lost
        assert cluster.get_object(cell).value == 20

    def test_fifo_grant_order(self, rig):
        cluster, mgr, user = rig
        cluster.spawn(user, "acquire_and_hold", mgr, ["L"], 0.5, at=0)
        cluster.run(until=0.1)
        w1 = cluster.spawn(user, "acquire_release", mgr, "L", at=1)
        cluster.run(until=0.2)
        w2 = cluster.spawn(user, "acquire_release", mgr, "L", at=2)
        cluster.run()
        # both eventually succeed
        assert w1.completion.result() == "cycled"
        assert w2.completion.result() == "cycled"

    def test_try_acquire(self, rig):
        cluster, mgr, user = rig
        cluster.spawn(user, "acquire_and_hold", mgr, ["L"], 10.0, at=0)
        cluster.run(until=0.1)
        prober = cluster.spawn(user, "try_it", mgr, "L", at=1)
        cluster.run(until=0.2)
        assert prober.completion.result() is False
        prober2 = cluster.spawn(user, "try_it", mgr, "FREE", at=1)
        cluster.run(until=0.3)
        assert prober2.completion.result() is True

    def test_release_unheld_rejected(self, rig):
        cluster, mgr, user = rig
        thread = cluster.spawn(user, "release_unheld", mgr, "L", at=0)
        cluster.run()
        with pytest.raises(LockNotHeldError):
            thread.completion.result()

    def test_reentrancy(self, rig):
        cluster, mgr, user = rig
        thread = cluster.spawn(user, "reentrant", mgr, "L", at=0)
        cluster.run()
        holder_mid, holder_end = thread.completion.result()
        assert holder_mid == thread.tid
        assert holder_end is None


class TestCleanupChaining:
    def test_terminate_releases_all_locks(self, rig):
        cluster, mgr, user = rig
        thread = cluster.spawn(user, "acquire_and_hold", mgr,
                               ["a", "b", "c"], at=0)
        cluster.run(until=0.5)
        manager = cluster.get_object(mgr)
        held = [n for n, lk in manager._locks.items()
                if lk.holder is not None]
        assert sorted(held) == ["a", "b", "c"]
        cluster.raise_event("TERMINATE", thread.tid, from_node=2)
        cluster.run()
        assert thread.state == "terminated"
        assert all(lk.holder is None
                   for lk in manager._locks.values())
        assert manager.cleanup_releases == 3

    def test_cleanup_wakes_blocked_waiter(self, rig):
        cluster, mgr, user = rig
        holder = cluster.spawn(user, "acquire_and_hold", mgr, ["L"], at=0)
        cluster.run(until=0.2)
        waiter = cluster.spawn(user, "acquire_release", mgr, "L", at=2)
        cluster.run(until=0.4)
        assert waiter.state == "blocked"
        cluster.raise_event("TERMINATE", holder.tid, from_node=1)
        cluster.run()
        assert waiter.completion.result() == "cycled"

    def test_explicit_release_then_terminate_is_benign(self, rig):
        cluster, mgr, user = rig
        thread = cluster.spawn(user, "acquire_and_hold", mgr, ["L"],
                               0.2, at=0)
        cluster.run(until=0.5)  # released explicitly already
        assert thread.completion.result() == "released"
        # now a new holder takes the lock; the old thread is gone and its
        # cleanup never fires on the new holder's lock
        fresh = cluster.spawn(user, "acquire_and_hold", mgr, ["L"],
                              10.0, at=1)
        cluster.run(until=1.0)
        manager = cluster.get_object(mgr)
        assert manager._locks["L"].holder == fresh.tid

    def test_quit_event_also_releases(self, rig):
        cluster, mgr, user = rig
        thread = cluster.spawn(user, "acquire_and_hold", mgr, ["L"], at=0)
        cluster.run(until=0.5)
        cluster.raise_event("QUIT", thread.tid, from_node=2)
        cluster.run()
        assert thread.state == "terminated"
        manager = cluster.get_object(mgr)
        assert manager._locks["L"].holder is None

    def test_dead_waiter_skipped_on_grant(self, rig):
        cluster, mgr, user = rig
        cluster.spawn(user, "acquire_and_hold", mgr, ["L"], 1.0, at=0)
        cluster.run(until=0.2)
        doomed = cluster.spawn(user, "acquire_release", mgr, "L", at=1)
        cluster.run(until=0.4)
        survivor = cluster.spawn(user, "acquire_release", mgr, "L", at=2)
        cluster.run(until=0.6)
        cluster.invoker.terminate_thread(doomed)
        cluster.run()
        assert survivor.completion.result() == "cycled"

    def test_reap_releases_locks_of_crashed_threads(self, rig):
        cluster, mgr, user = rig

        class Crasher(DistObject):
            @entry
            def crash_holding(self, ctx, mgr_cap, name):
                yield ctx.invoke(mgr_cap, "acquire", name,
                                 False)  # no cleanup chain
                raise RuntimeError("died holding the lock")

        crasher = cluster.create_object(Crasher, node=2)
        thread = cluster.spawn(crasher, "crash_holding", mgr, "L", at=0)
        cluster.run()
        assert thread.state == "failed"
        manager = cluster.get_object(mgr)
        assert manager._locks["L"].holder is not None  # leaked
        cluster.spawn(user, "try_it", mgr, "ignored", at=1)
        driver = cluster.spawn(mgr, "reap", at=1)
        cluster.run()
        assert driver.completion.result() == ["L"]
        assert manager._locks["L"].holder is None
