"""Tests for overload control: credit-based flow control, the admission
gate and its shedding policies, the open-loop workload generator, the
failure-detector-gated outbox flush — and the knobs-off guarantee that
none of it perturbs existing runs."""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro import DistObject, on_event
from repro.bench.chaos import ChaosSpec, run_chaos
from repro.bench.workload import (
    FANOUT,
    WorkloadSpec,
    build_schedule,
    rate_at,
    summarize,
    zipf_weights,
)
from repro.errors import BenchmarkError, KernelError, OverloadShedError
from repro.events.admission import AdmissionGate
from repro.kernel.config import ClusterConfig
from tests.conftest import make_cluster

EVT = "EVT"


class SlowSink(DistObject):
    """Service object with a fixed per-post compute cost."""

    def __init__(self, service=5e-3):
        super().__init__()
        self.service = service
        self.seen = 0

    @on_event(EVT)
    def on_evt(self, ctx, block):
        yield ctx.compute(self.service)
        self.seen += 1
        return None


def _rig(**cfg):
    cfg.setdefault("n_nodes", 2)
    cfg.setdefault("reliable_delivery", True)
    cluster = make_cluster(**cfg)
    cluster.register_event(EVT)
    return cluster


def _notices(cluster):
    """Install an undeliverable hook collecting noticed post ids."""
    seen = set()

    def hook(block, target):
        if isinstance(block.user_data, int):
            seen.add(block.user_data)

    cluster.events.on_undeliverable = hook
    return seen


# ======================================================================
# config validation
# ======================================================================

class TestConfigValidation:
    def test_flow_credits_must_be_positive(self):
        with pytest.raises(KernelError):
            ClusterConfig(flow_credits=0)

    def test_admission_low_requires_high(self):
        with pytest.raises(KernelError):
            ClusterConfig(admission_low=4)

    def test_admission_low_cannot_exceed_high(self):
        with pytest.raises(KernelError):
            ClusterConfig(admission_high=4, admission_low=5)

    def test_admission_low_defaults_to_half_high(self):
        config = ClusterConfig(admission_high=10)
        assert config.admission_low == 5

    def test_unknown_policy_rejected(self):
        with pytest.raises(KernelError):
            ClusterConfig(overload_policy="bogus")

    def test_tenant_weights_must_be_positive(self):
        with pytest.raises(KernelError):
            ClusterConfig(tenant_weights={0: -1.0})


# ======================================================================
# admission gate (pure state machine)
# ======================================================================

class TestAdmissionGate:
    def test_watermark_hysteresis(self):
        gate = AdmissionGate(0, high=4, low=2)
        for _ in range(4):
            assert gate.admit(0)
            gate.charge(0)
        # Depth 4: admitting one more would cross high -> shedding.
        assert not gate.admit(0)
        assert gate.shedding and gate.shed_windows == 1
        gate.release(0)  # depth 3 > low: still shedding
        assert not gate.admit(0)
        gate.release(0)  # depth 2 <= low: hysteresis clears
        assert not gate.shedding
        assert gate.admit(0)

    def test_weighted_fair_shares(self):
        gate = AdmissionGate(0, high=8, low=4, weights={0: 3.0, 1: 1.0})
        assert gate.tenant_share(0) == 3
        assert gate.tenant_share(1) == 1
        assert gate.tenant_share(2) == 0  # unweighted: shed while over
        for _ in range(8):
            gate.charge(0)
        assert not gate.admit(0)  # hot tenant far over its share
        assert gate.admit(1)      # light tenant under its share
        assert not gate.admit(2)

    def test_stats_shape(self):
        gate = AdmissionGate(0, high=2, low=1)
        gate.charge(0, 2)
        stats = gate.stats()
        assert stats["admitted"] == 2
        assert stats["depth"] == 2 and stats["depth_hwm"] == 2


# ======================================================================
# credit-based flow control
# ======================================================================

class TestFlowControl:
    def test_window_parks_excess_and_drains(self):
        cluster = _rig(flow_credits=2)
        cap = cluster.create_object(SlowSink, 1e-4, node=1)
        for pid in range(12):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run()
        assert cluster.get_object(cap).seen == 12
        rel = cluster.reliability_stats()
        assert rel["flow_parked"] > 0
        assert rel["inflight_hwm"] <= 2
        peer = cluster.kernels[0].reliable.peer_stats()[1]
        assert peer["inflight"] == 0 and peer["parked"] == 0
        assert peer["window"] == 2

    def test_aimd_halves_on_timeout_and_recovers(self):
        cluster = _rig(flow_credits=8, max_retransmits=20)
        cap = cluster.create_object(SlowSink, 1e-4, node=1)
        cluster.fabric.faults.drop_rate = 1.0
        for pid in range(8):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run(until=cluster.now + 0.5)
        rel = cluster.reliability_stats()
        assert rel["flow_halvings"] > 0
        assert cluster.kernels[0].reliable.peer_stats()[1]["window"] == 1
        cluster.fabric.faults.drop_rate = 0.0
        for pid in range(8, 28):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run()
        assert cluster.get_object(cap).seen == 28
        # Additive recovery: productive acks grew the window back up.
        window = cluster.kernels[0].reliable.peer_stats()[1]["window"]
        assert 1 < window <= 8

    def test_no_flow_keys_when_off(self):
        cluster = _rig()
        cap = cluster.create_object(SlowSink, 1e-4, node=1)
        cluster.events.raise_external(EVT, cap, from_node=0, user_data=0)
        cluster.run()
        rel = cluster.reliability_stats()
        for key in ("flow_parked", "flow_halvings", "flow_queued",
                    "inflight_hwm"):
            assert key not in rel


# ======================================================================
# shedding policies
# ======================================================================

class TestSheddingPolicies:
    def test_drop_sheds_with_notices(self):
        cluster = _rig(admission_high=4, overload_policy="drop")
        noticed = _notices(cluster)
        cap = cluster.create_object(SlowSink, 5e-3, node=1)
        for pid in range(20):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run()
        sink = cluster.get_object(cap)
        # Every post accounted: executed or shed-with-notice.
        assert sink.seen + len(noticed) == 20
        assert len(noticed) > 0
        sup = cluster.supervision_stats()
        assert sup["admission_shed_dropped"] == len(noticed)
        assert sup["admission_gate_depth"] == 0  # all charges released
        assert sup["admission_shed_windows"] >= 1

    def test_sync_raiser_gets_overload_error(self):
        cluster = _rig(admission_high=2, overload_policy="drop")
        cap = cluster.create_object(SlowSink, 5e-3, node=1)
        for pid in range(6):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        future = cluster.events.raise_external(EVT, cap, from_node=0,
                                               synchronous=True)
        cluster.run()
        assert future.failed
        with pytest.raises(OverloadShedError):
            future.result()

    def test_degrade_executes_exactly_once_despite_duplicates(self):
        cluster = _rig(admission_high=4, overload_policy="degrade")
        cluster.fabric.faults.duplicate_rate = 0.5
        noticed = _notices(cluster)
        cap = cluster.create_object(SlowSink, 5e-3, node=1)
        for pid in range(20):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run()
        # Degraded datagrams all arrive (no drops): dedup keeps each
        # post exactly-once and nobody needs a notice.
        assert cluster.get_object(cap).seen == 20
        assert not noticed
        assert cluster.supervision_stats()["admission_shed_degraded"] > 0

    def test_post_deadline_fires_for_shed_posts(self):
        # Total loss: admitted posts retransmit against the void with a
        # generous budget; *degraded* posts have no retransmission, so
        # only the post_deadline backstop can surface their loss.
        cluster = _rig(admission_high=2, overload_policy="degrade",
                       post_deadline=0.5, max_retransmits=4,
                       retransmit_base=0.2)
        cluster.fabric.faults.drop_rate = 1.0
        noticed = _notices(cluster)
        cap = cluster.create_object(SlowSink, 5e-3, node=1)
        t0 = cluster.now
        for pid in range(8):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        # Just past the deadline every degraded post is noticed, while
        # the admitted ones are still mid-retransmission.
        cluster.run(until=t0 + 0.6)
        assert cluster.get_object(cap).seen == 0
        assert len(noticed) >= 6
        cluster.run(until=t0 + 30.0)
        assert len(noticed) == 8  # give-ups surface the rest

    def test_defer_redelivers_durable_posts(self):
        cluster = _rig(admission_high=4, overload_policy="defer",
                       durable_delivery=True)
        noticed = _notices(cluster)
        cap = cluster.create_object(SlowSink, 5e-3, node=1)
        for pid in range(30):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run()
        assert cluster.get_object(cap).seen == 30
        assert not noticed
        store = cluster.durability_stats()
        assert store["pending"] == 0
        assert store["deferred"] > 0
        assert store["redelivered"] >= store["deferred"]
        assert cluster.supervision_stats()["admission_shed_deferred"] > 0

    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 2**16),
           policy=st.sampled_from(["drop", "degrade", "defer"]))
    def test_durable_posts_never_lost(self, seed, policy):
        """Whatever the policy, a durable post is deferred, never shed:
        journal accounting balances and every post executes."""
        cluster = _rig(seed=seed, admission_high=3, flow_credits=4,
                       overload_policy=policy, durable_delivery=True)
        noticed = _notices(cluster)
        cap = cluster.create_object(SlowSink, 5e-3, node=1)
        for pid in range(24):
            cluster.events.raise_external(EVT, cap, from_node=0,
                                          user_data=pid)
        cluster.run()
        assert cluster.get_object(cap).seen == 24
        assert not noticed
        store = cluster.durability_stats()
        assert store["pending"] == 0
        assert store["recorded"] == 24
        assert (store["delivered"] + store.get("quarantined", 0)
                == store["recorded"])


# ======================================================================
# failure-detector-gated outbox flush
# ======================================================================

class TestFlushGating:
    def test_flush_skips_suspected_peer(self):
        cluster = _rig(n_nodes=3, durable_delivery=True,
                       heartbeat_interval=0.05,
                       outbox_flush_interval=0.1, max_retransmits=2,
                       retransmit_base=0.02)
        cap = cluster.create_object(SlowSink, 1e-4, node=1)
        cluster.run(until=cluster.now + 0.3)  # detector warms up
        cluster.crash_node(1)
        cluster.events.raise_external(EVT, cap, from_node=0, user_data=0)
        cluster.run(until=cluster.now + 2.0)
        # The send gave up, the entry parked, and the flush timer held
        # back instead of burning retransmits against a suspected node.
        store = cluster.durability_stats()
        assert store["pending"] == 1
        assert store["flush_skips"] > 0
        assert cluster.kernels[0].failure.is_suspected(1)
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 2.0)
        assert cluster.get_object(cap).seen == 1
        assert cluster.durability_stats()["pending"] == 0


# ======================================================================
# open-loop workload generator
# ======================================================================

class TestWorkloadGenerator:
    def test_same_seed_same_schedule(self):
        spec = WorkloadSpec(seed=3, duration=2.0, rate=500.0)
        assert build_schedule(spec) == build_schedule(spec)
        other = build_schedule(replace(spec, seed=4))
        assert other != build_schedule(spec)

    def test_mean_rate_matches_spec(self):
        for arrival in ("poisson", "bursty", "uniform"):
            spec = WorkloadSpec(seed=1, duration=20.0, rate=400.0,
                                arrival=arrival, diurnal_depth=0.5)
            schedule = build_schedule(spec)
            observed = len(schedule) / spec.duration
            assert abs(observed - spec.rate) / spec.rate < 0.07, \
                (arrival, observed)

    def test_modulation_preserves_mean_rate(self):
        spec = WorkloadSpec(duration=10.0, rate=300.0, arrival="bursty",
                            burst_factor=6.0, diurnal_depth=0.8)
        steps = 4000
        dt = spec.duration / steps
        integral = sum(rate_at(spec, (i + 0.5) * dt) * dt
                       for i in range(steps))
        assert abs(integral - spec.rate * spec.duration) \
            / (spec.rate * spec.duration) < 0.01

    def test_zipf_popularity_skews_hot_target(self):
        spec = WorkloadSpec(seed=7, duration=10.0, rate=500.0,
                            n_targets=8, zipf_s=1.2)
        stats = summarize(build_schedule(spec), spec.duration)
        # Uniform would give ~1/8 = 0.125; Zipf(1.2) concentrates.
        assert stats["hot_target_share"] > 0.3
        flat = summarize(build_schedule(replace(spec, zipf_s=0.0)),
                         spec.duration)
        assert flat["hot_target_share"] < 0.2

    def test_fanout_every_marks_storms(self):
        spec = WorkloadSpec(seed=5, duration=2.0, rate=200.0,
                            fanout_every=5)
        schedule = build_schedule(spec)
        for index, arrival in enumerate(schedule):
            assert (arrival.target == FANOUT) == ((index + 1) % 5 == 0)

    def test_tenant_rates_split_load(self):
        spec = WorkloadSpec(seed=2, duration=10.0, rate=400.0,
                            tenants=(0, 1), tenant_rates=(3.0, 1.0))
        stats = summarize(build_schedule(spec), spec.duration)
        counts = stats["tenant_counts"]
        assert counts[0] / (counts[0] + counts[1]) == pytest.approx(
            0.75, abs=0.05)

    def test_validation(self):
        with pytest.raises(BenchmarkError):
            WorkloadSpec(arrival="nope")
        with pytest.raises(BenchmarkError):
            WorkloadSpec(rate=0.0)
        with pytest.raises(BenchmarkError):
            WorkloadSpec(tenants=(0, 1), tenant_rates=(1.0,))

    def test_zipf_weights_monotone(self):
        weights = zipf_weights(6, 1.1)
        assert weights == sorted(weights, reverse=True)


# ======================================================================
# chaos at 2x overload
# ======================================================================

class TestChaosOverload:
    def test_knobs_off_digest_unchanged(self):
        base = ChaosSpec(posts=40, settle=5.0)
        explicit = ChaosSpec(posts=40, settle=5.0, overload=1.0,
                             overload_policy="drop")
        assert run_chaos(base).digest == run_chaos(explicit).digest

    def test_overload_with_crashes_keeps_invariants(self):
        spec = ChaosSpec(posts=80, overload=2.0, admission_high=8,
                         flow_credits=8, overload_policy="drop",
                         crash_period=0.3, settle=10.0)
        report = run_chaos(spec)
        assert report.violations == []
        assert report.accounted_rate == 1.0
        # Crash-window queue buildup actually tripped the gate.
        assert report.supervision["admission_shed_dropped"] > 0

    def test_durable_overload_with_crashes_loses_nothing(self):
        spec = ChaosSpec(posts=80, overload=2.0, durable=True,
                         admission_high=8, flow_credits=8,
                         overload_policy="defer", crash_period=0.3,
                         settle=10.0)
        report = run_chaos(spec)
        assert report.violations == []
        assert report.executed_once == spec.posts
        assert report.durability["pending"] == 0

    def test_overload_run_deterministic(self):
        spec = ChaosSpec(posts=50, overload=2.0, admission_high=8,
                         flow_credits=4, overload_policy="drop",
                         settle=8.0)
        assert run_chaos(spec).digest == run_chaos(spec).digest


# ======================================================================
# stats surfacing
# ======================================================================

class TestStatsSurfacing:
    def test_admission_counters_always_in_supervision_stats(self):
        cluster = _rig()
        sup = cluster.supervision_stats()
        for key in ("admission_admitted", "admission_shed_dropped",
                    "admission_shed_degraded", "admission_shed_deferred",
                    "admission_gate_depth", "admission_gate_depth_hwm",
                    "admission_shed_windows"):
            assert key in sup

    def test_outbox_stats_keys_gated_on_nonzero(self):
        cluster = _rig(durable_delivery=True)
        cap = cluster.create_object(SlowSink, 1e-4, node=1)
        cluster.events.raise_external(EVT, cap, from_node=0, user_data=0)
        cluster.run()
        store = cluster.durability_stats()
        for key in ("parked", "deferred", "flush_skips"):
            assert key not in store
