"""Tests for user-level VM managers (external pagers, §6.4)."""

import pytest

from repro import DistObject, TRANSPORT_DSM, entry
from repro.dsm import PagerServer, attach_pager
from repro.errors import PagerError
from tests.conftest import make_cluster


class Board(DistObject):
    """A pageable shared board: every field is pager-backed."""

    dsm_pageable = True
    dsm_pages = 4

    @entry
    def put(self, ctx, pager_cap, key, value):
        yield attach_pager(pager_cap)
        yield ctx.write(key, value)
        result = yield ctx.read(key)
        return result

    @entry
    def get(self, ctx, pager_cap, key):
        yield attach_pager(pager_cap)
        result = yield ctx.read(key)
        return result


class SeededPager(PagerServer):
    """Backs pages from a pre-seeded store."""

    def __init__(self, store, **kwargs):
        super().__init__(**kwargs)
        self.store = store

    def make_page(self, oid, page_id, field):
        return dict(self.store.get(page_id, {field: 0}))


class TestBasicPaging:
    def test_fault_served_by_buddy_pager(self):
        cluster = make_cluster(n_nodes=3)
        pager = cluster.create_object(PagerServer, node=0)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        thread = cluster.spawn(board, "put", pager, "x", 7, at=2)
        cluster.run()
        assert thread.completion.result() == 7
        assert cluster.get_object(pager).faults_served == 1
        assert cluster.dsm.protocol_stats()["vm_faults"] == 1

    def test_pager_supplies_backing_content(self):
        cluster = make_cluster(n_nodes=3)
        store = {}
        pager = cluster.create_object(SeededPager, store, node=0)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        segment = cluster.dsm.segment_of(board.oid)
        page = segment.page_of("answer")
        store[page.page_id] = {"answer": 42}
        thread = cluster.spawn(board, "get", pager, "answer", at=2)
        cluster.run()
        assert thread.completion.result() == 42

    def test_second_access_no_fault(self):
        cluster = make_cluster(n_nodes=3)
        pager = cluster.create_object(PagerServer, node=0)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        cluster.spawn(board, "put", pager, "x", 1, at=2)
        cluster.run()
        t2 = cluster.spawn(board, "get", pager, "x", at=2)
        cluster.run()
        assert t2.completion.result() == 1
        # the page is materialised: only the first access vm-faulted
        assert cluster.dsm.protocol_stats()["vm_faults"] == 1

    def test_unhandled_fault_terminates_thread(self):
        cluster = make_cluster(n_nodes=2)

        class NoPagerBoard(Board):
            @entry
            def naked_read(self, ctx, key):
                result = yield ctx.read(key)
                return result

        board = cluster.create_object(NoPagerBoard, node=1,
                                      transport=TRANSPORT_DSM)
        thread = cluster.spawn(board, "naked_read", "x", at=0)
        cluster.run()
        # VM_FAULT default action: terminate the faulting thread
        assert thread.state == "terminated"


class TestCopyAndMerge:
    def test_private_copies_for_concurrent_faulters(self):
        cluster = make_cluster(n_nodes=4)
        pager = cluster.create_object(PagerServer, node=0,
                                      serve_private_copies=True)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        threads = [cluster.spawn(board, "put", pager, "x", 100 + node,
                                 at=node) for node in (2, 3)]
        cluster.run()
        # each faulter got its own copy; both see their own writes
        assert threads[0].completion.result() == 102
        assert threads[1].completion.result() == 103
        segment = cluster.dsm.segment_of(board.oid)
        page = segment.page_of("x")
        assert set(page.private_copies) == {2, 3}
        assert not page.materialized

    def test_merge_reconciles_copies(self):
        cluster = make_cluster(n_nodes=4)
        pager = cluster.create_object(PagerServer, node=0,
                                      serve_private_copies=True)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        for node in (2, 3):
            cluster.spawn(board, "put", pager, f"k{node}", node, at=node)
        cluster.run()
        segment = cluster.dsm.segment_of(board.oid)
        pages_with_copies = [p for p in segment.pages if p.private_copies]
        driver = cluster.spawn(pager, "merge", board.oid,
                               pages_with_copies[0].page_id, at=0)
        cluster.run()
        merged = driver.completion.result()
        assert isinstance(merged, dict)
        assert not pages_with_copies[0].private_copies
        assert pages_with_copies[0].materialized

    def test_merge_without_copies_rejected(self):
        cluster = make_cluster(n_nodes=2)
        pager = cluster.create_object(PagerServer, node=0)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        driver = cluster.spawn(pager, "merge", board.oid, 0, at=0)
        cluster.run()
        with pytest.raises(PagerError):
            driver.completion.result()

    def test_weak_accesses_excluded_from_audit(self):
        cluster = make_cluster(n_nodes=3)
        pager = cluster.create_object(PagerServer, node=0,
                                      serve_private_copies=True)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        cluster.spawn(board, "put", pager, "x", 1, at=2)
        cluster.run()
        counts = cluster.dsm.log.counts()
        assert counts["weak"] > 0
        assert cluster.dsm.log.check() == []


class TestPagerStats:
    def test_stats_entry(self):
        cluster = make_cluster(n_nodes=3)
        pager = cluster.create_object(PagerServer, node=0)
        board = cluster.create_object(Board, node=1,
                                      transport=TRANSPORT_DSM)
        cluster.spawn(board, "put", pager, "x", 1, at=2)
        cluster.run()
        probe = cluster.spawn(pager, "stats", at=1)
        cluster.run()
        stats = probe.completion.result()
        assert stats["faults_served"] == 1
        assert stats["pages_supplied"] == 1
