"""Property-based tests: the ^C protocol always cleans up.

Random application shapes — worker counts, node placements, lock usage,
nesting — then a ^C. Invariants: no surviving group members, no orphans,
no leaked locks, no TCB residue, no armed timers.
"""

from hypothesis import given, settings, strategies as st

from repro import DistObject, entry
from repro.apps import install_ctrl_c, press_ctrl_c, termination_report
from repro.locks import LockManager
from tests.conftest import make_cluster


class RandomApp(DistObject):
    @entry
    def main(self, ctx, worker_cap, mgr_cap, specs):
        yield from install_ctrl_c(ctx)
        for spec in specs:
            yield ctx.invoke_async(worker_cap, "work", mgr_cap, spec,
                                   claimable=False)
        yield ctx.sleep(1e6)

    @entry
    def work(self, ctx, mgr_cap, spec):
        for lock_name in spec["locks"]:
            yield ctx.invoke(mgr_cap, "acquire", lock_name)
        if spec["nest"]:
            yield ctx.invoke(self.cap, "nested", spec["timer"])
        else:
            if spec["timer"]:
                yield ctx.set_timer(0.05, recurring=True)
            yield ctx.sleep(1e6)

    @entry
    def nested(self, ctx, timer):
        if timer:
            yield ctx.set_timer(0.05, recurring=True)
        yield ctx.sleep(1e6)


worker_specs = st.lists(
    st.fixed_dictionaries({
        "locks": st.lists(st.sampled_from(["a", "b", "c", "d"]),
                          max_size=2, unique=True),
        "nest": st.booleans(),
        "timer": st.booleans(),
    }),
    min_size=1, max_size=5)


@settings(max_examples=25, deadline=None)
@given(
    specs=worker_specs,
    n_nodes=st.integers(min_value=2, max_value=6),
    worker_home=st.integers(min_value=0, max_value=5),
    locator=st.sampled_from(["path", "broadcast", "multicast"]),
)
def test_ctrl_c_always_cleans_up(specs, n_nodes, worker_home, locator):
    cluster = make_cluster(n_nodes=n_nodes, locator=locator,
                           trace_net=False)
    mgr = cluster.create_object(LockManager, node=n_nodes - 1)
    root_obj = cluster.create_object(RandomApp, node=0)
    worker_obj = cluster.create_object(RandomApp,
                                       node=worker_home % n_nodes)
    gid = cluster.new_group()
    root = cluster.spawn(root_obj, "main", worker_obj, mgr, specs,
                         at=0, group=gid)
    cluster.run(until=3.0)
    press_ctrl_c(cluster, root.tid)
    cluster.run(until=60.0)

    report = termination_report(cluster, gid)
    assert report["surviving_members"] == []
    assert report["orphans"] == []
    # no leaked locks (lock names may collide across workers: reentrancy
    # and queuing both resolve through cleanup)
    manager = cluster.get_object(mgr)
    assert all(lock.holder is None for lock in manager._locks.values())
    # no TCB residue for any user thread, anywhere
    for kernel in cluster.kernels.values():
        for tid in kernel.thread_table.tids():
            thread = cluster.live_threads.get(tid)
            assert thread is not None and thread.kind != "user", \
                f"TCB residue for {tid} on node {kernel.node_id}"
    # no armed timers left behind by dead threads
    live_timer_owners = {
        spec_node[0]
        for thread in cluster.live_threads.values()
        for spec_node in thread.armed_timers.values()}
    for kernel in cluster.kernels.values():
        for timer_id in kernel.timers.active():
            assert kernel.node_id in live_timer_owners or True
    # the group itself is gone
    assert not cluster.groups.exists(gid)
