"""Property-based tests for handler chains and event blocks."""

from hypothesis import given, strategies as st

from repro.events.block import EventBlock
from repro.events.handlers import (
    HandlerChain,
    HandlerContext,
    HandlerRegistration,
)


def _registration(tag: int) -> HandlerRegistration:
    return HandlerRegistration(event="E", context=HandlerContext.CURRENT,
                               procedure=f"proc-{tag}")


#: operations against a chain: ("push", tag) or ("pop",) or ("remove", i)
ops = st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 99)),
        st.tuples(st.just("pop")),
        st.tuples(st.just("remove"), st.integers(0, 99)),
    ),
    max_size=60,
)


class TestChainModel:
    @given(ops)
    def test_chain_matches_list_model(self, operations):
        """The chain behaves exactly like a Python list used as a stack."""
        chain = HandlerChain("E")
        model: list[HandlerRegistration] = []
        for op in operations:
            if op[0] == "push":
                registration = _registration(op[1])
                chain.push(registration)
                model.append(registration)
            elif op[0] == "pop":
                if model:
                    assert chain.pop() is model.pop()
            else:
                if model:
                    victim = model[op[1] % len(model)]
                    assert chain.remove(victim.reg_id) is True
                    model.remove(victim)
        assert chain.in_order() == list(reversed(model))
        assert len(chain) == len(model)
        assert (chain.top() is model[-1]) if model else chain.top() is None

    @given(st.lists(st.integers(0, 99), max_size=30))
    def test_copy_is_snapshot(self, tags):
        chain = HandlerChain("E")
        for tag in tags:
            chain.push(_registration(tag))
        clone = chain.copy()
        clone.push(_registration(1000))
        if len(chain):
            chain.pop()
        # the clone kept the original content plus its own push
        assert len(clone) == len(tags) + 1

    @given(st.lists(st.integers(0, 99), min_size=1, max_size=30))
    def test_delivery_order_is_reverse_attachment(self, tags):
        chain = HandlerChain("E")
        pushed = [_registration(tag) for tag in tags]
        for registration in pushed:
            chain.push(registration)
        assert chain.in_order() == list(reversed(pushed))


class TestEventBlockProperties:
    @given(st.text(min_size=1, max_size=20),
           st.text(min_size=1, max_size=20),
           st.integers() | st.none() | st.text(max_size=10))
    def test_with_event_transforms_name_keeps_provenance(
            self, original, transformed, payload):
        block = EventBlock(event=original, raiser_node=3,
                           user_data=payload, raised_at=1.5)
        derived = block.with_event(transformed)
        assert derived.event == transformed
        assert derived.raiser_node == 3
        assert derived.user_data == payload
        assert derived.raised_at == 1.5
        assert derived.block_id != block.block_id
        assert not derived.synchronous

    @given(st.integers(min_value=1, max_value=50))
    def test_block_ids_unique(self, count):
        ids = {EventBlock(event="X").block_id for _ in range(count)}
        assert len(ids) == count
