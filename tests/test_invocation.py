"""Integration tests for the invocation engine: local/remote calls,
thread migration, TCB chains, spawning, exceptions, aborts."""

import pytest

from repro import DistObject, entry
from repro.errors import (
    InvocationAborted,
    NoSuchEntryError,
    ThreadTerminated,
    UnknownObjectError,
)
from repro.objects.capability import Capability
from tests.conftest import Echo, Relay, Sleeper, make_cluster, run_to_result


class TestLocalAndRemoteInvocation:
    def test_local_invocation_no_messages(self, cluster):
        cap = cluster.create_object(Echo, node=0)
        thread = cluster.spawn(cap, "echo", 42, at=0)
        assert run_to_result(cluster, thread) == 42
        assert cluster.fabric.stats.count("invoke.request") == 0

    def test_remote_invocation_migrates(self, cluster):
        cap = cluster.create_object(Echo, node=3)
        thread = cluster.spawn(cap, "where", at=0)
        assert run_to_result(cluster, thread) == 3
        assert cluster.fabric.stats.count("invoke.request") == 1
        assert cluster.fabric.stats.count("thread.complete") == 1

    def test_nested_remote_calls_return_correctly(self, cluster):
        echo = cluster.create_object(Echo, node=3)
        relay = cluster.create_object(Relay, node=1)
        thread = cluster.spawn(relay, "call", echo, "echo", "deep", at=0)
        assert run_to_result(cluster, thread) == "deep"
        # 0->1 and 1->3 requests, 3->1 reply, completion back to 0
        assert cluster.fabric.stats.count("invoke.request") == 2
        assert cluster.fabric.stats.count("invoke.reply") == 1

    def test_call_chain_across_all_nodes(self):
        cluster = make_cluster(n_nodes=6)
        relays = [cluster.create_object(Relay, node=i) for i in range(1, 6)]
        echo = cluster.create_object(Echo, node=0)
        thread = cluster.spawn(relays[0], "chain", relays[1:],
                               echo, "echo", "x", at=0)
        assert run_to_result(cluster, thread) == "x"

    def test_invocation_latency_charged(self):
        cluster = make_cluster(n_nodes=2, link_latency=0.1,
                               thread_create_cost=0.0)
        cap = cluster.create_object(Echo, node=1)
        cluster.spawn(cap, "echo", 1, at=0)
        cluster.run()
        # migrate (0.1) + compute (1e-5) + completion message (0.1)
        assert cluster.now == pytest.approx(0.2, abs=1e-3)

    def test_unknown_entry_propagates(self, cluster):
        cap = cluster.create_object(Echo, node=1)
        thread = cluster.spawn(cap, "no_such_entry", at=0)
        cluster.run()
        with pytest.raises(NoSuchEntryError):
            thread.completion.result()

    def test_unknown_object_propagates(self, cluster):
        ghost = Capability(oid=99999, home=1, transport="rpc")
        relay = cluster.create_object(Relay, node=0)
        thread = cluster.spawn(relay, "call", ghost, "echo", 1, at=0)
        cluster.run()
        with pytest.raises(UnknownObjectError):
            thread.completion.result()

    def test_wrong_arity_propagates(self, cluster):
        cap = cluster.create_object(Echo, node=1)
        thread = cluster.spawn(cap, "echo", 1, 2, 3, at=0)
        cluster.run()
        with pytest.raises(TypeError):
            thread.completion.result()


class TestTcbChains:
    def test_forwarding_chain_matches_migration(self):
        cluster = make_cluster(n_nodes=4)
        relays = [cluster.create_object(Relay, node=i) for i in (1, 2)]
        sleeper = cluster.create_object(Sleeper, node=3)
        thread = cluster.spawn(relays[0], "chain", relays[1:],
                               sleeper, "hold", 100.0, at=0)
        cluster.run(until=1.0)
        tid = thread.tid
        assert cluster.kernels[0].thread_table.get(tid).next_node == 1
        assert cluster.kernels[1].thread_table.get(tid).next_node == 2
        assert cluster.kernels[2].thread_table.get(tid).next_node == 3
        assert cluster.kernels[3].thread_table.innermost_here(tid)
        assert thread.current_node == 3

    def test_tcbs_cleaned_after_completion(self, cluster):
        echo = cluster.create_object(Echo, node=2)
        thread = cluster.spawn(echo, "echo", 1, at=0)
        cluster.run()
        for kernel in cluster.kernels.values():
            assert thread.tid not in kernel.thread_table
        assert thread.tid not in cluster.live_threads

    def test_return_resets_innermost(self, cluster):
        relay = cluster.create_object(Relay, node=1)
        echo = cluster.create_object(Echo, node=2)

        class Prober(DistObject):
            @entry
            def probe(self, ctx, relay_cap, echo_cap):
                yield ctx.invoke(relay_cap, "call", echo_cap, "echo", 1)
                yield ctx.sleep(50.0)
                return "end"

        prober = cluster.create_object(Prober, node=0)
        thread = cluster.spawn(prober, "probe", relay, echo, at=0)
        cluster.run(until=10.0)
        assert cluster.kernels[0].thread_table.innermost_here(thread.tid)
        assert thread.tid not in cluster.kernels[1].thread_table
        assert thread.tid not in cluster.kernels[2].thread_table


class TestAsyncInvocation:
    def test_claimable_result(self, cluster):
        echo = cluster.create_object(Echo, node=2)

        class Parent(DistObject):
            @entry
            def fan(self, ctx, cap):
                handle = yield ctx.invoke_async(cap, "echo", "child-result")
                value = yield ctx.wait(handle.result)
                return (str(handle.tid), value)

        parent = cluster.create_object(Parent, node=0)
        thread = cluster.spawn(parent, "fan", echo, at=0)
        tid_str, value = run_to_result(cluster, thread)
        assert value == "child-result"
        assert tid_str.startswith("T0.")  # rooted where spawned

    def test_nonclaimable_returns_no_future(self, cluster):
        echo = cluster.create_object(Echo, node=1)

        class Parent(DistObject):
            @entry
            def fire(self, ctx, cap):
                handle = yield ctx.invoke_async(cap, "echo", 1,
                                                claimable=False)
                return handle.result

        parent = cluster.create_object(Parent, node=0)
        thread = cluster.spawn(parent, "fire", echo, at=0)
        assert run_to_result(cluster, thread) is None

    def test_child_inherits_group(self, cluster):
        cluster.create_object(Echo, node=1)
        sleeper = cluster.create_object(Sleeper, node=1)

        class Parent(DistObject):
            @entry
            def fan(self, ctx, cap):
                yield ctx.invoke_async(cap, "hold", 100.0)
                yield ctx.invoke_async(cap, "hold", 100.0)
                yield ctx.sleep(100.0)

        gid = cluster.new_group()
        parent = cluster.create_object(Parent, node=0)
        cluster.spawn(parent, "fan", sleeper, at=0, group=gid)
        cluster.run(until=1.0)
        assert len(cluster.groups.members(gid)) == 3

    def test_spawn_charges_creation_cost(self):
        cluster = make_cluster(n_nodes=1, thread_create_cost=0.5,
                               link_latency=0.0)
        echo = cluster.create_object(Echo, node=0)
        cluster.spawn(echo, "echo", 1, at=0)
        cluster.run()
        assert cluster.now >= 0.5


class TestExceptionPropagation:
    def test_exception_crosses_invocation_boundary(self, cluster):
        echo = cluster.create_object(Echo, node=2)

        class Catcher(DistObject):
            @entry
            def guard(self, ctx, cap):
                try:
                    yield ctx.invoke(cap, "fail", KeyError("remote"))
                except KeyError as exc:
                    return f"caught {exc}"

        catcher = cluster.create_object(Catcher, node=0)
        thread = cluster.spawn(catcher, "guard", echo, at=0)
        assert "caught" in run_to_result(cluster, thread)

    def test_uncaught_exception_fails_thread(self, cluster):
        echo = cluster.create_object(Echo, node=1)
        thread = cluster.spawn(echo, "fail", RuntimeError("boom"), at=0)
        cluster.run()
        assert thread.state == "failed"
        with pytest.raises(RuntimeError, match="boom"):
            thread.completion.result()

    def test_finally_blocks_run_during_failure(self, cluster):
        log = []

        class Cleanly(DistObject):
            @entry
            def outer(self, ctx, cap):
                try:
                    yield ctx.invoke(cap, "fail", RuntimeError("x"))
                finally:
                    log.append("cleanup")

        echo = cluster.create_object(Echo, node=1)
        obj = cluster.create_object(Cleanly, node=0)
        thread = cluster.spawn(obj, "outer", echo, at=0)
        cluster.run()
        assert log == ["cleanup"]
        assert thread.state == "failed"


class TestTermination:
    def test_terminate_unwinds_all_frames(self, cluster):
        log = []

        class Nested(DistObject):
            @entry
            def outer(self, ctx, cap):
                try:
                    yield ctx.invoke(cap, "inner")
                finally:
                    log.append(("outer-cleanup", ctx.node))

            @entry
            def inner(self, ctx):
                try:
                    yield ctx.sleep(100.0)
                finally:
                    log.append(("inner-cleanup", ctx.node))

        a = cluster.create_object(Nested, node=0)
        b = cluster.create_object(Nested, node=2)

        class Outer2(DistObject):
            @entry
            def run(self, ctx, a_cap, b_cap):
                yield ctx.invoke(b_cap, "inner")

        thread = cluster.spawn(a, "outer", b, at=0)
        cluster.run(until=1.0)
        cluster.invoker.terminate_thread(thread, reason="test")
        cluster.run()
        assert thread.state == "terminated"
        # innermost first, at the right nodes
        assert log == [("inner-cleanup", 2), ("outer-cleanup", 0)]
        with pytest.raises(ThreadTerminated):
            thread.completion.result()

    def test_terminate_cleans_tcbs_everywhere(self, cluster):
        relay = cluster.create_object(Relay, node=1)
        sleeper = cluster.create_object(Sleeper, node=3)
        thread = cluster.spawn(relay, "call", sleeper, "hold", 100.0, at=0)
        cluster.run(until=1.0)
        cluster.invoker.terminate_thread(thread)
        cluster.run()
        for kernel in cluster.kernels.values():
            assert thread.tid not in kernel.thread_table
        assert thread.tid not in cluster.live_threads

    def test_terminate_idempotent(self, cluster):
        sleeper = cluster.create_object(Sleeper, node=1)
        thread = cluster.spawn(sleeper, "hold", 100.0, at=0)
        cluster.run(until=1.0)
        cluster.invoker.terminate_thread(thread)
        cluster.invoker.terminate_thread(thread)
        cluster.run()
        assert thread.state == "terminated"

    def test_catching_termination_is_futile(self, cluster):
        log = []

        class Stubborn(DistObject):
            @entry
            def cling(self, ctx):
                try:
                    yield ctx.sleep(100.0)
                except ThreadTerminated:
                    log.append("caught")
                    yield ctx.sleep(100.0)  # refuses to die
                log.append("unreachable")

        obj = cluster.create_object(Stubborn, node=0)
        thread = cluster.spawn(obj, "cling", at=0)
        cluster.run(until=1.0)
        cluster.invoker.terminate_thread(thread)
        cluster.run()
        assert thread.state == "terminated"
        assert log == ["caught"]


class TestAbortInvocation:
    def test_abort_unwinds_to_caller(self, cluster):
        class Stack(DistObject):
            @entry
            def outer(self, ctx, mid_cap, leaf_cap):
                try:
                    yield ctx.invoke(mid_cap, "mid", leaf_cap)
                except InvocationAborted:
                    return "aborted-observed"
                return "finished"

            @entry
            def mid(self, ctx, leaf_cap):
                result = yield ctx.invoke(leaf_cap, "leaf")
                return result

            @entry
            def leaf(self, ctx):
                yield ctx.sleep(100.0)
                return "leaf-done"

        a = cluster.create_object(Stack, node=0)
        b = cluster.create_object(Stack, node=1)
        c = cluster.create_object(Stack, node=2)
        thread = cluster.spawn(a, "outer", b, c, at=0)
        cluster.run(until=1.0)
        assert cluster.invoker.abort_invocation(thread, b.oid) is True
        cluster.run()
        assert thread.completion.result() == "aborted-observed"

    def test_abort_top_level_terminates(self, cluster):
        sleeper = cluster.create_object(Sleeper, node=1)
        thread = cluster.spawn(sleeper, "hold", 100.0, at=0)
        cluster.run(until=1.0)
        assert cluster.invoker.abort_invocation(thread, sleeper.oid) is True
        cluster.run()
        assert thread.state == "terminated"

    def test_abort_without_matching_frame(self, cluster):
        sleeper = cluster.create_object(Sleeper, node=1)
        other = cluster.create_object(Echo, node=2)
        thread = cluster.spawn(sleeper, "hold", 100.0, at=0)
        cluster.run(until=1.0)
        assert cluster.invoker.abort_invocation(thread, other.oid) is False


class TestThreadFacilities:
    def test_io_channel_shared_across_objects_and_nodes(self, cluster):
        from repro import IoChannel

        class Writer(DistObject):
            @entry
            def foo(self, ctx, bar_cap):
                yield ctx.io_write("from foo")
                yield ctx.invoke(bar_cap, "bar")
                return "ok"

            @entry
            def bar(self, ctx):
                yield ctx.io_write("from bar")

        a = cluster.create_object(Writer, node=0)
        b = cluster.create_object(Writer, node=3)
        channel = IoChannel("xterm")
        thread = cluster.spawn(a, "foo", b, at=0, io_channel=channel)
        run_to_result(cluster, thread)
        assert channel.text() == "from foo\nfrom bar"

    def test_create_object_from_thread_local_and_remote(self, cluster):
        class Factory(DistObject):
            @entry
            def build(self, ctx):
                local_cap = yield ctx.create(Echo)
                remote_cap = yield ctx.create(Echo, node=3)
                a = yield ctx.invoke(local_cap, "where")
                b = yield ctx.invoke(remote_cap, "where")
                return (local_cap.home, a, remote_cap.home, b)

        factory = cluster.create_object(Factory, node=1)
        thread = cluster.spawn(factory, "build", at=0)
        assert run_to_result(cluster, thread) == (1, 1, 3, 3)

    def test_new_group_syscall(self, cluster):
        class Grouper(DistObject):
            @entry
            def regroup(self, ctx):
                gid = yield ctx.new_group()
                return (str(gid), str(ctx.gid))

        obj = cluster.create_object(Grouper, node=0)
        thread = cluster.spawn(obj, "regroup", at=0)
        gid_str, ctx_gid = run_to_result(cluster, thread)
        assert gid_str == ctx_gid
