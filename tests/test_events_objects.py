"""Tests for object-based event handling (§4.3, §5.1, §7)."""

import pytest

from repro import DistObject, entry, on_event
from repro.errors import NoHandlerError, UnknownObjectError
from tests.conftest import Recorder, make_cluster


class Cabinet(DistObject):
    """Declares handlers in its interface, §5.1 style."""

    def __init__(self):
        super().__init__()
        self.log = []

    @entry
    def poke(self, ctx):
        yield ctx.compute(0)
        return "poked"

    @on_event("DELETE")
    def my_delete_handler(self, ctx, block):
        yield ctx.compute(1e-5)
        self.log.append(("delete", block.raiser_tid))
        return "deleted-gracefully"

    @on_event("SAVE")
    def my_save_handler(self, ctx, block):
        yield ctx.compute(1e-5)
        self.log.append(("save", block.user_data))
        return f"saved:{block.user_data}"


def _rig(**cfg):
    cluster = make_cluster(**cfg)
    cluster.register_event("SAVE")
    cluster.register_event("PING")
    return cluster


class TestObjectHandlers:
    def test_handler_not_invocable_as_entry(self):
        cluster = _rig()
        cap = cluster.create_object(Cabinet, node=1)
        thread = cluster.spawn(cap, "my_save_handler", at=0)
        cluster.run()
        assert thread.state == "failed"

    def test_user_event_with_payload(self):
        cluster = _rig()
        cap = cluster.create_object(Cabinet, node=1)
        future = cluster.raise_and_wait("SAVE", cap, from_node=0,
                                        user_data="state-42")
        cluster.run()
        assert future.result() == "saved:state-42"
        assert cluster.get_object(cap).log == [("save", "state-42")]

    def test_delete_runs_handler_then_destroys(self):
        cluster = _rig()
        cap = cluster.create_object(Cabinet, node=1)
        obj = cluster.get_object(cap)
        future = cluster.raise_and_wait("DELETE", cap, from_node=0)
        cluster.run()
        assert future.result() == "deleted-gracefully"
        assert obj.log == [("delete", None)]
        assert cluster.find_object(cap.oid) is None

    def test_delete_default_destroys_without_handler(self):
        cluster = _rig()
        cap = cluster.create_object(Recorder, node=1)  # no DELETE handler
        future = cluster.raise_and_wait("DELETE", cap, from_node=0)
        cluster.run()
        assert future.done
        assert cluster.find_object(cap.oid) is None

    def test_unhandled_user_event_rejected_sync(self):
        cluster = _rig()
        cap = cluster.create_object(Recorder, node=1)
        future = cluster.raise_and_wait("SAVE", cap, from_node=0)
        cluster.run()
        with pytest.raises(NoHandlerError):
            future.result()

    def test_unhandled_user_event_dropped_async(self):
        cluster = _rig()
        cap = cluster.create_object(Recorder, node=1)
        future = cluster.raise_event("SAVE", cap, from_node=0)
        cluster.run()
        assert future.result() == 1  # routed, then dropped with a trace
        assert cluster.tracer.count("event", "object-reject") == 1

    def test_raise_to_destroyed_object_fails_sync(self):
        cluster = _rig()
        cap = cluster.create_object(Cabinet, node=1)
        cluster.raise_event("DELETE", cap, from_node=0)
        cluster.run()
        future = cluster.raise_and_wait("SAVE", cap, from_node=0)
        cluster.run()
        with pytest.raises(UnknownObjectError):
            future.result()

    def test_abort_default_is_harmless(self):
        cluster = _rig()
        cap = cluster.create_object(Cabinet, node=1)
        future = cluster.raise_and_wait("ABORT", cap, from_node=0)
        cluster.run()
        assert future.done
        assert cluster.find_object(cap.oid) is not None

    def test_events_by_oid_integer(self):
        cluster = _rig()
        cap = cluster.create_object(Cabinet, node=1)
        future = cluster.raise_and_wait("SAVE", cap.oid, from_node=0,
                                        user_data="x")
        cluster.run()
        assert future.result() == "saved:x"


class TestMasterHandlerThread:
    def test_master_mode_creates_one_thread_for_many_events(self):
        cluster = _rig(object_event_mode="master")
        cap = cluster.create_object(Cabinet, node=1)
        for i in range(10):
            cluster.raise_event("SAVE", cap, from_node=0, user_data=i)
        cluster.run()
        manager = cluster.kernels[1].objects
        assert manager.events_served == 10
        assert manager.handler_threads_created == 1

    def test_per_event_mode_creates_thread_per_event(self):
        cluster = _rig(object_event_mode="per-event")
        cap = cluster.create_object(Cabinet, node=1)
        for i in range(10):
            cluster.raise_event("SAVE", cap, from_node=0, user_data=i)
        cluster.run()
        manager = cluster.kernels[1].objects
        assert manager.events_served == 10
        assert manager.handler_threads_created == 10

    def test_master_mode_is_cheaper_in_virtual_time(self):
        def run(mode):
            cluster = _rig(object_event_mode=mode,
                           thread_create_cost=1e-3)
            cap = cluster.create_object(Cabinet, node=1)
            for i in range(20):
                cluster.raise_event("SAVE", cap, from_node=0, user_data=i)
            cluster.run()
            return cluster.now

        assert run("master") < run("per-event")

    def test_master_serializes_events_in_order(self):
        cluster = _rig(object_event_mode="master")
        cap = cluster.create_object(Cabinet, node=1)
        for i in range(5):
            cluster.raise_event("SAVE", cap, from_node=0, user_data=i)
        cluster.run()
        assert [payload for _, payload in
                cluster.get_object(cap).log] == list(range(5))

    def test_handlers_on_different_objects_share_master(self):
        cluster = _rig(object_event_mode="master")
        a = cluster.create_object(Cabinet, node=1)
        b = cluster.create_object(Cabinet, node=1)
        cluster.raise_event("SAVE", a, from_node=0, user_data="a")
        cluster.raise_event("SAVE", b, from_node=0, user_data="b")
        cluster.run()
        assert cluster.kernels[1].objects.handler_threads_created == 1
        assert cluster.get_object(a).log == [("save", "a")]
        assert cluster.get_object(b).log == [("save", "b")]


class TestObjectHandlerFailures:
    def test_handler_crash_fails_sync_raiser(self):
        cluster = _rig()

        class Flaky(DistObject):
            @on_event("PING")
            def on_ping(self, ctx, block):
                yield ctx.compute(0)
                raise RuntimeError("handler broke")

        cap = cluster.create_object(Flaky, node=1)
        future = cluster.raise_and_wait("PING", cap, from_node=0)
        cluster.run()
        with pytest.raises(RuntimeError, match="handler broke"):
            future.result()

    def test_handler_crash_does_not_kill_master(self):
        cluster = _rig(object_event_mode="master")

        class Flaky(DistObject):
            def __init__(self):
                super().__init__()
                self.count = 0

            @on_event("PING")
            def on_ping(self, ctx, block):
                yield ctx.compute(0)
                self.count += 1
                if self.count == 1:
                    raise RuntimeError("first one breaks")
                return self.count

        cap = cluster.create_object(Flaky, node=1)
        cluster.raise_event("PING", cap, from_node=0)
        cluster.run()
        future = cluster.raise_and_wait("PING", cap, from_node=0)
        cluster.run()
        assert future.result() == 2

    def test_object_handler_can_invoke_other_objects(self):
        cluster = _rig()

        class Delegator(DistObject):
            @on_event("PING")
            def on_ping(self, ctx, block):
                result = yield ctx.invoke(block.user_data, "poke")
                return f"delegated:{result}"

        helper = cluster.create_object(Recorder, node=2)
        cap = cluster.create_object(Delegator, node=1)
        future = cluster.raise_and_wait("PING", cap, from_node=0,
                                        user_data=helper)
        cluster.run()
        assert future.result() == "delegated:poked"
