"""Tests for explicit group membership syscalls and cluster.ps()."""

import pytest

from repro import DistObject, entry
from repro.errors import GroupError
from tests.conftest import Sleeper, make_cluster


class Grouper(DistObject):
    @entry
    def join_then_hold(self, ctx, gid):
        joined = yield ctx.join_group(gid)
        yield ctx.sleep(100.0)
        return joined

    @entry
    def join_leave(self, ctx, gid):
        yield ctx.join_group(gid)
        old = yield ctx.leave_group()
        return str(old), str(ctx.gid)

    @entry
    def join_missing(self, ctx, gid):
        yield ctx.join_group(gid)


class TestGroupSyscalls:
    def test_join_makes_thread_reachable_by_group_raise(self):
        cluster = make_cluster(n_nodes=3)
        obj = cluster.create_object(Grouper, node=1)
        gid = cluster.new_group()
        thread = cluster.spawn(obj, "join_then_hold", gid, at=0)
        cluster.run(until=0.5)
        assert thread.tid in cluster.groups.members(gid)
        cluster.raise_event("TERMINATE", gid, from_node=2)
        cluster.run()
        assert thread.state == "terminated"

    def test_join_moves_between_groups(self):
        cluster = make_cluster(n_nodes=2)
        obj = cluster.create_object(Grouper, node=0)
        g1, g2 = cluster.new_group(), cluster.new_group()
        thread = cluster.spawn(obj, "join_then_hold", g2, at=0, group=g1)
        cluster.run(until=0.5)
        assert thread.tid in cluster.groups.members(g2)
        assert not cluster.groups.exists(g1)  # emptied, collected

    def test_leave_group(self):
        cluster = make_cluster(n_nodes=2)
        obj = cluster.create_object(Grouper, node=0)
        gid = cluster.new_group()
        thread = cluster.spawn(obj, "join_leave", gid, at=0)
        cluster.run()
        old, current = thread.completion.result()
        assert old == str(gid)
        assert current == "None"

    def test_join_nonexistent_group_fails(self):
        cluster = make_cluster(n_nodes=2)
        obj = cluster.create_object(Grouper, node=0)
        from repro.threads.ids import GroupId

        thread = cluster.spawn(obj, "join_missing", GroupId(0, 999), at=0)
        cluster.run()
        with pytest.raises(GroupError):
            thread.completion.result()


class TestClusterPs:
    def test_ps_lists_user_threads_with_stacks(self):
        cluster = make_cluster(n_nodes=3)
        sleeper = cluster.create_object(Sleeper, node=2)
        gid = cluster.new_group()
        thread = cluster.spawn(sleeper, "hold", 100.0, at=0, group=gid)
        cluster.run(until=0.5)
        rows = cluster.ps()
        assert len(rows) == 1
        (row,) = rows
        assert row["tid"] == str(thread.tid)
        assert row["state"] == "blocked"
        assert row["node"] == 2
        assert row["group"] == str(gid)
        assert row["stack"] == ["Sleeper.hold@2"]

    def test_ps_filters_by_kind(self):
        cluster = make_cluster(n_nodes=2)
        cluster.register_event("PING")
        from tests.conftest import Recorder

        recorder = cluster.create_object(Recorder, node=1)
        cluster.raise_event("PING", recorder, from_node=0)
        cluster.run()
        # a kernel master handler thread exists, but user-only ps is empty
        assert cluster.ps() == []
        all_rows = cluster.ps(kinds=("user", "kernel", "surrogate"))
        assert any(row["kind"] == "kernel" for row in all_rows)

    def test_ps_empty_cluster(self):
        cluster = make_cluster(n_nodes=1)
        assert cluster.ps(kinds=()) == []
