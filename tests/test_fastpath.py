"""Transport fast-path tests: cumulative/coalesced/piggybacked acks,
per-peer retransmit timers, journal group-commit, scheduler heap
compaction — and the invariants that must hold with the fast path on
*and* off (identical delivery semantics, only envelope counts change)."""

import gc
import weakref
from dataclasses import replace

from repro.bench.chaos import ChaosSpec, run_chaos
from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan
from repro.net.latency import FixedLatency
from repro.net.message import Message
from repro.net.reliable import MSG_REL_ACK, ReliableChannel
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import Simulator
from repro.store.journal import (
    NodeJournal,
    REC_ACK,
    REC_CHECKPOINT,
    REC_POST,
)

FAST_OFF = {"ack_delay": 0.0, "ack_piggyback": False}


def make_pair(plan=None, drop_acks_at=(), **channel_kw):
    """Two reliable endpoints over a fabric; ``drop_acks_at`` holds
    per-node counts of leading ``rel.ack`` envelopes to swallow (lost
    acks, deterministically)."""
    sim = Simulator()
    fabric = Fabric(sim, FixedLatency(1e-3), faults=plan or FaultPlan())
    channels = {}
    delivered = []
    acked_data = []  # data envelopes that carried a piggybacked ack
    to_drop = dict(drop_acks_at)

    def endpoint(node):
        def deliver(msg):
            ch = channels[node]
            if msg.mtype == MSG_REL_ACK and to_drop.get(node, 0) > 0:
                to_drop[node] -= 1
                return
            if msg.ack is not None:
                acked_data.append((node, msg.payload, msg.ack))
                ch.on_cum_ack(msg.src, msg.ack)
            if msg.mtype == MSG_REL_ACK:
                ch.on_ack(msg)
                return
            if msg.rel is not None and not ch.accept(msg):
                return
            delivered.append((node, msg.payload))
        return deliver

    for node in (0, 1):
        channels[node] = ReliableChannel(sim, fabric, node, **channel_kw)
        fabric.attach(node, endpoint(node))
    return sim, fabric, channels, delivered, acked_data


class TestCumulativeAcks:
    def test_burst_shares_one_cumulative_ack(self):
        sim, fabric, channels, delivered, _ = make_pair()
        for i in range(4):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        sim.run()
        assert [p for _, p in delivered] == [0, 1, 2, 3]
        # one delayed ack retired the whole burst
        assert channels[1].stats()["acks_sent"] == 1
        assert channels[1].stats()["acks_coalesced"] == 3
        assert channels[0].stats()["pending"] == 0
        assert channels[0].stats()["retransmits"] == 0

    def test_ack_delay_zero_acks_every_arrival(self):
        sim, fabric, channels, delivered, _ = make_pair(**FAST_OFF)
        for i in range(4):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        sim.run()
        assert [p for _, p in delivered] == [0, 1, 2, 3]
        assert channels[1].stats()["acks_sent"] == 4
        assert channels[0].stats()["pending"] == 0

    def test_correct_under_drop_dup_reorder(self):
        # Drops force retransmission (re-ordering arrival), duplicates
        # hammer the dedup window; the cumulative protocol must still
        # deliver everything exactly once and drain all pending state.
        plan = FaultPlan(RngRegistry(5), drop_rate=0.25, duplicate_rate=0.2)
        sim, fabric, channels, delivered, _ = make_pair(plan)
        for i in range(40):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        sim.run()
        assert sorted(p for _, p in delivered) == list(range(40))
        assert channels[0].stats()["pending"] == 0
        assert channels[1].duplicates_suppressed > 0

    def test_lost_ack_healed_by_later_cumulative_ack(self):
        # The ack for message 1 is lost; message 2's cumulative ack
        # (cum=2) covers both, with no retransmission needed.
        sim, fabric, channels, delivered, _ = make_pair(
            drop_acks_at={0: 1}, rto_base=0.05)
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="m1"))
        sim.run(until=2.2e-3)  # m1 acked; that ack will be swallowed
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="m2"))
        sim.run()
        assert [p for _, p in delivered] == ["m1", "m2"]
        stats = channels[0].stats()
        assert stats["pending"] == 0
        assert stats["retransmits"] == 0, \
            "the later cumulative ack should have healed the lost one"

    def test_duplicate_arrival_flushes_ack_immediately(self):
        sim, fabric, channels, delivered, _ = make_pair(
            drop_acks_at={0: 1}, ack_delay=1e-3)
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="m"))
        sim.run()
        # first ack swallowed -> RTO -> duplicate - > immediate re-ack
        assert delivered == [(1, "m")]
        assert channels[0].stats()["retransmits"] == 1
        assert channels[0].stats()["pending"] == 0
        assert channels[1].duplicates_suppressed == 1


class TestPiggyback:
    def test_reverse_data_carries_ack(self):
        sim, fabric, channels, delivered, acked_data = make_pair(
            ack_delay=3e-3, rto_base=0.05)
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="fwd"))
        # reverse send inside node 1's ack window (arrival at 1e-3,
        # dedicated ack not due until 4e-3)
        sim.call_at(2e-3, channels[1].send,
                    Message(src=1, dst=0, mtype="x", payload="rev"))
        sim.run()
        assert sorted(p for _, p in delivered) == ["fwd", "rev"]
        assert channels[1].stats()["acks_piggybacked"] == 1
        # the dedicated envelope was cancelled; only node 0 acks "rev"
        assert channels[1].stats()["acks_sent"] == 0
        assert [(node, payload) for node, payload, _ in acked_data] == \
            [(0, "rev")]
        assert channels[0].stats()["pending"] == 0

    def test_piggybacked_ack_on_retransmitted_data_message(self):
        # Node 1's data message is acked, but the ack is lost, so node 1
        # retransmits it — and by then node 1 owes node 0 an ack for
        # forward traffic, which rides the retransmitted envelope.
        sim, fabric, channels, delivered, acked_data = make_pair(
            drop_acks_at={1: 1}, rto_base=6e-3, ack_delay=3e-3)
        # keep node 0's own sends plain so the only piggyback
        # opportunity is node 1's retransmission
        channels[0].ack_piggyback = False
        channels[1].send(Message(src=1, dst=0, mtype="x", payload="rev"))
        sim.call_at(3e-3, channels[0].send,
                    Message(src=0, dst=1, mtype="x", payload="fwd"))
        sim.run()
        assert sorted(p for _, p in delivered) == ["fwd", "rev"]
        assert channels[1].stats()["retransmits"] == 1
        assert channels[1].stats()["acks_piggybacked"] == 1
        # node 0 saw the retransmitted "rev" envelope carrying cum=1
        assert (0, "rev", 1) in acked_data
        assert channels[0].stats()["pending"] == 0
        assert channels[1].stats()["pending"] == 0

    def test_piggyback_disabled_uses_dedicated_envelopes(self):
        sim, fabric, channels, delivered, acked_data = make_pair(
            ack_delay=3e-3, ack_piggyback=False, rto_base=0.05)
        channels[0].send(Message(src=0, dst=1, mtype="x", payload="fwd"))
        sim.call_at(2e-3, channels[1].send,
                    Message(src=1, dst=0, mtype="x", payload="rev"))
        sim.run()
        assert sorted(p for _, p in delivered) == ["fwd", "rev"]
        assert channels[1].stats()["acks_piggybacked"] == 0
        assert channels[1].stats()["acks_sent"] == 1
        assert acked_data == []
        assert channels[0].stats()["pending"] == 0


class TestAckValidation:
    def test_malformed_acks_counted_and_dropped(self):
        sim, fabric, channels, delivered, _ = make_pair()
        ch = channels[0]
        for payload in (None, "junk", {}, {"cum": -1}, {"cum": True},
                        {"cum": 1.5}, {"cum": 1, "sel": "oops"},
                        {"cum": 1, "sel": [1, -2]},
                        {"cum": 1, "sel": [1, True]}):
            ch.on_ack(Message(src=1, dst=0, mtype=MSG_REL_ACK,
                              payload=payload))
        assert ch.bad_acks == 9
        ch.on_cum_ack(1, -3)
        assert ch.bad_acks == 10

    def test_duplicate_and_stale_acks_counted(self):
        sim, fabric, channels, delivered, _ = make_pair()
        ch = channels[0]
        ch.send(Message(src=0, dst=1, mtype="x", payload="m"))
        sim.run()
        assert ch.stats()["pending"] == 0
        before = ch.stale_acks
        # replayed ack: well-formed, acknowledges nothing new
        ch.on_ack(Message(src=1, dst=0, mtype=MSG_REL_ACK,
                          payload={"cum": 1}))
        ch.on_cum_ack(1, 1)
        # ack from a peer never sent to
        ch.on_ack(Message(src=7, dst=0, mtype=MSG_REL_ACK,
                          payload={"cum": 3}))
        assert ch.stale_acks == before + 3
        assert ch.bad_acks == 0

    def test_selective_ack_retires_out_of_order_pending(self):
        # A crash-wiped receiver floor can never cover high seqs
        # cumulatively; the selective summary must retire them anyway.
        sim, fabric, channels, delivered, _ = make_pair()
        ch = channels[0]
        plan_free_msg = Message(src=0, dst=1, mtype="x", payload="a")
        ch.send(plan_free_msg)
        ch.send(Message(src=0, dst=1, mtype="x", payload="b"))
        assert ch.stats()["pending"] == 2
        ch.on_ack(Message(src=1, dst=0, mtype=MSG_REL_ACK,
                          payload={"cum": 0, "sel": (1, 2)}))
        assert ch.stats()["pending"] == 0


class TestPerPeerTimers:
    def test_one_timer_per_peer_not_per_message(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        sim, fabric, channels, delivered, _ = make_pair(plan)
        for i in range(10):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i))
        # partitioned sends schedule nothing but the retransmit driver:
        # exactly one live timer for ten pending messages
        assert channels[0].stats()["pending"] == 10
        assert sim.pending == 1

    def test_give_up_falls_through_to_next_oldest(self):
        plan = FaultPlan()
        plan.partition({0}, {1})
        sim, fabric, channels, delivered, _ = make_pair(
            plan, max_retransmits=2)
        lost = []
        for i in range(3):
            channels[0].send(Message(src=0, dst=1, mtype="x", payload=i),
                             on_give_up=lost.append)
        sim.run()
        assert [m.payload for m in lost] == [0, 1, 2]
        assert channels[0].stats()["gave_up"] == 3
        assert channels[0].stats()["pending"] == 0


class TestSchedulerFastPath:
    def test_cancel_releases_closure_and_args(self):
        class Payload:
            pass

        sim = Simulator()
        payload = Payload()
        ref = weakref.ref(payload)
        handle = sim.call_after(100.0, lambda p: None, payload)
        handle.cancel()
        handle.cancel()  # idempotent
        del payload
        gc.collect()
        # the cancelled entry is still queued, but pins nothing
        assert ref() is None
        assert handle.cancelled

    def test_compaction_purges_dead_entries(self):
        sim = Simulator()
        handles = [sim.call_after(1000.0 + i, lambda: None)
                   for i in range(200)]
        for handle in handles[:150]:
            handle.cancel()
        assert sim.compactions >= 1
        assert sim.pending == 50
        # the physical heap shrank too — dead entries were purged, not
        # merely counted
        assert len(sim._queue) <= 100
        fired = []
        sim.call_after(1.0, fired.append, "live")
        sim.run(until=2.0)
        assert fired == ["live"]

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        handles = [sim.call_after(10.0, lambda: None) for _ in range(5)]
        handles[0].cancel()
        handles[3].cancel()
        assert sim.pending == 3


class TestJournalGroupCommit:
    def test_append_batch_is_one_commit(self):
        journal = NodeJournal(0)
        records = journal.append_batch(
            [(REC_POST, {"entry_id": (0, i)}) for i in range(1, 4)])
        assert [r.lsn for r in records] == [1, 2, 3]
        assert journal.appends == 3
        assert journal.commits == 1
        journal.append(REC_ACK, entry_id=(0, 1))
        assert journal.appends == 4
        assert journal.commits == 2
        assert journal.append_batch([]) == []
        assert journal.commits == 2
        assert journal.stats()["commits"] == 2

    def test_indexed_latest_checkpoint_and_o1_truncate(self):
        journal = NodeJournal(0)
        for i in range(5):
            journal.append(REC_POST, entry_id=(0, i))
        assert journal.latest_checkpoint() is None
        ckpt = journal.append(REC_CHECKPOINT, state={"n": 5})
        assert journal.latest_checkpoint() is ckpt
        dropped = journal.truncate_before(ckpt.lsn)
        assert dropped == 5
        assert journal.records_truncated == 5
        assert [r.lsn for r in journal] == [ckpt.lsn]
        assert journal.latest_checkpoint() is ckpt
        assert journal.tail() == []
        later = journal.append(REC_POST, entry_id=(0, 9))
        assert journal.tail() == [later]
        newer = journal.append(REC_CHECKPOINT, state={"n": 6})
        assert journal.latest_checkpoint() is newer


class TestChaosWithFastPath:
    """The PR's contract: the fast path changes envelope and commit
    counts, never delivery semantics — the chaos invariants must hold
    identically with it on and off."""

    BASE = ChaosSpec(seed=13, posts=60, drop_rate=0.1, duplicate_rate=0.05,
                     crash_period=0.6, down_time=0.4, settle=10.0)

    def test_chaos_invariants_fastpath_on(self):
        report = run_chaos(self.BASE)
        assert report.violations == []
        assert report.accounted_rate == 1.0

    def test_chaos_invariants_fastpath_off(self):
        spec = replace(self.BASE, ack_delay=0.0, ack_piggyback=False,
                       journal_group_commit=False)
        report = run_chaos(spec)
        assert report.violations == []
        assert report.accounted_rate == 1.0

    def test_durable_chaos_invariants_both_ways(self):
        base = replace(self.BASE, durable=True, posts=40,
                       checkpoint_interval=16)
        for off in (False, True):
            spec = base if not off else replace(
                base, ack_delay=0.0, ack_piggyback=False,
                journal_group_commit=False)
            report = run_chaos(spec)
            assert report.violations == [], (off, report.violations[:3])
            assert report.durability["pending"] == 0

    def test_same_seed_determinism_with_fast_path(self):
        spec = replace(self.BASE, posts=40)
        assert run_chaos(spec).digest == run_chaos(spec).digest
