"""Tests for thread-based handler mechanics: the three execution contexts
(§4.1), LIFO chaining and propagation (§4.2), decisions, detachment."""

from repro import Decision, DistObject, HandlerContext, entry, handler_entry
from repro.events.handlers import HandlerRegistration
from tests.conftest import make_cluster


class Logger:
    """Shared log keyed into per-test closures."""

    def __init__(self):
        self.entries = []

    def add(self, *item):
        self.entries.append(item)


class HandlerHost(DistObject):
    """An object whose methods serve as attaching-context handlers."""

    def __init__(self, log):
        super().__init__()
        self.log = log

    @entry
    def arm_and_hold(self, ctx, fn_name, hold=100.0):
        yield ctx.attach_handler("EVT", fn_name)
        yield ctx.sleep(hold)
        return "done"

    @handler_entry
    def resume_handler(self, ctx, block):
        self.log.add("resume_handler", ctx.node, block.event)
        yield ctx.compute(1e-5)
        return Decision.RESUME

    @handler_entry
    def terminate_handler(self, ctx, block):
        self.log.add("terminate_handler", ctx.node)
        yield ctx.compute(1e-5)
        return Decision.TERMINATE

    @handler_entry
    def propagate_handler(self, ctx, block):
        self.log.add("propagate_handler", ctx.node)
        yield ctx.compute(1e-5)
        return Decision.PROPAGATE

    @handler_entry
    def crashing_handler(self, ctx, block):
        yield ctx.compute(0)
        raise RuntimeError("handler crash")


class Mover(DistObject):
    """Attaches a handler here, then migrates elsewhere and holds."""

    @entry
    def attach_then_go(self, ctx, fn_host, fn_name, far_cap):
        yield ctx.attach_handler("EVT", fn_name)
        result = yield ctx.invoke(far_cap, "hold_there")
        return result

    @entry
    def hold_there(self, ctx):
        yield ctx.sleep(100.0)
        return "held"


def _rig(n_nodes=4, **cfg):
    cluster = make_cluster(n_nodes=n_nodes, **cfg)
    cluster.register_event("EVT")
    return cluster


class TestAttachingContext:
    def test_handler_runs_in_attaching_object(self):
        cluster = _rig()
        log = Logger()
        host = cluster.create_object(HandlerHost, log, node=2)
        thread = cluster.spawn(host, "arm_and_hold", "resume_handler", at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=0.2)
        assert log.entries == [("resume_handler", 2, "EVT")]
        assert thread.state == "blocked"  # resumed back to its sleep

    def test_handler_remains_active_after_migration(self):
        """The §4.1 guarantee: once attached, the handler serves the
        thread 'regardless of when and where the thread is located'."""
        cluster = _rig()
        log = Logger()
        cluster.create_object(HandlerHost, log, node=1)
        far = cluster.create_object(Mover, node=3)

        class Starter(DistObject):
            @entry
            def go(self, ctx, host_cap, far_cap):
                yield ctx.invoke(host_cap, "arm_in_place")
                result = yield ctx.invoke(far_cap, "hold_there")
                return result

        class ArmingHost(HandlerHost):
            @entry
            def arm_in_place(self, ctx):
                yield ctx.attach_handler("EVT", "resume_handler")

        host2 = cluster.create_object(ArmingHost, log, node=1)
        starter = cluster.create_object(Starter, node=0)
        thread = cluster.spawn(starter, "go", host2, far, at=0)
        cluster.run(until=0.1)
        assert thread.current_node == 3
        cluster.raise_event("EVT", thread.tid, from_node=0)
        cluster.run(until=0.3)
        # handler executed back in the attaching object's node (1), an
        # unscheduled invocation away from the thread's location (3)
        assert log.entries == [("resume_handler", 1, "EVT")]

    def test_terminate_decision_kills_thread(self):
        cluster = _rig()
        log = Logger()
        host = cluster.create_object(HandlerHost, log, node=1)
        thread = cluster.spawn(host, "arm_and_hold", "terminate_handler",
                               at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=2)
        cluster.run()
        assert thread.state == "terminated"

    def test_crashing_handler_propagates_to_default(self):
        cluster = _rig()
        log = Logger()
        host = cluster.create_object(HandlerHost, log, node=1)
        thread = cluster.spawn(host, "arm_and_hold", "crashing_handler",
                               at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=2)
        cluster.run(until=0.3)
        # default for an unhandled user event: RESUME; thread survives
        assert thread.state == "blocked"


class TestBuddyContext:
    def test_buddy_handler_runs_in_third_object(self):
        cluster = _rig()
        log = Logger()
        buddy = cluster.create_object(HandlerHost, log, node=3)

        class App(DistObject):
            @entry
            def go(self, ctx, buddy_cap):
                yield ctx.attach_handler("EVT", "resume_handler",
                                         buddy=buddy_cap)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=1)
        thread = cluster.spawn(app, "go", buddy, at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=0)
        cluster.run(until=0.3)
        assert log.entries == [("resume_handler", 3, "EVT")]


class TestCurrentContext:
    def test_per_thread_procedure_runs_at_current_node(self):
        cluster = _rig()
        seen = []

        class App(DistObject):
            @entry
            def go(self, ctx, far_cap):
                def probe(hctx, block):
                    seen.append((hctx.node, hctx.current_object.oid
                                 if hctx.current_object else None))
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", probe)
                result = yield ctx.invoke(far_cap, "hold_there")
                return result

        far = cluster.create_object(Mover, node=3)
        app = cluster.create_object(App, node=1)
        thread = cluster.spawn(app, "go", far, at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=0)
        cluster.run(until=0.3)
        # procedure traveled with the thread: executed at node 3, with
        # access to the current object there (the Mover instance)
        assert seen == [(3, far.oid)]

    def test_procedure_can_examine_and_modify_thread_state(self):
        cluster = _rig()

        class App(DistObject):
            @entry
            def go(self, ctx):
                ctx.attributes.per_thread_memory["counter"] = 0

                def bump(hctx, block):
                    hctx.attributes.per_thread_memory["counter"] += 1
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", bump)
                yield ctx.sleep(0.3)
                return ctx.attributes.per_thread_memory["counter"]

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        for _ in range(3):
            cluster.raise_event("EVT", thread.tid, from_node=1)
            cluster.run(until=cluster.now + 0.05)
        cluster.run()
        assert thread.completion.result() == 3

    def test_missing_procedure_falls_through_chain(self):
        cluster = _rig()

        class App(DistObject):
            @entry
            def go(self, ctx):
                reg = HandlerRegistration(event="EVT",
                                          context=HandlerContext.CURRENT,
                                          procedure="never-installed")
                ctx.attributes.attach(reg)
                yield ctx.sleep(0.2)
                return "survived"

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run()
        assert thread.completion.result() == "survived"


class TestChaining:
    def test_lifo_execution_order(self):
        cluster = _rig()
        order = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def make(tag, decision):
                    def handler(hctx, block):
                        order.append(tag)
                        yield hctx.compute(0)
                        return decision
                    handler.__name__ = tag
                    return handler

                yield ctx.attach_handler("EVT", make("first", Decision.RESUME))
                yield ctx.attach_handler("EVT", make("second", Decision.PROPAGATE))
                yield ctx.attach_handler("EVT", make("third", Decision.PROPAGATE))
                yield ctx.sleep(0.3)
                return order

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run()
        assert thread.completion.result() == ["third", "second", "first"]

    def test_resume_stops_propagation(self):
        cluster = _rig()
        order = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def deep(hctx, block):
                    order.append("deep")
                    yield hctx.compute(0)

                def shallow(hctx, block):
                    order.append("shallow")
                    yield hctx.compute(0)
                    return Decision.RESUME

                yield ctx.attach_handler("EVT", deep)
                yield ctx.attach_handler("EVT", shallow)
                yield ctx.sleep(0.3)
                return order

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run()
        assert thread.completion.result() == ["shallow"]

    def test_event_transformation_up_the_chain(self):
        """§4.2: O3 notifies O2's handler, which transforms and notifies
        O1's handler — modelled by a handler raising a derived event."""
        cluster = _rig()
        cluster.register_event("LOW_LEVEL")
        cluster.register_event("HIGH_LEVEL")
        seen = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def outer(hctx, block):
                    seen.append(("outer", block.event, block.user_data))
                    yield hctx.compute(0)

                def inner(hctx, block):
                    seen.append(("inner", block.event))
                    # transform: re-raise in a form the outer level knows
                    yield hctx.raise_event("HIGH_LEVEL", hctx.tid,
                                           user_data="translated")
                    return Decision.RESUME

                yield ctx.attach_handler("HIGH_LEVEL", outer)
                yield ctx.attach_handler("LOW_LEVEL", inner)
                yield ctx.sleep(0.5)
                return seen

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        cluster.raise_event("LOW_LEVEL", thread.tid, from_node=1)
        cluster.run()
        assert ("inner", "LOW_LEVEL") in seen
        assert ("outer", "HIGH_LEVEL", "translated") in seen

    def test_detach_top_restores_previous_handler(self):
        cluster = _rig()
        order = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def old(hctx, block):
                    order.append("old")
                    yield hctx.compute(0)

                def new(hctx, block):
                    order.append("new")
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", old)
                reg_id = yield ctx.attach_handler("EVT", new)
                yield ctx.detach_handler("EVT", reg_id)
                yield ctx.sleep(0.3)
                return order

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run()
        assert thread.completion.result() == ["old"]

    def test_spawned_thread_inherits_chain(self):
        """§6.3: spawned threads inherit the event registry and handlers."""
        cluster = _rig()
        hits = []

        class App(DistObject):
            @entry
            def parent(self, ctx, cap):
                def h(hctx, block):
                    hits.append(str(hctx.tid))
                    yield hctx.compute(0)

                yield ctx.attach_handler("EVT", h)
                handle = yield ctx.invoke_async(cap, "child")
                yield ctx.sleep(0.5)
                return handle.tid

            @entry
            def child(self, ctx):
                yield ctx.sleep(0.5)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "parent", app, at=0)
        cluster.run(until=0.05)
        child_tid = [t for t in cluster.live_threads
                     if t != thread.tid and
                     cluster.live_threads[t].kind == "user"]
        assert len(child_tid) == 1
        cluster.raise_event("EVT", child_tid[0], from_node=1)
        cluster.run()
        assert hits == [str(child_tid[0])]


class TestSyncResumeFromHandler:
    def test_explicit_resume_raiser_before_long_work(self):
        cluster = _rig()

        class App(DistObject):
            @entry
            def victim(self, ctx):
                def h(hctx, block):
                    yield hctx.resume_raiser(block, "early-value")
                    yield hctx.sleep(5.0)  # long tail work

                yield ctx.attach_handler("EVT", h)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=1)
        victim = cluster.spawn(app, "victim", at=1)
        cluster.run(until=0.05)
        start = cluster.now
        future = cluster.raise_and_wait("EVT", victim.tid, from_node=0)
        cluster.run()
        assert future.result() == "early-value"
        # the raiser was resumed long before the handler's 5s tail
        assert cluster.now >= start + 5.0  # tail ran to completion
