"""Shared fixtures and sample distributed objects for the test suite."""

from __future__ import annotations

import pytest

from repro import Cluster, ClusterConfig, Decision, DistObject, entry, handler_entry, on_event


@pytest.fixture()
def cluster():
    """A small default cluster (4 nodes, path locator, RPC transport)."""
    return Cluster(ClusterConfig(n_nodes=4))


def make_cluster(**overrides) -> Cluster:
    return Cluster(ClusterConfig(**overrides))


class Echo(DistObject):
    """Minimal entry-point object."""

    @entry
    def echo(self, ctx, value):
        yield ctx.compute(1e-5)
        return value

    @entry
    def where(self, ctx):
        yield ctx.compute(0)
        return ctx.node

    @entry
    def fail(self, ctx, exc):
        yield ctx.compute(0)
        raise exc


class Relay(DistObject):
    """Invokes another object, for building cross-node call chains."""

    @entry
    def call(self, ctx, cap, entry_name, *args):
        result = yield ctx.invoke(cap, entry_name, *args)
        return result

    @entry
    def chain(self, ctx, caps, leaf_cap, leaf_entry, *args):
        """Hop through ``caps`` (more Relays), then invoke the leaf."""
        if caps:
            result = yield ctx.invoke(caps[0], "chain", caps[1:],
                                      leaf_cap, leaf_entry, *args)
            return result
        result = yield ctx.invoke(leaf_cap, leaf_entry, *args)
        return result


class Sleeper(DistObject):
    """Blocks for a while — a convenient suspension target for events."""

    @entry
    def hold(self, ctx, seconds=10.0):
        yield ctx.sleep(seconds)
        return "woke"

    @entry
    def hold_forever(self, ctx):
        while True:
            yield ctx.sleep(1.0)

    @entry
    def hop_and_hold(self, ctx, caps, seconds=10.0):
        """Migrate through caps, then hold at the last one."""
        if caps:
            result = yield ctx.invoke(caps[0], "hop_and_hold", caps[1:],
                                      seconds)
            return result
        yield ctx.sleep(seconds)
        return "woke-deep"


class Recorder(DistObject):
    """Object-based handlers that record what they see."""

    def __init__(self):
        super().__init__()
        self.events = []
        self.aborted_tids = []

    @entry
    def poke(self, ctx):
        yield ctx.compute(0)
        return "poked"

    @on_event("PING")
    def on_ping(self, ctx, block):
        yield ctx.compute(1e-5)
        self.events.append(("PING", block.user_data, ctx.now))
        return "pong"

    @on_event("ABORT")
    def on_abort(self, ctx, block):
        yield ctx.compute(0)
        data = block.user_data or {}
        self.aborted_tids.append(data.get("tid"))

    @handler_entry
    def thread_ping(self, ctx, block):
        yield ctx.compute(1e-5)
        self.events.append(("thread-PING", ctx.tid, ctx.now))
        return Decision.RESUME


def run_to_result(cluster, thread, until=None):
    """Run the cluster and return the thread's result."""
    cluster.run(until=until)
    return thread.completion.result()
