"""Property-based tests for the simulation substrate."""

from hypothesis import given, strategies as st

from repro.sim import Channel, RngRegistry, Semaphore, Simulator

delays = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                   allow_infinity=False)


class TestSchedulerProperties:
    @given(st.lists(delays, min_size=1, max_size=50))
    def test_callbacks_fire_in_nondecreasing_time_order(self, offsets):
        sim = Simulator()
        fired = []
        for offset in offsets:
            sim.call_after(offset, lambda o=offset: fired.append(sim.now))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(offsets)

    @given(st.lists(delays, min_size=1, max_size=50))
    def test_same_time_preserves_submission_order(self, offsets):
        sim = Simulator()
        fired = []
        for index, offset in enumerate(offsets):
            sim.call_after(offset, fired.append, (offset, index))
        sim.run()
        # stable sort by time: indices at equal times stay ascending
        assert fired == sorted(fired, key=lambda pair: (pair[0], pair[1]))

    @given(st.lists(delays, min_size=2, max_size=40),
           st.data())
    def test_cancellation_only_removes_cancelled(self, offsets, data):
        sim = Simulator()
        fired = []
        handles = [sim.call_after(offset, fired.append, i)
                   for i, offset in enumerate(offsets)]
        to_cancel = data.draw(st.sets(
            st.integers(min_value=0, max_value=len(offsets) - 1),
            max_size=len(offsets)))
        for index in to_cancel:
            handles[index].cancel()
        sim.run()
        assert set(fired) == set(range(len(offsets))) - to_cancel

    @given(st.lists(delays, min_size=1, max_size=30))
    def test_clock_never_goes_backwards(self, offsets):
        sim = Simulator()
        observed = []
        for offset in offsets:
            sim.call_after(offset, lambda: observed.append(sim.now))
        sim.run()
        for earlier, later in zip(observed, observed[1:]):
            assert later >= earlier


class TestRngProperties:
    @given(st.integers(min_value=0, max_value=2**32),
           st.text(min_size=1, max_size=20))
    def test_stream_reproducible(self, seed, name):
        a = RngRegistry(seed).stream(name).random()
        b = RngRegistry(seed).stream(name).random()
        assert a == b

    @given(st.integers(min_value=0, max_value=2**32),
           st.lists(st.text(min_size=1, max_size=10), min_size=2,
                    max_size=6, unique=True))
    def test_stream_independent_of_sibling_creation(self, seed, names):
        # drawing from other streams first never changes a stream's draws
        solo = RngRegistry(seed).stream(names[-1]).random()
        registry = RngRegistry(seed)
        for name in names[:-1]:
            registry.stream(name).random()
        assert registry.stream(names[-1]).random() == solo


class TestPrimitiveProperties:
    @given(st.lists(st.integers(), max_size=30))
    def test_channel_is_fifo(self, items):
        sim = Simulator()
        chan = Channel(sim)
        for item in items:
            chan.put(item)
        out = [chan.get().result() for _ in items]
        assert out == items

    @given(st.integers(min_value=0, max_value=10),
           st.integers(min_value=0, max_value=30))
    def test_semaphore_never_overgrants(self, capacity, requests):
        sim = Simulator()
        sem = Semaphore(sim, value=capacity)
        grants = sum(1 for _ in range(requests) if sem.acquire().done)
        assert grants == min(capacity, requests)
