"""Timing-wheel scheduler backend: unit tests and heap differentials.

The wheel (:class:`repro.sim.WheelSimulator`) must be observationally
identical to the heap reference for everything the kernel can see —
execution order, clock advance, cancellation semantics — with the only
allowed divergences documented (``Handle.cancelled`` may read True after
an entry has *fired* on the wheel, because fired entries are recycled
through the slab pool). The differential tests run full chaos and
fastpath scenarios on both backends and require bit-identical results.
"""

import random

import pytest

from repro.bench.chaos import ChaosSpec, run_chaos
from repro.bench.fastpath import FastpathSpec, deterministic_view, run_burst
from repro.errors import KernelError, SimulationError
from repro.kernel.config import ClusterConfig
from repro.sim import Simulator, WheelSimulator, make_simulator


# ---------------------------------------------------------------- unit

def test_wheel_same_instant_fifo_order():
    sim = WheelSimulator()
    fired = []
    for i in range(10):
        sim.call_after(1.0, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_wheel_time_order_across_buckets():
    sim = WheelSimulator(tick=1e-3)
    fired = []
    # same bucket, adjacent buckets, and sub-tick distinct instants
    for when in (0.0051, 0.005, 0.0049, 0.002, 0.0021, 1.0):
        sim.call_at(when, fired.append, when)
    sim.run()
    assert fired == sorted(fired)
    assert sim.now == 1.0


def test_wheel_cancel_prevents_execution():
    sim = WheelSimulator()
    fired = []
    handle = sim.call_after(1.0, fired.append, "x")
    handle.cancel()
    assert handle.cancelled
    sim.run()
    assert fired == []


def test_wheel_cancel_is_idempotent():
    sim = WheelSimulator()
    handle = sim.call_after(1.0, lambda: None)
    handle.cancel()
    handle.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_wheel_stale_cancel_after_pool_reuse_is_noop():
    # Fire an entry (recycling its slab list), schedule a new entry that
    # reuses the list, then cancel the *old* handle: the seq guard must
    # protect the new entry.
    sim = WheelSimulator()
    fired = []
    stale = sim.call_after(0.001, lambda: None)
    sim.run()
    fresh = sim.call_after(0.001, fired.append, "keep")
    stale.cancel()  # must not kill `fresh`, even if its list was reused
    sim.run()
    assert fired == ["keep"]
    assert not fresh.cancelled or fired  # fresh executed regardless


def test_wheel_far_future_overflow_spills_and_migrates():
    tick, slots = 1e-3, 16
    sim = WheelSimulator(tick=tick, slots=slots)
    horizon = slots * tick
    fired = []
    sim.call_after(horizon * 10, fired.append, "far")
    stats = sim.stats()
    assert stats["wheel_spills"] == 1
    assert stats["overflow_pending"] == 1
    sim.run()
    assert fired == ["far"]
    stats = sim.stats()
    assert stats["wheel_migrations"] >= 1
    assert stats["overflow_pending"] == 0


def test_wheel_overflow_preserves_order_with_near_entries():
    sim = WheelSimulator(tick=1e-3, slots=8)
    fired = []
    sim.call_after(5.0, fired.append, "far")    # overflow
    sim.call_after(0.001, fired.append, "near")  # in-wheel
    sim.call_after(5.0, fired.append, "far2")   # same instant as far
    sim.run()
    assert fired == ["near", "far", "far2"]


def test_wheel_pending_excludes_cancelled():
    sim = WheelSimulator(tick=1e-3, slots=8)
    h1 = sim.call_after(0.001, lambda: None)
    sim.call_after(1.0, lambda: None)   # overflow entry
    assert sim.pending == 2
    h1.cancel()
    assert sim.pending == 1
    sim.run()
    assert sim.pending == 0


def test_wheel_run_until_advances_clock_exactly():
    sim = WheelSimulator()
    fired = []
    sim.call_after(1.0, fired.append, "a")
    sim.call_after(5.0, fired.append, "b")
    sim.run(until=3.0)
    assert fired == ["a"]
    assert sim.now == 3.0
    sim.run()
    assert fired == ["a", "b"]
    assert sim.now == 5.0


def test_wheel_rejects_past_and_negative():
    sim = WheelSimulator(start=10.0)
    with pytest.raises(SimulationError):
        sim.call_at(9.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.call_after(-1.0, lambda: None)


def test_wheel_nested_scheduling_from_callback():
    sim = WheelSimulator()
    fired = []

    def outer():
        fired.append(("outer", sim.now))
        sim.call_after(1.5, lambda: fired.append(("inner", sim.now)))

    sim.call_after(1.0, outer)
    sim.run()
    assert fired == [("outer", 1.0), ("inner", 2.5)]


def test_wheel_stats_schema():
    sim = WheelSimulator()
    sim.call_after(1.0, lambda: None)
    stats = sim.stats()
    for key in ("backend", "pending", "scheduled", "executed",
                "cancellations", "compactions", "wheel_spills",
                "wheel_migrations", "overflow_pending", "wheel_buckets"):
        assert key in stats
    assert stats["backend"] == "wheel"
    assert stats["pending"] == 1
    assert stats["scheduled"] == 1


def test_heap_stats_schema():
    sim = Simulator()
    sim.call_after(1.0, lambda: None).cancel()
    stats = sim.stats()
    assert stats["backend"] == "heap"
    assert stats["scheduled"] == 1
    assert stats["cancellations"] == 1
    assert stats["wheel_spills"] == 0


def test_make_simulator_factory():
    assert type(make_simulator("heap")) is Simulator
    assert isinstance(make_simulator("wheel"), WheelSimulator)
    assert make_simulator("wheel", start=3.0).now == 3.0
    with pytest.raises(SimulationError):
        make_simulator("calendar")


def test_wheel_parameter_validation():
    with pytest.raises(SimulationError):
        WheelSimulator(tick=0.0)
    with pytest.raises(SimulationError):
        WheelSimulator(slots=1)


def test_config_validates_scheduler_knobs():
    with pytest.raises(KernelError):
        ClusterConfig(scheduler="calendar")
    with pytest.raises(KernelError):
        ClusterConfig(wheel_tick=0.0)
    with pytest.raises(KernelError):
        ClusterConfig(wheel_slots=1)
    assert ClusterConfig().scheduler == "heap"


# -------------------------------------------------- order differential

def _run_script(sim, ops_seed: int) -> list:
    """Replay a randomized schedule/cancel/nested script; returns the
    firing log. The script itself is backend-independent."""
    rng = random.Random(ops_seed)
    fired = []
    handles = []

    def fire(tag):
        fired.append((round(sim.now, 9), tag))
        if rng.random() < 0.3:  # nested scheduling from callbacks
            handles.append(sim.call_after(rng.choice([0.0, 1e-4, 0.5, 30.0]),
                                          fire, f"{tag}.n"))
        if handles and rng.random() < 0.2:
            handles[rng.randrange(len(handles))].cancel()

    for i in range(200):
        delay = rng.choice([0.0, 1e-4, 1e-3, 0.01, 0.01, 1.0, 50.0])
        handles.append(sim.call_after(delay, fire, i))
    for _ in range(30):
        handles[rng.randrange(len(handles))].cancel()
    sim.run()
    return fired


@pytest.mark.parametrize("ops_seed", [0, 1, 2, 3])
def test_wheel_matches_heap_firing_order(ops_seed):
    heap_log = _run_script(Simulator(), ops_seed)
    wheel_log = _run_script(WheelSimulator(tick=1e-3, slots=64), ops_seed)
    assert wheel_log == heap_log


# -------------------------------------------- full-stack differential

def test_chaos_digest_identical_heap_vs_wheel():
    base = dict(seed=11, posts=40, settle=8.0)
    heap = run_chaos(ChaosSpec(scheduler="heap", **base))
    wheel = run_chaos(ChaosSpec(scheduler="wheel", **base))
    assert heap.violations == [] and wheel.violations == []
    assert heap.digest == wheel.digest


def test_durable_chaos_digest_identical_heap_vs_wheel():
    base = dict(seed=7, posts=30, settle=8.0, durable=True)
    heap = run_chaos(ChaosSpec(scheduler="heap", **base))
    wheel = run_chaos(ChaosSpec(scheduler="wheel", **base))
    assert heap.violations == [] and wheel.violations == []
    assert heap.digest == wheel.digest


def test_fastpath_burst_identical_heap_vs_wheel():
    base = dict(seed=5, posts=80, burst=4)
    heap = run_burst(FastpathSpec(scheduler="heap", **base), fastpath=True,
                     bidirectional=True)
    wheel = run_burst(FastpathSpec(scheduler="wheel", **base), fastpath=True,
                      bidirectional=True)
    assert deterministic_view(heap) == deterministic_view(wheel)
