"""Tests for the extension features: declared entry events (§5.2),
the monitor watchdog (§6.2 enforcement), and trace export."""

import json

import pytest

from repro import DistObject, entry
from repro.apps.exceptions import invoke_declared, repairing
from repro.monitor import MonitorServer, install_monitor
from tests.conftest import make_cluster


class DeclaredMath(DistObject):
    @entry(raises=("DIV_ZERO",))
    def divide(self, ctx, a, b):
        yield ctx.compute(0)
        return a / b

    @entry
    def undeclared(self, ctx):
        yield ctx.compute(0)
        return "plain"


class TestDeclaredEvents:
    def test_signature_introspection(self):
        obj = DeclaredMath()
        assert obj.entry_raises("divide") == ("DIV_ZERO",)
        assert obj.entry_raises("undeclared") == ()

    def test_entry_raises_validates_name(self):
        from repro.errors import NoSuchEntryError

        with pytest.raises(NoSuchEntryError):
            DeclaredMath().entry_raises("nope")

    def test_bare_and_parameterised_decorators_coexist(self):
        assert "divide" in DeclaredMath._entries
        assert "undeclared" in DeclaredMath._entries

    def test_invoke_declared_attaches_default_terminator(self):
        cluster = make_cluster(n_nodes=2)

        class Caller(DistObject):
            @entry
            def go(self, ctx, cap):
                result = yield from invoke_declared(ctx, cap, "divide",
                                                    1, 0)
                return result

        math = cluster.create_object(DeclaredMath, node=1)
        caller = cluster.create_object(Caller, node=0)
        thread = cluster.spawn(caller, "go", math, at=0)
        cluster.run()
        # the default factory terminates on a declared fault
        assert thread.state == "terminated"

    def test_invoke_declared_with_custom_factory(self):
        cluster = make_cluster(n_nodes=2)

        class Caller(DistObject):
            @entry
            def go(self, ctx, cap):
                result = yield from invoke_declared(
                    ctx, cap, "divide", 1, 0,
                    handler_factory=lambda event: repairing(-99))
                return result

        math = cluster.create_object(DeclaredMath, node=1)
        caller = cluster.create_object(Caller, node=0)
        thread = cluster.spawn(caller, "go", math, at=0)
        cluster.run()
        assert thread.completion.result() == -99


class Stalling(DistObject):
    @entry
    def maybe_stall(self, ctx, monitor_cap, stall):
        yield from install_monitor(ctx, monitor_cap, period=0.05)
        yield ctx.compute(0.2)
        if stall:
            # stops yielding samples: blocked on a future nobody resolves
            from repro.sim.primitives import SimFuture

            forever = SimFuture(ctx._thread.cluster.sim)
            yield ctx.wait(forever)
        return "healthy"


class TestWatchdog:
    def test_watchdog_kills_stalled_thread_only(self):
        cluster = make_cluster(n_nodes=3)
        monitor = cluster.create_object(MonitorServer, node=2,
                                        stale_after=0.3)
        app = cluster.create_object(Stalling, node=1)
        healthy = cluster.spawn(app, "maybe_stall", monitor, False, at=0)
        stalled = cluster.spawn(app, "maybe_stall", monitor, True, at=0)
        cluster.spawn(monitor, "start_watchdog", 0.1, at=2)
        cluster.run(until=5.0)
        assert healthy.completion.result() == "healthy"
        assert stalled.state == "terminated"

    def test_watchdog_ignores_finished_threads(self):
        cluster = make_cluster(n_nodes=2)
        monitor = cluster.create_object(MonitorServer, node=1,
                                        stale_after=0.1)
        app = cluster.create_object(Stalling, node=0)
        thread = cluster.spawn(app, "maybe_stall", monitor, False, at=0)
        cluster.spawn(monitor, "start_watchdog", 0.1, at=1)
        cluster.run(until=3.0)
        assert thread.completion.result() == "healthy"
        assert cluster.events.dead_targets == 0

    def test_stop_watchdog(self):
        cluster = make_cluster(n_nodes=2)
        monitor = cluster.create_object(MonitorServer, node=1)
        cluster.spawn(monitor, "start_watchdog", 0.1, at=1)
        cluster.run(until=0.5)
        stopper = cluster.spawn(monitor, "stop_watchdog", at=1)
        cluster.run(until=1.0)
        assert stopper.completion.result() is True
        # the sweeper is gone: virtual time can drain to idle
        cluster.run()
        assert cluster.quiescent()


class TestTraceExport:
    def test_jsonl_roundtrip(self, tmp_path):
        cluster = make_cluster(n_nodes=2)
        from tests.conftest import Echo

        cap = cluster.create_object(Echo, node=1)
        cluster.spawn(cap, "echo", 1, at=0)
        cluster.run()
        path = tmp_path / "trace.jsonl"
        count = cluster.tracer.to_jsonl(path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == count > 0
        first = json.loads(lines[0])
        assert {"time", "category", "name"} <= set(first)

    def test_summary_counts_categories(self):
        cluster = make_cluster(n_nodes=2)
        from tests.conftest import Echo

        cap = cluster.create_object(Echo, node=1)
        cluster.spawn(cap, "echo", 1, at=0)
        cluster.run()
        summary = cluster.tracer.summary()
        assert summary.get("thread", 0) > 0
        assert summary.get("net", 0) > 0
