"""Unit tests for the object model: decorators, interface, capabilities."""

import pytest

from repro.errors import NoSuchEntryError, ObjectError
from repro.objects import Capability, DistObject, entry, handler_entry, on_event
from repro.objects.perthread import PerThreadMemory
from repro.errors import HandlerContextError


class Sample(DistObject):
    @entry
    def work(self, ctx, x):
        yield ctx.compute(0)
        return x

    @on_event("DELETE")
    def cleanup(self, ctx, block):
        yield ctx.compute(0)

    @on_event("PING", "INTERRUPT")
    def multi(self, ctx, block):
        yield ctx.compute(0)

    @handler_entry
    def fixer(self, ctx, block):
        yield ctx.compute(0)

    def plain(self):
        return "not an entry"


class Derived(Sample):
    @entry
    def extra(self, ctx):
        yield ctx.compute(0)

    @on_event("DELETE")
    def cleanup2(self, ctx, block):
        yield ctx.compute(0)


class TestDecorators:
    def test_entry_requires_generator(self):
        with pytest.raises(ObjectError):
            entry(lambda self, ctx: None)

    def test_on_event_requires_generator(self):
        with pytest.raises(ObjectError):
            on_event("X")(lambda self, ctx, b: None)

    def test_on_event_requires_event_names(self):
        with pytest.raises(ObjectError):
            on_event()

    def test_handler_entry_requires_generator(self):
        with pytest.raises(ObjectError):
            handler_entry(lambda self, ctx, b: None)


class TestInterface:
    def test_entries_collected(self):
        assert "work" in Sample._entries
        assert "plain" not in Sample._entries
        assert "cleanup" not in Sample._entries  # handlers are private

    def test_object_handlers_collected(self):
        assert Sample._object_handlers["DELETE"] == "cleanup"
        assert Sample._object_handlers["PING"] == "multi"
        assert Sample._object_handlers["INTERRUPT"] == "multi"

    def test_inheritance_extends_and_overrides(self):
        assert "work" in Derived._entries
        assert "extra" in Derived._entries
        assert Derived._object_handlers["DELETE"] == "cleanup2"

    def test_entry_fn_lookup(self):
        obj = Sample()
        assert obj.entry_fn("work").__name__ == "work"
        with pytest.raises(NoSuchEntryError):
            obj.entry_fn("plain")

    def test_handler_fn_accepts_handler_entries_and_entries(self):
        obj = Sample()
        assert obj.handler_fn("fixer").__name__ == "fixer"
        assert obj.handler_fn("work").__name__ == "work"
        with pytest.raises(NoSuchEntryError):
            obj.handler_fn("plain")

    def test_object_handler_fn(self):
        obj = Sample()
        assert obj.object_handler_fn("DELETE") is not None
        assert obj.object_handler_fn("NOPE") is None
        assert obj.handled_events() == ["DELETE", "INTERRUPT", "PING"]


class TestPlacement:
    def test_unplaced_object_rejects_home(self):
        obj = Sample()
        with pytest.raises(ObjectError):
            obj.home
        with pytest.raises(ObjectError):
            obj.cap

    def test_place_once(self):
        obj = Sample()
        obj._place(2, "rpc")
        assert obj.home == 2
        assert obj.transport == "rpc"
        with pytest.raises(ObjectError):
            obj._place(3, "rpc")

    def test_capability_fields(self):
        obj = Sample()
        obj._place(1, "rpc")
        cap = obj.cap
        assert cap.oid == obj.oid
        assert cap.home == 1
        assert cap.cls_name == "Sample"
        assert str(cap) == f"O{obj.oid}@1/rpc"

    def test_capability_validates_transport(self):
        with pytest.raises(ObjectError):
            Capability(oid=1, home=0, transport="warp")

    def test_oids_unique(self):
        assert Sample().oid != Sample().oid


class TestPerThreadMemory:
    def test_procedures(self):
        mem = PerThreadMemory()
        mem.install_procedure("h", lambda ctx, b: None)
        assert mem.has_procedure("h")
        assert mem.procedures() == ["h"]
        assert callable(mem.procedure("h"))

    def test_missing_procedure_raises(self):
        mem = PerThreadMemory()
        with pytest.raises(HandlerContextError):
            mem.procedure("ghost")

    def test_non_callable_rejected(self):
        mem = PerThreadMemory()
        with pytest.raises(HandlerContextError):
            mem.install_procedure("x", 42)

    def test_data_mapping(self):
        mem = PerThreadMemory()
        mem["k"] = 1
        assert "k" in mem
        assert mem["k"] == 1
        assert mem.get("missing", "d") == "d"
        assert mem.setdefault("k", 9) == 1

    def test_copy_is_independent(self):
        mem = PerThreadMemory()
        mem["k"] = 1
        mem.install_procedure("h", lambda ctx, b: None)
        clone = mem.copy()
        clone["k"] = 2
        clone.install_procedure("h2", lambda ctx, b: None)
        assert mem["k"] == 1
        assert not mem.has_procedure("h2")
        assert clone.has_procedure("h")

    def test_nominal_size_grows(self):
        mem = PerThreadMemory()
        base = mem.nominal_size
        mem.install_procedure("h", lambda ctx, b: None)
        assert mem.nominal_size > base
