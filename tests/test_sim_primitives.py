"""Unit tests for sim futures, conditions, semaphores and channels."""

import pytest

from repro.errors import SimulationError
from repro.sim import Channel, Condition, Semaphore, SimFuture, Simulator


@pytest.fixture()
def sim():
    return Simulator()


class TestSimFuture:
    def test_resolve_and_result(self, sim):
        fut = SimFuture(sim)
        assert not fut.done
        fut.resolve(42)
        assert fut.done
        assert fut.result() == 42

    def test_result_before_done_raises(self, sim):
        fut = SimFuture(sim)
        with pytest.raises(SimulationError):
            fut.result()

    def test_fail_reraises(self, sim):
        fut = SimFuture(sim)
        fut.fail(ValueError("boom"))
        assert fut.failed
        with pytest.raises(ValueError, match="boom"):
            fut.result()

    def test_fail_requires_exception(self, sim):
        fut = SimFuture(sim)
        with pytest.raises(SimulationError):
            fut.fail("not an exception")

    def test_double_resolve_rejected(self, sim):
        fut = SimFuture(sim)
        fut.resolve(1)
        with pytest.raises(SimulationError):
            fut.resolve(2)

    def test_cancel(self, sim):
        fut = SimFuture(sim)
        assert fut.cancel() is True
        assert fut.cancelled
        assert fut.cancel() is False
        with pytest.raises(SimulationError):
            fut.result()

    def test_callbacks_run_via_scheduler(self, sim):
        fut = SimFuture(sim)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        fut.resolve("v")
        assert seen == []  # not synchronous
        sim.run()
        assert seen == ["v"]

    def test_callback_added_after_done_still_fires(self, sim):
        fut = SimFuture(sim)
        fut.resolve(7)
        seen = []
        fut.add_done_callback(lambda f: seen.append(f.result()))
        sim.run()
        assert seen == [7]

    def test_multiple_callbacks_fifo(self, sim):
        fut = SimFuture(sim)
        seen = []
        fut.add_done_callback(lambda f: seen.append("a"))
        fut.add_done_callback(lambda f: seen.append("b"))
        fut.resolve(None)
        sim.run()
        assert seen == ["a", "b"]


class TestCondition:
    def test_signal_wakes_oldest(self, sim):
        cond = Condition(sim)
        w1, w2 = cond.wait(), cond.wait()
        assert cond.waiting == 2
        assert cond.signal("x") is True
        assert w1.done and not w2.done
        assert w1.result() == "x"

    def test_signal_with_no_waiters(self, sim):
        cond = Condition(sim)
        assert cond.signal() is False

    def test_broadcast_wakes_all(self, sim):
        cond = Condition(sim)
        waiters = [cond.wait() for _ in range(3)]
        assert cond.broadcast("go") == 3
        assert all(w.result() == "go" for w in waiters)

    def test_signal_skips_cancelled_waiters(self, sim):
        cond = Condition(sim)
        w1, w2 = cond.wait(), cond.wait()
        w1.cancel()
        assert cond.signal("y") is True
        assert w2.result() == "y"


class TestSemaphore:
    def test_initial_acquires_succeed(self, sim):
        sem = Semaphore(sim, value=2)
        assert sem.acquire().done
        assert sem.acquire().done
        assert not sem.acquire().done

    def test_release_wakes_waiter(self, sim):
        sem = Semaphore(sim, value=1)
        sem.acquire()
        waiter = sem.acquire()
        assert not waiter.done
        sem.release()
        assert waiter.done

    def test_release_without_waiters_increments(self, sim):
        sem = Semaphore(sim, value=0)
        sem.release()
        assert sem.value == 1
        assert sem.try_acquire() is True
        assert sem.try_acquire() is False

    def test_negative_initial_value_rejected(self, sim):
        with pytest.raises(SimulationError):
            Semaphore(sim, value=-1)

    def test_release_skips_cancelled_waiter(self, sim):
        sem = Semaphore(sim, value=0)
        w1 = sem.acquire()
        w2 = sem.acquire()
        w1.cancel()
        sem.release()
        assert w2.done


class TestChannel:
    def test_put_then_get(self, sim):
        chan = Channel(sim)
        chan.put("a")
        assert chan.get().result() == "a"

    def test_get_then_put(self, sim):
        chan = Channel(sim)
        getter = chan.get()
        assert not getter.done
        chan.put("b")
        assert getter.result() == "b"

    def test_fifo_ordering(self, sim):
        chan = Channel(sim)
        for i in range(5):
            chan.put(i)
        assert [chan.get().result() for _ in range(5)] == list(range(5))

    def test_getters_served_in_order(self, sim):
        chan = Channel(sim)
        g1, g2 = chan.get(), chan.get()
        chan.put("first")
        chan.put("second")
        assert g1.result() == "first"
        assert g2.result() == "second"

    def test_len_and_drain(self, sim):
        chan = Channel(sim)
        chan.put(1)
        chan.put(2)
        assert len(chan) == 2
        assert chan.drain() == [1, 2]
        assert len(chan) == 0

    def test_put_skips_cancelled_getter(self, sim):
        chan = Channel(sim)
        g1, g2 = chan.get(), chan.get()
        g1.cancel()
        chan.put("x")
        assert g2.result() == "x"

    def test_reset_forgets_waiting_getters(self, sim):
        """Regression: after a consumer dies mid-``get`` (node crash),
        its stale future must not swallow the next ``put`` — ``reset``
        drops items AND waiters so a fresh consumer sees new items."""
        chan = Channel(sim)
        stale = chan.get()  # consumer dies while parked here
        assert not stale.done
        chan.reset()  # crash cleanup
        chan.put("post-crash")  # must not be handed to the dead waiter
        assert not stale.done
        assert chan.get().result() == "post-crash"

    def test_reset_returns_queued_items(self, sim):
        chan = Channel(sim)
        chan.put(1)
        chan.put(2)
        stale = chan.get()  # resolved immediately with 1
        assert stale.result() == 1
        assert chan.reset() == [2]
        assert len(chan) == 0
