"""Property-based tests for synchronous raising and surrogate identity.

Random group sizes, placements and handler service times: a
``raise_and_wait`` to a group must collect exactly one value per member,
block for at least the slowest member's service time, and never hang.
Handlers must always observe the *target's* identity (impersonation).
"""

from hypothesis import given, settings, strategies as st

from repro import Decision, DistObject, entry
from tests.conftest import make_cluster


class Member(DistObject):
    @entry
    def wait_for_ping(self, ctx, label, service):
        def handler(hctx, block):
            yield hctx.sleep(service)
            # identity seen by the handler == the suspended thread's
            assert hctx.tid == ctx.tid
            assert hctx.real_tid != hctx.tid  # a surrogate ran this
            return (Decision.RESUME, (label, str(hctx.tid)))

        yield ctx.attach_handler("PING", handler)
        yield ctx.sleep(1e6)


@settings(max_examples=25, deadline=None)
@given(
    members=st.integers(min_value=1, max_value=6),
    n_nodes=st.integers(min_value=2, max_value=5),
    services=st.lists(st.floats(min_value=0.0, max_value=0.2,
                                allow_nan=False), min_size=6, max_size=6),
    raise_from=st.integers(min_value=0, max_value=4),
)
def test_group_sync_raise_collects_every_member(members, n_nodes,
                                                services, raise_from):
    cluster = make_cluster(n_nodes=n_nodes, trace_net=False)
    cluster.register_event("PING")
    obj = cluster.create_object(Member, node=1 % n_nodes)
    gid = cluster.new_group()
    tids = []
    for i in range(members):
        thread = cluster.spawn(obj, "wait_for_ping", f"m{i}",
                               services[i], at=i % n_nodes, group=gid)
        tids.append(str(thread.tid))
    cluster.run(until=1.0)
    start = cluster.now
    future = cluster.raise_and_wait("PING", gid,
                                    from_node=raise_from % n_nodes)
    cluster.run(until=start + 60.0)
    values = future.result()
    # exactly one value per member, each from the right thread
    assert len(values) == members
    assert sorted(label for label, _ in values) == \
        sorted(f"m{i}" for i in range(members))
    assert sorted(tid for _, tid in values) == sorted(tids)
    # the raiser blocked at least as long as the slowest handler
    assert future.done
    # every member survived (handlers resumed them)
    for tid in tids:
        from repro.threads.ids import ThreadId

        assert ThreadId.parse(tid) in cluster.live_threads


@settings(max_examples=20, deadline=None)
@given(service=st.floats(min_value=0.0, max_value=0.5, allow_nan=False))
def test_sync_window_tracks_service_time(service):
    cluster = make_cluster(n_nodes=3, trace_net=False)
    cluster.register_event("PING")
    obj = cluster.create_object(Member, node=1)
    thread = cluster.spawn(obj, "wait_for_ping", "x", service, at=2)
    cluster.run(until=1.0)
    start = cluster.now
    future = cluster.raise_and_wait("PING", thread.tid, from_node=0)
    cluster.run(until=start + service + 10.0)
    assert future.done
    # the raiser could not have been resumed before the handler slept
    label, tid = future.result()
    assert label == "x"
