"""Tests for handler supervision: watchdog deadlines, buddy circuit
breakers, dead-letter quarantine, the heartbeat failure detector — and
the knobs-off guarantee that none of it perturbs unsupervised runs."""

from dataclasses import replace

import pytest

from repro import Decision, DistObject, entry, handler_entry, on_event
from repro.bench.chaos import ChaosSpec, run_chaos
from repro.errors import EventError, EventQuarantinedError, RpcTimeout
from repro.events.handlers import (
    HandlerChain,
    HandlerContext,
    HandlerRegistration,
)
from repro.events.supervise import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from tests.conftest import make_cluster


def _rig(**cfg):
    cluster = make_cluster(**cfg)
    cluster.register_event("EVT")
    return cluster


def _hang(hctx, block):
    yield hctx.sleep(1e9)
    return Decision.RESUME


# ======================================================================
# circuit breaker (pure state machine)
# ======================================================================

class TestCircuitBreaker:
    def test_closed_admits_everything(self):
        breaker = CircuitBreaker(threshold=3, reset=1.0)
        assert breaker.state == CLOSED
        for now in (0.0, 5.0, 100.0):
            assert breaker.allow(now) == (True, False)

    def test_threshold_consecutive_failures_open_it(self):
        breaker = CircuitBreaker(threshold=3, reset=1.0)
        assert not breaker.record_failure(0.1)
        assert not breaker.record_failure(0.2)
        assert breaker.record_failure(0.3)  # the opening failure reports
        assert breaker.state == OPEN
        assert breaker.opened_at == 0.3

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, reset=1.0)
        breaker.record_failure(0.1)
        assert not breaker.record_success()  # already closed: no close
        breaker.record_failure(0.2)
        assert breaker.state == CLOSED  # count restarted after success
        assert breaker.record_failure(0.3)

    def test_open_rejects_inside_the_reset_window(self):
        breaker = CircuitBreaker(threshold=1, reset=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(0.5) == (False, False)
        assert breaker.state == OPEN

    def test_reset_window_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(threshold=1, reset=1.0)
        breaker.record_failure(0.0)
        assert breaker.allow(1.5) == (True, True)  # the half-open probe
        assert breaker.state == HALF_OPEN
        # While the probe is in flight nothing else gets through.
        assert breaker.allow(1.6) == (False, False)

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(threshold=1, reset=1.0)
        breaker.record_failure(0.0)
        breaker.allow(1.5)
        assert breaker.record_success()  # reports the close
        assert breaker.state == CLOSED
        assert breaker.allow(1.6) == (True, False)

    def test_probe_failure_reopens_and_refreshes_the_window(self):
        breaker = CircuitBreaker(threshold=1, reset=1.0)
        breaker.record_failure(0.0)
        breaker.allow(1.5)
        assert breaker.record_failure(1.6)  # re-open reports
        assert breaker.state == OPEN
        assert breaker.opened_at == 1.6
        assert breaker.allow(2.0) == (False, False)


# ======================================================================
# watchdog deadlines
# ======================================================================

class HungApp(DistObject):
    @entry
    def work(self, ctx, seen, deadline=None, subscribe=False):
        def watch(hctx, block):
            seen.append(block.user_data)
            yield hctx.compute(0)
            return Decision.RESUME

        if subscribe:
            yield ctx.attach_handler("HANDLER_TIMEOUT", watch)
        yield ctx.attach_handler("EVT", _hang, deadline=deadline)
        yield ctx.sleep(100.0)
        return "survived"


class TestWatchdog:
    def test_hung_last_handler_falls_through_to_default(self):
        """Satellite: a timeout on the last (only) handler must land on
        the event's default decision — RESUME for a user event."""
        cluster = _rig(n_nodes=2, handler_deadline=0.05)
        app = cluster.create_object(HungApp, node=0)
        thread = cluster.spawn(app, "work", [], at=0)
        cluster.run(until=0.1)
        start = cluster.now
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=start + 1.0)
        assert thread.state == "blocked"  # resumed back into its sleep
        stats = cluster.supervision_stats()
        assert stats["handler_timeouts"] == 1
        # No HANDLER_TIMEOUT subscription: no extra notice was raised.
        assert not any(r.category == "event" and r.name == "deliver"
                       and r.get("event") == "HANDLER_TIMEOUT"
                       for r in cluster.tracer.records)

    def test_timeout_propagates_to_the_next_handler(self):
        cluster = _rig(n_nodes=2, handler_deadline=0.05)
        handled = []

        class App(DistObject):
            @entry
            def work(self, ctx):
                def fallback(hctx, block):
                    handled.append(block.user_data)
                    yield hctx.compute(0)
                    return Decision.RESUME

                yield ctx.attach_handler("EVT", fallback)
                yield ctx.attach_handler("EVT", _hang)  # LIFO: runs first
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "work", at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data="x")
        cluster.run(until=1.0)
        assert handled == ["x"]
        assert cluster.supervision_stats()["handler_timeouts"] == 1

    def test_handler_timeout_event_delivered_to_subscriber(self):
        cluster = _rig(n_nodes=2, handler_deadline=0.05)
        seen = []
        app = cluster.create_object(HungApp, node=0)
        thread = cluster.spawn(app, "work", seen, None, True, at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=1.0)
        assert seen == [{"event": "EVT", "deadline": 0.05}]
        assert thread.state == "blocked"

    def test_per_registration_deadline_overrides_disabled_global(self):
        cluster = _rig(n_nodes=2)  # no handler_deadline knob
        app = cluster.create_object(HungApp, node=0)
        thread = cluster.spawn(app, "work", [], 0.04, at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=1.0)
        assert thread.state == "blocked"
        assert cluster.supervision_stats()["handler_timeouts"] == 1

    def test_no_deadline_means_the_handler_hangs(self):
        """The pre-supervision contrast: without a watchdog the hung
        surrogate wedges the thread's delivery forever."""
        cluster = _rig(n_nodes=2)
        app = cluster.create_object(HungApp, node=0)
        thread = cluster.spawn(app, "work", [], at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=2.0)
        assert thread.delivering_block is not None  # still mid-delivery
        assert cluster.supervision_stats()["handler_timeouts"] == 0

    def test_object_handler_watchdog_unwedges_the_master(self):
        hits = []

        class SlowObj(DistObject):
            @on_event("EVT")
            def on_evt(self, ctx, block):
                hits.append(block.user_data)
                if block.user_data == 0:
                    yield ctx.sleep(1e9)
                yield ctx.compute(1e-4)

        cluster = _rig(n_nodes=2, handler_deadline=0.05)
        cap = cluster.create_object(SlowObj, node=1)
        cluster.raise_event("EVT", cap, from_node=0, user_data=0)
        cluster.raise_event("EVT", cap, from_node=0, user_data=1)
        cluster.run(until=2.0)
        # Post 0 hung and was killed at the deadline; post 1 still ran.
        assert hits == [0, 1]
        assert cluster.supervision_stats()["handler_timeouts"] >= 1


# ======================================================================
# buddy retry / breaker / fast-fail
# ======================================================================

class Buddy(DistObject):
    def __init__(self):
        super().__init__()
        self.served = []

    @handler_entry
    def on_tick(self, ctx, block):
        yield ctx.compute(1e-4)
        self.served.append(block.user_data)
        return Decision.RESUME


class BuddyWorker(DistObject):
    @entry
    def work(self, ctx, buddy_cap, handled):
        def fallback(hctx, block):
            handled[block.user_data] = handled.get(block.user_data, 0) + 1
            yield hctx.compute(1e-6)
            return Decision.RESUME

        yield ctx.attach_handler("EVT", fallback)
        yield ctx.attach_handler("EVT", "on_tick", buddy=buddy_cap)
        yield ctx.sleep(1e9)


def _buddy_rig(**cfg):
    cluster = _rig(n_nodes=3, reliable_delivery=True, max_retransmits=4,
                   **cfg)
    buddy = cluster.create_object(Buddy, node=1)
    worker = cluster.create_object(BuddyWorker, node=0)
    handled = {}
    thread = cluster.spawn(worker, "work", buddy, handled, at=0)
    cluster.run(until=0.1)
    return cluster, buddy, thread, handled


class TestBuddySupervision:
    def test_retries_then_falls_through_to_fallback(self):
        cluster, buddy, thread, handled = _buddy_rig(handler_retries=2)
        cluster.crash_node(1)
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=0)
        cluster.run(until=cluster.now + 3.0)
        assert handled == {0: 1}
        assert cluster.get_object(buddy).served == []
        assert cluster.supervision_stats()["handler_retries"] == 2

    def test_breaker_opens_skips_and_closes_after_recovery(self):
        cluster, buddy, thread, handled = _buddy_rig(
            breaker_threshold=2, breaker_reset=1.0)
        cluster.crash_node(1)
        t0 = cluster.now
        for pid in range(3):
            cluster.sim.call_at(t0 + 0.3 * (pid + 1), cluster.raise_event,
                                "EVT", thread.tid, 0, pid)
        cluster.run(until=t0 + 1.1)
        stats = cluster.supervision_stats()
        # Two give-ups opened the breaker; the third post was skipped
        # straight to the fallback without touching the network.
        assert stats["breaker_opens"] == 1
        assert stats["breaker_skips"] == 1
        assert handled == {0: 1, 1: 1, 2: 1}
        assert cluster.events.supervisor.breaker_state(
            buddy.oid, "EVT") == OPEN
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 1.5)  # past the reset window
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=3)
        cluster.run(until=cluster.now + 1.0)
        stats = cluster.supervision_stats()
        assert stats["breaker_half_opens"] == 1
        assert stats["breaker_closes"] == 1
        assert cluster.events.supervisor.breaker_state(
            buddy.oid, "EVT") == CLOSED
        assert cluster.get_object(buddy).served == [3]

    def test_suspected_buddy_node_fails_fast(self):
        cluster, buddy, thread, handled = _buddy_rig(
            heartbeat_interval=0.02, suspect_after=3)
        cluster.crash_node(1)
        cluster.run(until=cluster.now + 0.5)  # suspicion forms
        start = cluster.now
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=0)
        cluster.run(until=start + 1.0)
        stats = cluster.supervision_stats()
        assert stats["fast_fails"] >= 1
        assert handled == {0: 1}

    def test_breaker_skip_then_detach_leaves_a_clean_chain(self):
        """Satellite: a breaker-skipped registration must still detach
        cleanly, leaving the chain to the fallback alone."""
        cluster, buddy, thread, handled = _buddy_rig(
            breaker_threshold=1, breaker_reset=60.0)
        cluster.crash_node(1)
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=0)
        cluster.run(until=cluster.now + 1.0)
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=1)
        cluster.run(until=cluster.now + 1.0)
        stats = cluster.supervision_stats()
        assert stats["breaker_opens"] == 1
        assert stats["breaker_skips"] == 1
        # Detach the (skipped) buddy registration — top of the LIFO chain.
        popped = thread.attributes.detach_top("EVT")
        assert popped is not None and popped.context is HandlerContext.BUDDY
        cluster.raise_event("EVT", thread.tid, from_node=0, user_data=2)
        cluster.run(until=cluster.now + 1.0)
        assert handled == {0: 1, 1: 1, 2: 1}
        # The buddy was never consulted again: no further skip counted.
        assert cluster.supervision_stats()["breaker_skips"] == 1


# ======================================================================
# heartbeat failure detector
# ======================================================================

class TestFailureDetector:
    def test_crash_suspect_recover_trust(self):
        cluster = make_cluster(n_nodes=3, heartbeat_interval=0.02,
                               suspect_after=3)
        cluster.run(until=0.3)
        assert cluster.supervision_stats()["suspicions"] == 0
        cluster.crash_node(1)
        cluster.run(until=0.8)
        assert cluster.kernels[0].failure.is_suspected(1)
        assert cluster.kernels[2].failure.is_suspected(1)
        stats = cluster.supervision_stats()
        assert stats["suspicions"] >= 2
        assert stats["suspected"] >= 2
        cluster.recover_node(1)
        cluster.run(until=1.5)
        assert not cluster.kernels[0].failure.is_suspected(1)
        stats = cluster.supervision_stats()
        assert stats["trusts"] >= 2
        assert stats["suspected"] == 0

    def test_disabled_detector_sends_nothing(self):
        cluster = make_cluster(n_nodes=3)
        cluster.run(until=0.5)
        stats = cluster.supervision_stats()
        assert stats["beats_sent"] == 0
        assert stats["beats_received"] == 0


# ======================================================================
# dead-letter quarantine
# ======================================================================

class PoisonApp(DistObject):
    @entry
    def work(self, ctx, healthy, handled):
        def flaky(hctx, block):
            yield hctx.compute(1e-5)
            if not healthy[0]:
                raise RuntimeError("poison pill")
            handled.append(block.user_data)
            return Decision.RESUME

        yield ctx.attach_handler("EVT", flaky)
        yield ctx.sleep(100.0)
        return "survived"


class TestDeadLetterQuarantine:
    def _poisoned(self, **cfg):
        cluster = _rig(n_nodes=2, poison_threshold=2, handler_backoff=1e-3,
                       **cfg)
        healthy, handled = [False], []
        app = cluster.create_object(PoisonApp, node=0)
        thread = cluster.spawn(app, "work", healthy, handled, at=0)
        cluster.run(until=0.1)
        return cluster, thread, healthy, handled

    def test_poison_thread_post_quarantines_after_threshold(self):
        cluster, thread, healthy, handled = self._poisoned()
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data=42)
        cluster.run(until=1.0)
        dead = cluster.dead_letters()
        assert len(dead) == 1
        assert dead[0].reason == "poison"
        assert dead[0].failures == 2
        assert dead[0].block.user_data == 42
        assert "poison pill" in dead[0].error
        stats = cluster.supervision_stats()
        assert stats["quarantined"] == 1
        assert stats["chain_retries"] == 1
        assert stats["dead_letters_held"] == 1
        assert thread.state == "blocked"  # the thread itself moved on

    def test_sync_raiser_fails_with_quarantine_error(self):
        cluster, thread, healthy, handled = self._poisoned()
        future = cluster.raise_and_wait("EVT", thread.tid, from_node=1)
        cluster.run(until=1.0)
        assert future.done and future.failed
        with pytest.raises(EventQuarantinedError):
            future.result()
        assert cluster.events._sync_waits == {}

    def test_requeue_reposts_as_a_fresh_block(self):
        cluster, thread, healthy, handled = self._poisoned()
        cluster.raise_event("EVT", thread.tid, from_node=1, user_data=7)
        cluster.run(until=1.0)
        (dead,) = cluster.dead_letters(0)
        healthy[0] = True
        assert cluster.requeue_dead_letter(0, dead.dl_id)
        cluster.run(until=cluster.now + 1.0)
        assert handled == [7]
        assert cluster.dead_letters() == []
        stats = cluster.supervision_stats()
        assert stats["requeued"] == 1
        assert stats["dead_letters_requeued"] == 1
        assert stats["dead_letters_held"] == 0
        # Unknown ids are reported, not raised.
        assert not cluster.requeue_dead_letter(0, 999)

    def test_undeliverable_object_post_lands_in_raiser_dlq(self):
        """Satellite: a reliable object post that exhausts its budget is
        kept inspectable on the raiser's node, not dropped."""
        cluster = make_cluster(n_nodes=3, reliable_delivery=True,
                               max_retransmits=4)
        cluster.register_event("PING")
        from tests.conftest import Recorder
        cap = cluster.create_object(Recorder, node=2)
        cluster.crash_node(2)
        cluster.raise_event("PING", cap, from_node=0, user_data="lost")
        cluster.run(until=2.0)
        assert cluster.events.undeliverable == 1
        (dead,) = cluster.dead_letters(0)
        assert dead.reason == "undeliverable"
        assert dead.block.user_data == "lost"
        stats = cluster.supervision_stats()
        assert stats["dead_letter_undeliverable"] == 1
        # After recovery the dead letter is requeueable and finally lands.
        cluster.recover_node(2)
        cluster.run(until=cluster.now + 0.5)
        assert cluster.requeue_dead_letter(0, dead.dl_id)
        cluster.run(until=cluster.now + 2.0)
        recorder = cluster.get_object(cap)
        assert [e[:2] for e in recorder.events] == [("PING", "lost")]


class FlakyTarget(DistObject):
    def __init__(self, healthy, hits):
        super().__init__()
        self.healthy = healthy
        self.hits = hits

    @on_event("EVT")
    def on_evt(self, ctx, block):
        yield ctx.compute(1e-4)
        if not self.healthy[0]:
            raise RuntimeError("poison pill")
        self.hits.append(block.user_data)


class TestDurableDeadLetters:
    def test_quarantine_survives_crash_and_requeue_sticks(self):
        cluster = _rig(n_nodes=2, durable_delivery=True, poison_threshold=2,
                       handler_backoff=1e-3)
        healthy, hits = [False], []
        cap = cluster.create_object(FlakyTarget, healthy, hits, node=1)
        cluster.raise_event("EVT", cap, from_node=0, user_data=7)
        cluster.run(until=1.0)
        (dead,) = cluster.dead_letters(1)
        assert dead.reason == "poison"
        # The origin's outbox resolved the post as quarantined — nothing
        # pending, nothing counted as delivered.
        outbox = cluster.kernels[0].store.outbox.stats()
        assert outbox["quarantined"] == 1
        assert outbox["pending"] == 0
        # The quarantine is journaled: it survives a crash of its node.
        cluster.crash_node(1)
        cluster.run(until=cluster.now + 0.2)
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 1.0)
        (replayed,) = cluster.dead_letters(1)
        assert replayed.dl_id == dead.dl_id
        assert replayed.reason == "poison"
        assert hits == []  # recovery did not re-run the poison post
        # Requeue executes exactly once, and the removal is journaled
        # too: another crash/recovery does not resurrect the entry.
        healthy[0] = True
        assert cluster.requeue_dead_letter(1, dead.dl_id)
        cluster.run(until=cluster.now + 1.0)
        assert hits == [7]
        assert cluster.dead_letters(1) == []
        cluster.crash_node(1)
        cluster.run(until=cluster.now + 0.2)
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 1.0)
        assert cluster.dead_letters(1) == []
        assert hits == [7]


# ======================================================================
# satellites: handler_failures stat, sync-raise timeout regression
# ======================================================================

class TestHandlerFailureStat:
    def test_raising_handler_counts_and_traces(self):
        cluster = _rig(n_nodes=2)

        class App(DistObject):
            @entry
            def work(self, ctx):
                def bad(hctx, block):
                    yield hctx.compute(0)
                    raise RuntimeError("boom")

                yield ctx.attach_handler("EVT", bad)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "work", at=0)
        cluster.run(until=0.1)
        cluster.raise_event("EVT", thread.tid, from_node=1)
        cluster.run(until=1.0)
        assert cluster.events.handler_failures == 1
        assert any(r.category == "event" and r.name == "handler-error"
                   for r in cluster.tracer.records)
        assert thread.state == "blocked"  # fell through to default RESUME


class TestSyncRaiseTimeout:
    def test_late_resume_after_timeout_is_dropped(self):
        """Satellite regression: a resume arriving after the
        sync_raise_timeout already failed the raiser must neither
        double-resume nor leak the wait token."""
        cluster = _rig(n_nodes=2, sync_raise_timeout=0.05)

        class App(DistObject):
            @entry
            def work(self, ctx):
                def slow(hctx, block):
                    yield hctx.sleep(0.2)  # well past the timeout
                    return Decision.RESUME, "late-value"

                yield ctx.attach_handler("EVT", slow)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "work", at=0)
        cluster.run(until=0.01)
        start = cluster.now
        future = cluster.raise_and_wait("EVT", thread.tid, from_node=1)
        cluster.run(until=start + 0.1)
        # The timeout fired first: the raiser is failed and the token
        # is gone.
        assert future.done and future.failed
        assert cluster.events._sync_waits == {}
        # The handler finishes later; its resume must be a no-op.
        cluster.run(until=start + 1.0)
        assert future.failed
        with pytest.raises(RpcTimeout):
            future.result()
        assert cluster.events._sync_waits == {}
        assert thread.state == "blocked"  # target thread resumed normally


# ======================================================================
# handler-chain edge cases (satellite)
# ======================================================================

def _reg(event="EVT", procedure="p"):
    return HandlerRegistration(event=event, context=HandlerContext.CURRENT,
                               procedure=procedure)


class TestHandlerChainEdges:
    def test_pop_empty_chain_raises(self):
        chain = HandlerChain("EVT")
        with pytest.raises(EventError):
            chain.pop()

    def test_push_wrong_event_raises(self):
        chain = HandlerChain("EVT")
        with pytest.raises(EventError):
            chain.push(_reg(event="OTHER"))

    def test_remove_absent_returns_false(self):
        chain = HandlerChain("EVT")
        chain.push(_reg())
        assert not chain.remove(999_999)
        assert len(chain) == 1

    def test_remove_middle_preserves_lifo_order(self):
        chain = HandlerChain("EVT")
        regs = [_reg(procedure=f"p{i}") for i in range(3)]
        for reg in regs:
            chain.push(reg)
        assert chain.remove(regs[1].reg_id)
        assert [r.procedure for r in chain.in_order()] == ["p2", "p0"]
        assert chain.top() is regs[2]
        assert chain.pop() is regs[2]
        assert chain.pop() is regs[0]


# ======================================================================
# chaos: the exactly-once-or-quarantined guarantee
# ======================================================================

class TestChaosWithHandlerFaults:
    """The PR's contract: with the supervision knobs on, every chaos
    post is executed exactly once, §7.2-noticed, or quarantined — never
    lost or hung — even with hang / raise / poison faults injected."""

    BASE = ChaosSpec(seed=13, posts=60, drop_rate=0.1, duplicate_rate=0.05,
                     crash_period=0.6, down_time=0.4, settle=10.0)
    FAULTS = {"hang": 0.06, "raise": 0.06, "poison": 0.05}
    KNOBS = dict(handler_deadline=0.05, handler_retries=2,
                 breaker_threshold=3, poison_threshold=3,
                 heartbeat_interval=0.02)

    def test_supervised_chaos_accounts_every_post(self):
        spec = replace(self.BASE, handler_faults=self.FAULTS, **self.KNOBS)
        report = run_chaos(spec)
        assert sum(report.handler_fault_counts.values()) > 0
        assert report.violations == []
        assert report.accounted_rate == 1.0
        assert report.hung_handlers == 0

    def test_supervised_durable_chaos_exactly_once_or_quarantined(self):
        spec = replace(self.BASE, posts=40, durable=True,
                       handler_faults=self.FAULTS, **self.KNOBS)
        report = run_chaos(spec)
        assert report.violations == []
        assert report.hung_handlers == 0
        for pid in range(spec.posts):
            ran = report.executions.get(pid, 0)
            assert ran == 1 or (ran == 0 and pid in report.quarantined)
        assert report.durability["pending"] == 0

    def test_same_seed_determinism_with_supervision(self):
        spec = replace(self.BASE, posts=40, handler_faults=self.FAULTS,
                       **self.KNOBS)
        assert run_chaos(spec).digest == run_chaos(spec).digest


class TestKnobsOffUnchanged:
    """All supervision defaults off: bit-identical same-seed semantics,
    zero supervision activity, zero extra traffic."""

    def test_knobs_off_digest_is_stable(self):
        spec = ChaosSpec(seed=5, posts=40)
        first = run_chaos(spec)
        again = run_chaos(spec)
        assert first.digest == again.digest
        # An empty fault map is the same run as no fault map at all (the
        # seeded fault stream is only drawn when faults are requested).
        assert run_chaos(replace(spec, handler_faults={})).digest \
            == first.digest

    def test_knobs_off_durable_digest_is_stable(self):
        spec = ChaosSpec(seed=9, posts=40, durable=True)
        first = run_chaos(spec)
        assert first.digest == run_chaos(spec).digest
        assert run_chaos(replace(spec, handler_faults={})).digest \
            == first.digest

    def test_knobs_off_runs_show_zero_supervision_activity(self):
        report = run_chaos(ChaosSpec(seed=5, posts=40))
        sup = report.supervision
        for counter in ("handler_timeouts", "handler_retries",
                        "breaker_opens", "breaker_skips", "fast_fails",
                        "chain_retries", "quarantined", "requeued",
                        "beats_sent", "suspicions",
                        "dead_letters_quarantined"):
            assert sup[counter] == 0, (counter, sup)
        assert report.quarantined == set()
