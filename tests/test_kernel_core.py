"""Unit tests for kernel-layer services: config, TCBs, RPC, timers, names."""

import pytest

from repro.errors import (
    EventNameInUseError,
    KernelError,
    NameServiceError,
    RpcError,
    RpcTimeout,
    UnknownEventError,
)
from repro.kernel.config import ClusterConfig
from repro.kernel.names import NameService
from repro.kernel.rpc import RpcEngine, SizedReply
from repro.kernel.tcb import ThreadTable
from repro.kernel.timers import TimerService
from repro.net import Fabric
from repro.sim import Simulator, SimFuture


class TestClusterConfig:
    def test_defaults_valid(self):
        config = ClusterConfig()
        assert config.n_nodes == 4
        assert config.locator == "path"

    def test_rejects_zero_nodes(self):
        with pytest.raises(KernelError):
            ClusterConfig(n_nodes=0)

    def test_rejects_unknown_locator(self):
        with pytest.raises(KernelError):
            ClusterConfig(locator="teleport")

    def test_rejects_unknown_transport(self):
        with pytest.raises(KernelError):
            ClusterConfig(default_transport="carrier-pigeon")

    def test_rejects_unknown_event_mode(self):
        with pytest.raises(KernelError):
            ClusterConfig(object_event_mode="psychic")

    def test_rejects_negative_costs(self):
        with pytest.raises(KernelError):
            ClusterConfig(thread_create_cost=-1.0)

    def test_rejects_bad_page_size(self):
        with pytest.raises(KernelError):
            ClusterConfig(page_size=0)


class TestThreadTable:
    def test_arrival_makes_innermost(self):
        table = ThreadTable(0)
        table.thread_arrived("t")
        assert table.innermost_here("t")
        assert table.get("t").frames == 1

    def test_departure_sets_forwarding_pointer(self):
        table = ThreadTable(0)
        table.thread_arrived("t")
        table.thread_departed("t", to_node=3)
        tcb = table.get("t")
        assert not tcb.innermost
        assert tcb.next_node == 3
        assert tcb.departures == [3]

    def test_return_clears_pointer(self):
        table = ThreadTable(0)
        table.thread_arrived("t")
        table.thread_departed("t", to_node=3)
        table.thread_returned_here("t")
        tcb = table.get("t")
        assert tcb.innermost
        assert tcb.next_node is None

    def test_frame_pop_removes_when_empty(self):
        table = ThreadTable(0)
        table.thread_arrived("t")
        table.thread_arrived("t")
        assert table.get("t").frames == 2
        assert table.frame_popped("t") is not None
        assert table.frame_popped("t") is None
        assert "t" not in table

    def test_purge(self):
        table = ThreadTable(0)
        table.thread_arrived("t")
        assert table.purge("t") is True
        assert table.purge("t") is False

    def test_operations_on_missing_tid_raise(self):
        table = ThreadTable(0)
        with pytest.raises(KernelError):
            table.thread_departed("nope", 1)
        with pytest.raises(KernelError):
            table.frame_popped("nope")

    def test_tids_listing(self):
        table = ThreadTable(0)
        table.thread_arrived("a")
        table.thread_arrived("b")
        assert sorted(table.tids()) == ["a", "b"]


def _rpc_pair():
    sim = Simulator()
    fabric = Fabric(sim)
    engines = {}
    for node in (0, 1):
        engine = RpcEngine(sim, fabric, node)
        engines[node] = engine
        fabric.attach(node, lambda m, e=engine: (
            e.on_request(m) if m.mtype == "rpc.request" else e.on_reply(m)))
    return sim, engines


class TestRpc:
    def test_request_reply_roundtrip(self):
        sim, engines = _rpc_pair()
        engines[1].serve("add", lambda payload, msg: payload["a"] + payload["b"])
        fut = engines[0].request(1, "add", {"a": 2, "b": 3})
        sim.run()
        assert fut.result() == 5

    def test_unknown_service_fails_future(self):
        sim, engines = _rpc_pair()
        fut = engines[0].request(1, "nope")
        sim.run()
        with pytest.raises(RpcError):
            fut.result()

    def test_service_exception_ships_to_caller(self):
        sim, engines = _rpc_pair()

        def boom(payload, msg):
            raise ValueError("remote boom")

        engines[1].serve("boom", boom)
        fut = engines[0].request(1, "boom")
        sim.run()
        with pytest.raises(ValueError, match="remote boom"):
            fut.result()

    def test_async_service_via_future(self):
        sim, engines = _rpc_pair()
        pending = SimFuture(sim)
        engines[1].serve("later", lambda payload, msg: pending)
        fut = engines[0].request(1, "later")
        sim.call_after(1.0, pending.resolve, "eventually")
        sim.run()
        assert fut.result() == "eventually"

    def test_timeout(self):
        sim, engines = _rpc_pair()
        never = SimFuture(sim)
        engines[1].serve("never", lambda payload, msg: never)
        fut = engines[0].request(1, "never", timeout=0.5)
        sim.run(until=2.0)
        with pytest.raises(RpcTimeout):
            fut.result()

    def test_duplicate_service_rejected(self):
        sim, engines = _rpc_pair()
        engines[1].serve("s", lambda p, m: None)
        with pytest.raises(RpcError):
            engines[1].serve("s", lambda p, m: None)

    def test_sized_reply_controls_wire_size(self):
        sim, engines = _rpc_pair()
        fabric_stats = engines[0].fabric.stats
        engines[1].serve("page", lambda p, m: SizedReply("data", 4096))
        fut = engines[0].request(1, "page")
        sim.run()
        assert fut.result() == "data"
        assert fabric_stats.bytes_sent == 64 + 4096

    def test_two_outstanding_requests_correlate(self):
        sim, engines = _rpc_pair()
        engines[1].serve("id", lambda payload, msg: payload)
        f1 = engines[0].request(1, "id", "first")
        f2 = engines[0].request(1, "id", "second")
        sim.run()
        assert (f1.result(), f2.result()) == ("first", "second")


class TestTimers:
    def test_one_shot_fires_once(self):
        sim = Simulator()
        timers = TimerService(sim, 0)
        fired = []
        timers.set(1.0, fired.append, "x")
        sim.run(until=5.0)
        assert fired == ["x"]

    def test_recurring_fires_repeatedly(self):
        sim = Simulator()
        timers = TimerService(sim, 0)
        fired = []
        timer_id = timers.set(1.0, lambda: fired.append(sim.now),
                              recurring=True)
        sim.run(until=3.5)
        timers.cancel(timer_id)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel_before_fire(self):
        sim = Simulator()
        timers = TimerService(sim, 0)
        fired = []
        timer_id = timers.set(1.0, fired.append, "x")
        assert timers.cancel(timer_id) is True
        assert timers.cancel(timer_id) is False
        sim.run()
        assert fired == []

    def test_cancel_all(self):
        sim = Simulator()
        timers = TimerService(sim, 0)
        for _ in range(3):
            timers.set(1.0, lambda: None)
        assert timers.cancel_all() == 3
        assert timers.active() == []

    def test_rejects_nonpositive_interval(self):
        sim = Simulator()
        timers = TimerService(sim, 0)
        with pytest.raises(KernelError):
            timers.set(0.0, lambda: None)


class TestNameService:
    def test_register_lookup(self):
        names = NameService()
        names.register("lockmgr", "cap")
        assert names.lookup("lockmgr") == "cap"

    def test_duplicate_register_rejected(self):
        names = NameService()
        names.register("x", 1)
        with pytest.raises(NameServiceError):
            names.register("x", 2)

    def test_rebind_replaces(self):
        names = NameService()
        names.register("x", 1)
        names.rebind("x", 2)
        assert names.lookup("x") == 2

    def test_lookup_missing_raises(self):
        names = NameService()
        with pytest.raises(NameServiceError):
            names.lookup("ghost")
        assert names.lookup_or_none("ghost") is None

    def test_unregister(self):
        names = NameService()
        names.register("x", 1)
        names.unregister("x")
        with pytest.raises(NameServiceError):
            names.unregister("x")

    def test_event_registration(self):
        names = NameService()
        names.register_event("COMMIT", registrar="app")
        assert names.event_exists("COMMIT")
        assert not names.is_system_event("COMMIT")
        with pytest.raises(EventNameInUseError):
            names.register_event("COMMIT")

    def test_unknown_event_raises(self):
        names = NameService()
        with pytest.raises(UnknownEventError):
            names.require_event("GHOST")
