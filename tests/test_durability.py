"""End-to-end durability: journal-before-send, outbox redelivery across
node crashes, the persistent object-handler registry, checkpointed
recovery, and exactly-once execution of durable posts."""

import pytest

from repro import ClusterConfig, DistObject, on_event
from repro.errors import KernelError
from repro.store import MSG_STORE_ACK
from tests.conftest import Sleeper, make_cluster


class Counter(DistObject):
    """Persistent object counting handler runs — the exactly-once probe."""

    def __init__(self):
        super().__init__()
        self.seen = []

    @on_event("PING")
    def on_ping(self, ctx, block):
        self.seen.append(block.user_data)
        yield ctx.compute(1e-5)
        return "pong"

    def on_tick(self, ctx, block):
        """Undecorated: only reachable via dynamic registration."""
        self.seen.append(("tick", block.user_data))
        yield ctx.compute(1e-5)


def durable_cluster(**overrides):
    overrides.setdefault("n_nodes", 4)
    overrides.setdefault("durable_delivery", True)
    overrides.setdefault("post_deadline", 0.5)
    return make_cluster(**overrides)


class TestConfig:
    def test_durable_implies_reliable(self):
        config = ClusterConfig(durable_delivery=True)
        assert config.reliable_delivery

    def test_knob_validation(self):
        with pytest.raises(KernelError):
            ClusterConfig(checkpoint_interval=0)
        with pytest.raises(KernelError):
            ClusterConfig(outbox_flush_interval=0.0)
        with pytest.raises(KernelError):
            ClusterConfig(replay_cost=-1.0)


class TestFaultFreePath:
    def test_durable_object_post_resolves_and_journals(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=2)
        fut = cluster.raise_event("PING", counter, from_node=0)
        cluster.run()
        assert fut.result() == 1
        obj = cluster.get_object(counter)
        assert obj.seen == [None]
        store0 = cluster.kernels[0].store
        assert len(store0.outbox) == 0
        assert store0.outbox.delivered == 1
        # origin journal: the post and its ack; receiver: the applied mark
        assert [r.rtype for r in cluster.store.journal(0)] == ["post", "ack"]
        assert [r.rtype for r in cluster.store.journal(2)] == ["applied"]

    def test_store_ack_message_flows(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        cluster.raise_event("PING", counter, from_node=0)
        cluster.run()
        assert cluster.fabric.stats.count(MSG_STORE_ACK) == 1

    def test_journal_overhead_bounded_by_messages(self):
        """Fault-free: appends stay within 2x the messages sent."""
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=3)
        for i in range(20):
            cluster.raise_event("PING", counter, from_node=0, user_data=i)
        cluster.run()
        stats = cluster.durability_stats()
        sent = cluster.fabric.stats.sent
        assert stats["appends"] <= 2 * sent
        assert stats["pending"] == 0

    def test_local_durable_post_needs_no_messages(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=0)
        cluster.raise_event("PING", counter, from_node=0)
        cluster.run()
        assert cluster.fabric.stats.sent == 0
        assert len(cluster.kernels[0].store.outbox) == 0

    def test_disabled_store_is_inert(self):
        cluster = make_cluster(n_nodes=3)
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        cluster.raise_event("PING", counter, from_node=0)
        cluster.run()
        assert cluster.durability_stats()["appends"] == 0
        assert cluster.durability_stats()["recorded"] == 0


class TestRedelivery:
    def test_post_to_crashed_home_parks_then_redelivers(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=2)
        cluster.run()
        cluster.crash_node(2)
        fut = cluster.raise_event("PING", counter, from_node=0,
                                  user_data="survives")
        cluster.run(until=cluster.now + 1.0)
        obj = cluster.get_object(counter)
        assert obj.seen == []  # parked, not lost, not yet delivered
        store0 = cluster.kernels[0].store
        assert len(store0.outbox) == 1
        cluster.recover_node(2)
        cluster.run(until=cluster.now + 2.0)
        assert obj.seen == ["survives"]
        assert len(store0.outbox) == 0
        assert store0.outbox.redelivered >= 1
        assert fut.result() == 1

    def test_posts_queued_at_crash_instant_redeliver(self):
        """The PR 2 gap: posts sitting in the master handler queue when
        the node dies were converted to notices; durable delivery must
        re-deliver them after recovery, exactly once."""
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        cluster.run()
        n = 5
        for i in range(n):
            cluster.raise_event("PING", counter, from_node=0, user_data=i)
        # Let the posts arrive and enqueue, then kill the node before the
        # master thread drains the queue.
        link = cluster.config.link_latency
        cluster.run(until=cluster.now + link * 1.5)
        cluster.crash_node(1)
        cluster.run(until=cluster.now + 0.5)
        obj = cluster.get_object(counter)
        executed_before = list(obj.seen)
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 3.0)
        assert sorted(obj.seen) == list(range(n))  # all n, exactly once
        assert len(obj.seen) == n
        assert executed_before != obj.seen or executed_before == obj.seen
        assert len(cluster.kernels[0].store.outbox) == 0

    def test_origin_crash_redispatches_own_pending_on_recovery(self):
        """The origin journals before sending; if it crashes before the
        ack arrives, its own recovery replays and re-dispatches."""
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=2)
        cluster.run()
        cluster.raise_event("PING", counter, from_node=0, user_data="x")
        # crash the origin before the ack can arrive (needs 2 link hops)
        cluster.crash_node(0)
        cluster.run(until=cluster.now + 0.5)
        cluster.recover_node(0)
        cluster.run(until=cluster.now + 2.0)
        obj = cluster.get_object(counter)
        # executed exactly once: either the first send landed (applied-set
        # suppressed the redelivery) or the redelivery carried it
        assert obj.seen == ["x"]
        assert len(cluster.kernels[0].store.outbox) == 0


class TestExactlyOnce:
    def test_duplicate_redelivery_is_suppressed_by_applied_set(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        cluster.raise_event("PING", counter, from_node=0, user_data="once")
        cluster.run()
        obj = cluster.get_object(counter)
        assert obj.seen == ["once"]
        # force a manual redelivery of an already-delivered entry: the
        # receiver's journaled applied set must suppress re-execution
        store1 = cluster.kernels[1].store
        applied = set(store1.applied)
        assert len(applied) == 1
        entry_id = next(iter(applied))
        assert not store1.accept_post(entry_id)
        cluster.run()
        assert obj.seen == ["once"]


class TestThreadPostsResolveByNotice:
    def test_durable_thread_post_to_dead_thread_is_noticed(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        sleeper = cluster.create_object(Sleeper, node=2)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=2)
        cluster.run(until=0.5)
        cluster.crash_node(2)
        cluster.run(until=cluster.now + 0.2)
        cluster.raise_event("PING", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 2.0)
        store0 = cluster.kernels[0].store
        assert len(store0.outbox) == 0
        assert store0.outbox.noticed == 1
        assert store0.outbox.delivered == 0

    def test_durable_thread_post_delivered_acks(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        seen = []
        from tests.test_crash_recovery import Sink
        sink = cluster.create_object(Sink, node=1)
        thread = cluster.spawn(sink, "absorb", seen, 3.0, at=1)
        cluster.run(until=0.5)
        cluster.raise_event("PING", thread.tid, from_node=0, user_data="hi")
        cluster.run(until=cluster.now + 1.0)
        assert seen == ["hi"]
        store0 = cluster.kernels[0].store
        assert len(store0.outbox) == 0
        assert store0.outbox.delivered == 1


class TestPersistentRegistry:
    def test_dynamic_registration_routes_posts(self):
        cluster = durable_cluster()
        cluster.register_event("TICK")
        counter = cluster.create_object(Counter, node=1)
        cluster.kernels[1].objects.register_object_handler(
            counter.oid, "TICK", "on_tick")
        cluster.raise_event("TICK", counter, from_node=0, user_data=7)
        cluster.run()
        assert cluster.get_object(counter).seen == [("tick", 7)]

    def test_registration_survives_crash_recover(self):
        cluster = durable_cluster()
        cluster.register_event("TICK")
        counter = cluster.create_object(Counter, node=1)
        cluster.kernels[1].objects.register_object_handler(
            counter.oid, "TICK", "on_tick")
        cluster.crash_node(1)
        assert len(cluster.kernels[1].objects.handlers) == 0  # volatile
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 1.0)
        assert cluster.kernels[1].objects.handlers.lookup(
            counter.oid, "TICK") == "on_tick"
        cluster.raise_event("TICK", counter, from_node=0, user_data=9)
        cluster.run()
        assert cluster.get_object(counter).seen == [("tick", 9)]

    def test_registration_lost_without_durability(self):
        cluster = make_cluster(n_nodes=3, reliable_delivery=True)
        cluster.register_event("TICK")
        counter = cluster.create_object(Counter, node=1)
        cluster.kernels[1].objects.register_object_handler(
            counter.oid, "TICK", "on_tick")
        cluster.crash_node(1)
        cluster.recover_node(1)
        assert cluster.kernels[1].objects.handlers.lookup(
            counter.oid, "TICK") is None

    def test_unregistration_is_journaled_too(self):
        cluster = durable_cluster()
        cluster.register_event("TICK")
        counter = cluster.create_object(Counter, node=1)
        manager = cluster.kernels[1].objects
        manager.register_object_handler(counter.oid, "TICK", "on_tick")
        assert manager.unregister_object_handler(counter.oid, "TICK")
        cluster.crash_node(1)
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 1.0)
        assert manager.handlers.lookup(counter.oid, "TICK") is None

    def test_bad_registration_rejected(self):
        from repro.errors import NoSuchEntryError
        cluster = durable_cluster()
        cluster.register_event("TICK")
        counter = cluster.create_object(Counter, node=1)
        with pytest.raises(NoSuchEntryError):
            cluster.kernels[1].objects.register_object_handler(
                counter.oid, "TICK", "no_such_method")


class TestCheckpointing:
    def test_auto_checkpoint_bounds_journal_length(self):
        cluster = durable_cluster(checkpoint_interval=8)
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        for i in range(40):
            cluster.raise_event("PING", counter, from_node=0, user_data=i)
        cluster.run()
        journal = cluster.store.journal(0)
        # 40 posts -> 80 payload records at the origin, but retention is
        # bounded by the interval, not the history
        assert len(journal) <= 8 + 2  # interval + checkpoint + slack
        assert journal.truncations >= 1
        assert cluster.kernels[0].store.checkpoints.taken >= 1

    def test_recovery_replays_tail_only(self):
        cluster = durable_cluster(checkpoint_interval=8)
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        for i in range(40):
            cluster.raise_event("PING", counter, from_node=0, user_data=i)
        cluster.run()
        cluster.crash_node(0)
        cluster.recover_node(0)
        cluster.run(until=cluster.now + 1.0)
        log = cluster.kernels[0].store.recovery_log
        assert len(log) == 1
        assert log[0]["replayed"] <= 8 + 1

    def test_object_restored_from_checkpoint_after_media_loss(self):
        cluster = durable_cluster()
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        for i in range(3):
            cluster.raise_event("PING", counter, from_node=0, user_data=i)
        cluster.run()
        obj = cluster.get_object(counter)
        assert sorted(obj.seen) == [0, 1, 2]
        kernel = cluster.kernels[1]
        kernel.store.checkpoint()
        # simulate losing the in-memory instance entirely
        kernel.objects._objects.pop(counter.oid)
        cluster.object_directory.pop(counter.oid)
        cluster.crash_node(1)
        cluster.recover_node(1)
        cluster.run(until=cluster.now + 1.0)
        restored = kernel.objects.get(counter.oid)
        assert restored is not None and restored is not obj
        assert sorted(restored.seen) == [0, 1, 2]
        assert restored.home == 1

    def test_manual_checkpoint_truncates(self):
        cluster = durable_cluster(checkpoint_interval=None)
        cluster.register_event("PING")
        counter = cluster.create_object(Counter, node=1)
        for i in range(10):
            cluster.raise_event("PING", counter, from_node=0, user_data=i)
        cluster.run()
        journal = cluster.store.journal(0)
        before = len(journal)
        assert before == 20  # post + ack per post, never truncated
        dropped = cluster.kernels[0].store.checkpoint()
        assert dropped == 20
        assert len(journal) == 1  # just the checkpoint record
