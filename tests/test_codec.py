"""Tests for the compact wire codec (:mod:`repro.transport.codec`).

The codec's contract is strict: every :class:`~repro.net.message.Message`
field survives the hop verbatim (ids included — decoding must not tick
the receiver's module counters, or same-seed sharded digests would
drift), common payload shapes round-trip through the shape registry,
anything else falls back to pickle per value, and frames from a
different codec revision fail loudly with :class:`CodecError`.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import NetworkError
from repro.events.block import EventBlock, FrameInfo, ThreadSnapshot
from repro.net.message import Message
from repro.objects.capability import Capability
from repro.threads.ids import GroupId, ThreadId
from repro.transport.codec import (
    MTYPE_REGISTRY,
    VERSION,
    CodecError,
    decode_batch,
    decode_message,
    encode_batch,
    encode_message,
)


def roundtrip(message: Message) -> Message:
    return decode_message(encode_message(message))


def assert_messages_equal(a: Message, b: Message) -> None:
    for field in ("src", "dst", "mtype", "payload", "size", "msg_id",
                  "rel", "ack"):
        assert getattr(a, field) == getattr(b, field), field


class WiderId(ThreadId):
    """ThreadId subclass: must take the pickle fallback, not the shape."""


class PayloadOnlyThisTest:
    """A payload type the shape registry does not know (pickle path)."""

    def __init__(self, value):
        self.value = value

    def __eq__(self, other):
        return (type(other) is PayloadOnlyThisTest
                and other.value == self.value)


# ----------------------------------------------------------------------
# envelope fields
# ----------------------------------------------------------------------

class TestEnvelope:
    def test_every_field_roundtrips(self):
        message = Message(src=3, dst=11, mtype="event.post-object",
                          payload={"a": 1}, size=96)
        out = roundtrip(message)
        assert_messages_equal(message, out)
        assert out is not message

    def test_rel_and_ack_roundtrip(self):
        message = Message(src=0, dst=1, mtype="rel.ack", payload=None,
                          rel=(7, 1234), ack=5678)
        out = roundtrip(message)
        assert out.rel == (7, 1234)
        assert out.ack == 5678

    def test_negative_src_and_string_dst(self):
        # the fabric uses src=-1 replies and string pseudo-destinations
        message = Message(src=-1, dst="group:42", mtype="event.resume")
        out = roundtrip(message)
        assert out.src == -1
        assert out.dst == "group:42"

    def test_registry_mtype_travels_as_tag(self):
        for mtype in MTYPE_REGISTRY:
            out = roundtrip(Message(src=0, dst=1, mtype=mtype))
            assert out.mtype == mtype

    def test_unregistered_mtype_travels_inline(self):
        message = Message(src=0, dst=1, mtype="custom.not-in-registry")
        # the inline form costs the string bytes the registry saves
        assert len(encode_message(message)) > len(encode_message(
            Message(src=0, dst=1, mtype="event.post-object",
                    msg_id=message.msg_id)))
        assert roundtrip(message).mtype == "custom.not-in-registry"

    def test_msg_id_verbatim_and_counter_not_ticked(self):
        message = Message(src=0, dst=1, mtype="event.resume")
        assert roundtrip(message).msg_id == message.msg_id
        # decoding ten envelopes must not advance the module counter:
        # the next locally-minted id is exactly one past the last one
        for _ in range(10):
            roundtrip(message)
        follower = Message(src=0, dst=1, mtype="event.resume")
        assert follower.msg_id == message.msg_id + 1


# ----------------------------------------------------------------------
# payload values
# ----------------------------------------------------------------------

class TestValues:
    @pytest.mark.parametrize("payload", [
        None, True, False, 0, -1, 1 << 80, -(1 << 80), "", "événement",
        b"\x00\xffbytes", (1, "two", None), [3.5, [1, 2]],
        {"k": (True, {"nested": b"v"})}, 0.0, -0.0, 1e-308, math.pi,
    ])
    def test_scalars_and_containers(self, payload):
        out = roundtrip(Message(src=0, dst=1, mtype="x", payload=payload))
        assert out.payload == payload
        assert type(out.payload) is type(payload)

    def test_floats_bit_exact(self):
        for value in (-0.0, 1e-308, math.pi, 1.0 + 2**-52):
            out = roundtrip(Message(src=0, dst=1, mtype="x",
                                    payload=value))
            assert math.copysign(1.0, out.payload) == \
                math.copysign(1.0, value)
            assert out.payload.hex() == value.hex()

    def test_pickle_fallback_for_unknown_type(self):
        payload = PayloadOnlyThisTest({"deep": [1, 2]})
        out = roundtrip(Message(src=0, dst=1, mtype="x", payload=payload))
        assert out.payload == payload


# ----------------------------------------------------------------------
# shape registry
# ----------------------------------------------------------------------

class TestShapes:
    def test_capability(self):
        cap = Capability(oid=17, home=3, transport="rpc",
                         cls_name="ScaleSink")
        out = roundtrip(Message(src=0, dst=1, mtype="x", payload=cap))
        assert out.payload == cap

    def test_thread_and_group_ids(self):
        payload = (ThreadId(root=2, seq=9), GroupId(root=0, seq=4))
        out = roundtrip(Message(src=0, dst=1, mtype="x", payload=payload))
        assert out.payload == payload
        assert type(out.payload[0]) is ThreadId
        assert type(out.payload[1]) is GroupId

    def test_thread_snapshot_with_frames(self):
        snapshot = ThreadSnapshot(
            tid=ThreadId(root=1, seq=2), state="suspended", node=5,
            frames=(FrameInfo(oid=3, entry="on_scale", node=5, steps=7),))
        out = roundtrip(Message(src=0, dst=1, mtype="x",
                                payload=snapshot))
        assert out.payload == snapshot
        assert out.payload.program_counter == (3, "on_scale", 7)

    def test_event_block_all_slots_and_counter_not_ticked(self):
        block = EventBlock("SCALE", raiser_tid=ThreadId(root=0, seq=1),
                           raiser_node=2, target=4, synchronous=True,
                           user_data=(2, 7), raised_at=1.25,
                           delivered_at=1.5)
        block.durable_id = (2, 99)
        block.degraded = True
        out = roundtrip(Message(src=0, dst=1, mtype="x", payload=block))
        for slot in EventBlock.__slots__:
            assert getattr(out.payload, slot) == getattr(block, slot), slot
        # decoding must not mint a new block id on the receiver
        follower = EventBlock("SCALE")
        assert follower.block_id == block.block_id + 1

    def test_shape_subclass_takes_pickle_fallback(self):
        payload = WiderId(root=1, seq=2)
        out = roundtrip(Message(src=0, dst=1, mtype="x", payload=payload))
        assert type(out.payload) is WiderId
        assert out.payload == payload


# ----------------------------------------------------------------------
# failure modes
# ----------------------------------------------------------------------

class TestErrors:
    def test_codec_error_is_a_network_error(self):
        assert issubclass(CodecError, NetworkError)

    def test_unknown_version_rejected(self):
        frame = bytearray(encode_message(Message(src=0, dst=1, mtype="x")))
        frame[0] = VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_message(bytes(frame))
        with pytest.raises(CodecError, match="version"):
            decode_batch(bytes(frame))

    def test_empty_frame_rejected(self):
        with pytest.raises(CodecError):
            decode_message(b"")
        with pytest.raises(CodecError):
            decode_batch(b"")

    def test_unknown_mtype_tag_rejected(self):
        # a frame from a future registry revision: flags 0, src 0,
        # dst 0, then an mtype tag past this build's registry
        frame = bytes([VERSION, 0, 0, 0, len(MTYPE_REGISTRY) + 1])
        with pytest.raises(CodecError, match="mtype tag"):
            decode_message(frame)

    def test_unknown_value_tag_rejected(self):
        frame = bytes([VERSION, 0, 0, 2, 1, 200])  # payload tag 200
        with pytest.raises(CodecError, match="value tag"):
            decode_message(frame)

    def test_truncated_frame_rejected(self):
        frame = encode_message(Message(
            src=0, dst=1, mtype="event.post-object",
            payload={"k": "a long enough payload string"}))
        for cut in (2, len(frame) // 2, len(frame) - 1):
            with pytest.raises(CodecError):
                decode_message(frame[:cut])


# ----------------------------------------------------------------------
# window batches
# ----------------------------------------------------------------------

class TestBatch:
    def test_roundtrip_preserves_order_and_fields(self):
        records = [
            (0.005, 1, Message(src=0, dst=5, mtype="event.post-object",
                               payload=(0, 1)), 5),
            (0.005, 2, Message(src=1, dst="group:9", mtype="rel.ack",
                               rel=(1, 3), ack=44), 7),
            (0.010, 3, Message(src=2, dst=0, mtype="custom.mtype",
                               payload=Capability(oid=1, home=0,
                                                  transport="rpc")), 0),
        ]
        out = decode_batch(encode_batch(records))
        assert len(out) == len(records)
        for (at_a, seq_a, msg_a, dst_a), (at_b, seq_b, msg_b, dst_b) in \
                zip(records, out):
            assert at_a.hex() == at_b.hex()
            assert seq_a == seq_b and dst_a == dst_b
            assert_messages_equal(msg_a, msg_b)

    def test_empty_batch_roundtrips(self):
        assert decode_batch(encode_batch([])) == []

    def test_truncated_batch_rejected(self):
        blob = encode_batch(
            [(0.5, 1, Message(src=0, dst=1, mtype="x"), 1)])
        with pytest.raises(CodecError):
            decode_batch(blob[:len(blob) - 2])
