"""Determinism: identical configurations produce identical executions.

The whole experiment suite rests on this — message counts and virtual
latencies must be exact, not averages over nondeterministic runs.
"""

from repro import Cluster, ClusterConfig
from repro.apps import run_pager_workload
from repro.apps.search import run_search
from repro.bench.workloads import bouncing_thread, ctrl_c_app
from repro.apps.termination import press_ctrl_c


def _ctrl_c_fingerprint(seed):
    rig = ctrl_c_app(workers=4, n_nodes=6)
    cluster = rig.cluster
    press_ctrl_c(cluster, rig.root.tid)
    cluster.run()
    return (cluster.now, cluster.fabric.stats.snapshot(),
            cluster.tracer.signature())


def _search_fingerprint(seed, notify=True):
    cluster = Cluster(ClusterConfig(n_nodes=4, seed=seed, trace_net=False))
    result = run_search(cluster, workers=4, space=200, seed=seed,
                        notify=notify)
    return (result.best, result.explored, result.pruned,
            result.virtual_time, cluster.fabric.stats.snapshot())


def _cached_locator_fingerprint(seed):
    """Hint-cache maintenance, chasing and fallback under a migrating
    target — the cached locator must not break bit-identical replay."""
    cluster = Cluster(ClusterConfig(n_nodes=6, seed=seed, locator="cached"))
    thread = bouncing_thread(cluster, dwell=0.05, nodes=(1, 2))
    for _ in range(8):
        cluster.raise_event("INTERRUPT", thread.tid, from_node=0)
        cluster.run(until=cluster.now + 0.03)
    cluster.raise_event("TERMINATE", thread.tid, from_node=3)
    cluster.run()
    hint_stats = {node: kernel.location_hints.stats()
                  for node, kernel in cluster.kernels.items()}
    return (cluster.now, cluster.fabric.stats.snapshot(),
            cluster.tracer.signature(), hint_stats,
            cluster.events.delivery_latency_summary())


def _pager_fingerprint(seed):
    cluster = Cluster(ClusterConfig(n_nodes=4, seed=seed, trace_net=False))
    result = run_pager_workload(cluster, faulters=3, keys_per_thread=2,
                                writes=2, private_copies=True)
    return (result.vm_faults, result.page_transfers, result.merged_pages,
            result.virtual_time, cluster.fabric.stats.snapshot())


class TestDeterminism:
    def test_ctrl_c_run_is_bit_identical(self):
        assert _ctrl_c_fingerprint(0) == _ctrl_c_fingerprint(0)

    def test_search_run_is_bit_identical(self):
        assert _search_fingerprint(7) == _search_fingerprint(7)

    def test_pager_run_is_bit_identical(self):
        assert _pager_fingerprint(3) == _pager_fingerprint(3)

    def test_cached_locator_run_is_bit_identical(self):
        assert _cached_locator_fingerprint(11) == _cached_locator_fingerprint(11)

    def test_different_search_seeds_differ(self):
        # the candidate space is seeded: different seeds, different work
        a = _search_fingerprint(1)
        b = _search_fingerprint(2)
        assert a != b

    def test_trace_signature_stable_across_runs(self):
        def run():
            cluster = Cluster(ClusterConfig(n_nodes=3, seed=5))
            from tests.conftest import Echo
            cap = cluster.create_object(Echo, node=2)
            cluster.spawn(cap, "echo", 42, at=0)
            cluster.run()
            return cluster.tracer.signature()

        assert run() == run()

    def test_experiment_tables_reproducible(self):
        from repro.bench.experiments import run_e4

        first = run_e4(lock_counts=(1, 4)).rows
        second = run_e4(lock_counts=(1, 4)).rows
        assert first == second
