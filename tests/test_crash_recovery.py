"""Node crash/recovery: fail-stop semantics, §7.2 dead-target notices,
RPC fail-fast, and rejoining the cluster with empty volatile state."""

import pytest

from repro import Decision, DistObject, entry
from repro.errors import DeadThreadError, KernelError, NodeCrashedError
from tests.conftest import Echo, Sleeper, make_cluster


class Sink(DistObject):
    """Thread body with a user-event handler, for locator-path tests."""

    @entry
    def absorb(self, ctx, seen, hold):
        def on_ping(hctx, block):
            seen.append(block.user_data)
            yield hctx.compute(1e-6)
            return Decision.RESUME

        yield ctx.attach_handler("PING", on_ping)
        yield ctx.sleep(hold)
        return "done"


def reliable_cluster(**overrides):
    overrides.setdefault("reliable_delivery", True)
    overrides.setdefault("post_deadline", 0.5)
    return make_cluster(n_nodes=4, **overrides)


class TestCrashSemantics:
    def test_crash_kills_resident_threads(self):
        cluster = make_cluster(n_nodes=4)
        sleeper = cluster.create_object(Sleeper, node=2)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=2)
        cluster.run(until=0.5)
        cluster.crash_node(2)
        cluster.run(until=1.0)
        assert thread.completion.failed
        with pytest.raises(NodeCrashedError):
            thread.completion.result()
        assert thread.tid not in cluster.live_threads

    def test_crash_kills_thread_visiting_the_node(self):
        """A thread rooted elsewhere dies too if a frame is on the node."""
        cluster = make_cluster(n_nodes=4)
        far = cluster.create_object(Sleeper, node=3)
        thread = cluster.spawn(far, "hold", 1000.0, at=0)
        cluster.run(until=0.5)
        assert thread.current_node == 3
        cluster.crash_node(3)
        cluster.run(until=1.0)
        with pytest.raises(NodeCrashedError):
            thread.completion.result()

    def test_crash_is_idempotent_and_unknown_node_rejected(self):
        cluster = make_cluster(n_nodes=2)
        cluster.crash_node(1)
        cluster.crash_node(1)  # no-op
        cluster.recover_node(1)
        cluster.recover_node(1)  # no-op
        with pytest.raises(KernelError):
            cluster.crash_node(7)
        with pytest.raises(KernelError):
            cluster.recover_node(7)

    def test_crashed_node_black_holes_messages(self):
        """Sends to a crashed node are silently dropped (fail-stop), not
        errors — only never-existing nodes are unknown."""
        cluster = make_cluster(n_nodes=3)
        cluster.crash_node(2)
        from repro.net.message import Message
        cluster.fabric.send(Message(src=0, dst=2, mtype="x"))  # no raise
        cluster.run()
        from repro.errors import UnknownNodeError
        with pytest.raises(UnknownNodeError):
            cluster.fabric.send(Message(src=0, dst=9, mtype="x"))


class TestRpcFailFast:
    def test_outstanding_calls_fail_on_target_crash(self):
        cluster = make_cluster(n_nodes=3)
        fut = cluster.kernels[0].rpc.request(2, "anything")
        cluster.crash_node(2)
        assert fut.failed
        with pytest.raises(NodeCrashedError):
            fut.result()
        assert cluster.kernels[0].rpc.failed_by_crash == 1
        assert not cluster.kernels[0].rpc.outstanding

    def test_crashing_caller_fails_its_own_calls(self):
        cluster = make_cluster(n_nodes=3)
        fut = cluster.kernels[1].rpc.request(2, "anything")
        cluster.crash_node(1)
        assert fut.failed
        with pytest.raises(NodeCrashedError):
            fut.result()

    def test_default_timeout_and_retries_from_config(self):
        cluster = make_cluster(n_nodes=2, rpc_default_timeout=0.1,
                               rpc_retries=2, reliable_delivery=False)
        from repro.errors import RpcTimeout
        cluster.fabric.faults.partition({0}, {1})
        fut = cluster.kernels[0].rpc.request(1, "ping")
        cluster.run(until=2.0)
        with pytest.raises(RpcTimeout):
            fut.result()
        assert cluster.kernels[0].rpc.retries_sent == 2

    def test_retry_succeeds_after_heal(self):
        cluster = make_cluster(n_nodes=2, rpc_default_timeout=0.2,
                               rpc_retries=3)
        cluster.kernels[1].rpc.serve("ping", lambda payload, msg: "pong")
        plan = cluster.fabric.faults
        plan.partition({0}, {1})
        fut = cluster.kernels[0].rpc.request(1, "ping")
        cluster.run(until=0.3)
        assert not fut.done
        plan.heal()
        cluster.run(until=3.0)
        assert fut.result() == "pong"


class TestDeadTargetNotices:
    def test_async_raise_to_crashed_node_is_noticed(self):
        cluster = reliable_cluster()
        cluster.register_event("PING")
        seen, noticed = [], []
        cluster.events.on_undeliverable = \
            lambda block, target: noticed.append(block.event)
        sink = cluster.create_object(Sink, node=2)
        thread = cluster.spawn(sink, "absorb", seen, 1000.0, at=2)
        cluster.run(until=0.5)
        cluster.crash_node(2)
        t0 = cluster.now
        cluster.raise_event("PING", thread.tid, from_node=0, user_data=1)
        cluster.run(until=t0 + cluster.config.post_deadline + 0.1)
        assert "PING" in noticed
        assert cluster.events.dead_targets >= 1
        assert seen == []

    def test_sync_raise_to_crashed_node_fails_bounded(self):
        cluster = reliable_cluster()
        cluster.register_event("PING")
        seen = []
        sink = cluster.create_object(Sink, node=3)
        thread = cluster.spawn(sink, "absorb", seen, 1000.0, at=3)
        cluster.run(until=0.5)
        cluster.crash_node(3)
        fut = cluster.raise_and_wait("PING", thread.tid, from_node=1)
        cluster.run(until=cluster.now + 1.0)
        assert fut.failed
        with pytest.raises(DeadThreadError):
            fut.result()

    def test_cached_hint_at_crashed_node(self):
        """A hot location hint pointing at a crashed node must not hang
        the raiser: the channel gives up, the hint is invalidated, the
        fallback runs and the raiser gets the §7.2 notice."""
        cluster = reliable_cluster(locator="cached")
        cluster.register_event("PING")
        seen, noticed = [], []
        cluster.events.on_undeliverable = \
            lambda block, target: noticed.append(block.user_data)
        sink = cluster.create_object(Sink, node=2)
        thread = cluster.spawn(sink, "absorb", seen, 1000.0, at=2)
        cluster.run(until=0.5)
        # warm node 0's hint cache with a successful post
        cluster.raise_event("PING", thread.tid, from_node=0, user_data="warm")
        cluster.run(until=cluster.now + 0.5)
        assert seen == ["warm"]
        assert cluster.kernels[0].location_hints.peek(thread.tid) == 2
        cluster.crash_node(2)
        cluster.raise_event("PING", thread.tid, from_node=0, user_data="lost")
        cluster.run()
        assert "lost" in noticed
        assert seen == ["warm"]
        # the stale hint was invalidated on the failed direct send
        assert cluster.kernels[0].location_hints.peek(thread.tid) is None

    def test_pending_notices_drain_on_crash(self):
        """Posts queued at a thread that dies with its node surface as
        dead-target notices, not silence."""
        cluster = reliable_cluster()
        cluster.register_event("PING")
        seen, noticed = [], []
        cluster.events.on_undeliverable = \
            lambda block, target: noticed.append(block.user_data)
        sink = cluster.create_object(Sink, node=1)
        thread = cluster.spawn(sink, "absorb", seen, 1000.0, at=1)
        cluster.run(until=0.5)
        for i in range(3):
            cluster.raise_event("PING", thread.tid, from_node=0, user_data=i)
        # crash before virtual time lets the posts deliver
        cluster.crash_node(1)
        cluster.run(until=cluster.now + 1.0)
        assert seen == []
        assert set(noticed) == {0, 1, 2}


class TestRecovery:
    def test_recovered_node_serves_again(self):
        cluster = make_cluster(n_nodes=3)
        echo = cluster.create_object(Echo, node=1)
        cluster.crash_node(1)
        cluster.run(until=0.1)
        cluster.recover_node(1)
        assert not cluster.kernels[1].crashed
        thread = cluster.spawn(echo, "echo", "back", at=0)
        cluster.run()
        assert thread.completion.result() == "back"

    def test_volatile_state_empty_after_recovery(self):
        cluster = make_cluster(n_nodes=3, locator="cached")
        sleeper = cluster.create_object(Sleeper, node=1)
        thread = cluster.spawn(sleeper, "hold", 1000.0, at=1)
        cluster.run(until=0.5)
        kernel = cluster.kernels[1]
        assert thread.tid in kernel.thread_table
        cluster.crash_node(1)
        cluster.recover_node(1)
        assert thread.tid not in kernel.thread_table

    def test_crash_leaves_all_multicast_groups(self):
        """A crashing node's group memberships are kernel state: crash
        must leave every group, keeping the registry's join/leave
        accounting balanced and dead nodes out of member sets."""
        cluster = reliable_cluster(locator="multicast")
        groups = cluster.fabric.multicast_groups
        sleeper = cluster.create_object(Sleeper, node=2)
        cluster.spawn(sleeper, "hold", 1000.0, at=2)
        cluster.run(until=0.5)
        assert groups.groups_of(2), "running thread must join its group"
        cluster.crash_node(2)
        assert groups.groups_of(2) == frozenset()
        live = sum(len(groups.members(g))
                   for g in {g for n in range(4) for g in groups.groups_of(n)})
        assert groups.joins - groups.leaves == live

    def test_multicast_locator_across_crash_recover(self):
        """Regression: with the multicast locator, a post after a crash
        must not be swallowed by the dead node's stale membership — the
        raiser gets a notice while the node is down, and a respawned
        target is reachable again after recovery."""
        cluster = reliable_cluster(locator="multicast")
        cluster.register_event("PING")
        seen, noticed = [], []
        cluster.events.on_undeliverable = \
            lambda block, target: noticed.append(block.user_data)
        sink = cluster.create_object(Sink, node=2)
        thread = cluster.spawn(sink, "absorb", seen, 1000.0, at=2)
        cluster.run(until=0.5)
        cluster.raise_event("PING", thread.tid, from_node=0, user_data="up")
        cluster.run(until=cluster.now + 0.5)
        assert seen == ["up"]
        cluster.crash_node(2)
        cluster.raise_event("PING", thread.tid, from_node=0, user_data="down")
        cluster.run(until=cluster.now + 1.0)
        assert "down" in noticed and seen == ["up"]
        cluster.recover_node(2)
        respawned = cluster.spawn(sink, "absorb", seen, 1000.0, at=2)
        cluster.run(until=cluster.now + 0.5)
        cluster.raise_event("PING", respawned.tid, from_node=0,
                            user_data="back")
        cluster.run(until=cluster.now + 0.5)
        assert seen == ["up", "back"]

    def test_events_flow_after_crash_recover_cycle(self):
        cluster = reliable_cluster()
        cluster.register_event("PING")
        seen = []
        cluster.crash_node(2)
        cluster.run(until=0.1)
        cluster.recover_node(2)
        sink = cluster.create_object(Sink, node=2)
        thread = cluster.spawn(sink, "absorb", seen, 1000.0, at=2)
        cluster.run(until=cluster.now + 0.5)
        cluster.raise_event("PING", thread.tid, from_node=0, user_data="hi")
        cluster.run(until=cluster.now + 0.5)
        assert seen == ["hi"]
