"""Tests for thread-attribute timers (§6.2) and exceptions-as-events (§6.1)."""

import pytest

from repro import Decision, DistObject, entry, on_event
from repro.errors import ThreadTerminated
from tests.conftest import make_cluster


class TestThreadTimers:
    def test_recurring_timer_delivers_repeatedly(self):
        cluster = make_cluster(n_nodes=2)
        ticks = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def on_timer(hctx, block):
                    ticks.append(hctx.now)
                    yield hctx.compute(0)

                yield ctx.attach_handler("TIMER", on_timer)
                yield ctx.set_timer(0.1, recurring=True)
                yield ctx.sleep(0.55)
                return len(ticks)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run()
        assert thread.completion.result() == 5

    def test_one_shot_timer_fires_once(self):
        cluster = make_cluster(n_nodes=2)
        ticks = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def on_timer(hctx, block):
                    ticks.append(block.user_data)
                    yield hctx.compute(0)

                yield ctx.attach_handler("TIMER", on_timer)
                yield ctx.set_timer(0.1, recurring=False, user_data="once")
                yield ctx.sleep(1.0)
                return ticks

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run()
        assert thread.completion.result() == ["once"]

    def test_timer_reregistered_across_migration(self):
        """§6.2: the timer follows the thread from node to node."""
        cluster = make_cluster(n_nodes=3)
        tick_nodes = []

        class App(DistObject):
            @entry
            def go(self, ctx, far):
                def on_timer(hctx, block):
                    tick_nodes.append(hctx.node)
                    yield hctx.compute(0)

                yield ctx.attach_handler("TIMER", on_timer)
                yield ctx.set_timer(0.1, recurring=True)
                yield ctx.sleep(0.25)          # ticks at node 0
                yield ctx.invoke(far, "remote_hold")  # ticks at node 2
                yield ctx.sleep(0.25)          # ticks at node 0 again
                return tick_nodes

            @entry
            def remote_hold(self, ctx):
                yield ctx.sleep(0.25)
                return None

        app = cluster.create_object(App, node=0)
        far = cluster.create_object(App, node=2)
        thread = cluster.spawn(app, "go", far, at=0)
        cluster.run()
        nodes = thread.completion.result()
        assert 0 in nodes and 2 in nodes
        # order: first at 0, then at 2, then at 0 again
        assert nodes[0] == 0
        assert nodes[-1] == 0

    def test_cancel_timer_stops_delivery(self):
        cluster = make_cluster(n_nodes=2)
        ticks = []

        class App(DistObject):
            @entry
            def go(self, ctx):
                def on_timer(hctx, block):
                    ticks.append(1)
                    yield hctx.compute(0)

                yield ctx.attach_handler("TIMER", on_timer)
                spec_id = yield ctx.set_timer(0.1, recurring=True)
                yield ctx.sleep(0.25)
                removed = yield ctx.cancel_timer(spec_id)
                yield ctx.sleep(0.5)
                return removed, len(ticks)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run()
        removed, count = thread.completion.result()
        assert removed is True
        assert count == 2

    def test_timers_disarmed_at_termination(self):
        cluster = make_cluster(n_nodes=2)

        class App(DistObject):
            @entry
            def go(self, ctx):
                yield ctx.set_timer(0.1, recurring=True)
                yield ctx.sleep(100.0)

        app = cluster.create_object(App, node=0)
        thread = cluster.spawn(app, "go", at=0)
        cluster.run(until=0.05)
        cluster.invoker.terminate_thread(thread)
        cluster.run()
        assert cluster.kernels[0].timers.active() == []


class TestExceptionsAsEvents:
    def test_thread_handler_repairs_exception(self):
        cluster = make_cluster(n_nodes=2)

        class App(DistObject):
            @entry
            def guarded(self, ctx, cap):
                def repair(hctx, block):
                    yield hctx.compute(0)
                    return (Decision.RESUME, "repaired")

                yield ctx.attach_handler("DIV_ZERO", repair)
                result = yield ctx.invoke(cap, "divide", 1, 0)
                return result

            @entry
            def divide(self, ctx, a, b):
                yield ctx.compute(0)
                return a / b

        app = cluster.create_object(App, node=0)
        remote = cluster.create_object(App, node=1)
        thread = cluster.spawn(app, "guarded", remote, at=0)
        cluster.run()
        assert thread.completion.result() == "repaired"

    def test_object_handler_sees_exception_first(self):
        """§6.1: the object's handler gets called, then may pass on."""
        cluster = make_cluster(n_nodes=2)
        order = []

        class App2(DistObject):
            @entry
            def crash(self, ctx):
                yield ctx.compute(0)
                return 1 / 0
            @on_event("DIV_ZERO")
            def obj_level(self, ctx, block):
                order.append("object-handler")
                yield ctx.compute(0)
                return Decision.PROPAGATE

            @entry
            def guarded(self, ctx, inner):
                def thread_level(hctx, block):
                    order.append("thread-handler")
                    yield hctx.compute(0)
                    return (Decision.RESUME, -1)

                yield ctx.attach_handler("DIV_ZERO", thread_level)
                result = yield ctx.invoke(inner, "crash")
                return result

        inner = cluster.create_object(App2, node=1)
        outer = cluster.create_object(App2, node=0)
        thread = cluster.spawn(outer, "guarded", inner, at=0)
        cluster.run()
        assert thread.completion.result() == -1
        assert order == ["object-handler", "thread-handler"]

    def test_object_handler_can_repair_alone(self):
        cluster = make_cluster(n_nodes=2)

        class Safe(DistObject):
            @on_event("DIV_ZERO")
            def fix(self, ctx, block):
                yield ctx.compute(0)
                return (Decision.RESUME, 0)

            @entry
            def divide(self, ctx, a, b):
                yield ctx.compute(0)
                return a / b

        cap = cluster.create_object(Safe, node=1)
        thread = cluster.spawn(cap, "divide", 5, 0, at=0)
        cluster.run()
        assert thread.completion.result() == 0

    def test_handler_may_terminate_faulting_thread(self):
        cluster = make_cluster(n_nodes=2)

        class Strict(DistObject):
            @on_event("DIV_ZERO")
            def punish(self, ctx, block):
                yield ctx.compute(0)
                return Decision.TERMINATE

            @entry
            def divide(self, ctx, a, b):
                yield ctx.compute(0)
                return a / b

        cap = cluster.create_object(Strict, node=1)
        thread = cluster.spawn(cap, "divide", 5, 0, at=0)
        cluster.run()
        assert thread.state == "terminated"
        with pytest.raises(ThreadTerminated):
            thread.completion.result()

    def test_unhandled_exception_propagates_normally(self):
        cluster = make_cluster(n_nodes=2)

        class Bare(DistObject):
            @entry
            def divide(self, ctx, a, b):
                yield ctx.compute(0)
                return a / b

        cap = cluster.create_object(Bare, node=1)
        thread = cluster.spawn(cap, "divide", 5, 0, at=0)
        cluster.run()
        assert thread.state == "failed"
        with pytest.raises(ZeroDivisionError):
            thread.completion.result()

    def test_snapshot_shows_faulting_frame(self):
        cluster = make_cluster(n_nodes=2)
        snapshots = []

        class App(DistObject):
            @entry
            def guarded(self, ctx):
                def capture(hctx, block):
                    snapshots.append(block.snapshot)
                    yield hctx.compute(0)
                    return (Decision.RESUME, None)

                yield ctx.attach_handler("DIV_ZERO", capture)
                yield ctx.compute(0)
                return 1 / 0

        cap = cluster.create_object(App, node=1)
        thread = cluster.spawn(cap, "guarded", at=0)
        cluster.run()
        assert thread.completion.result() is None
        (snapshot,) = snapshots
        assert snapshot.program_counter is not None
        oid, entry_name, steps = snapshot.program_counter
        assert entry_name == "guarded"
        assert snapshot.node == 1
