"""Integration tests for the §6 applications: distributed ^C, monitoring,
scoped exception handling, and the pager workload."""

import pytest

from repro import DistObject, entry, on_event
from repro.apps import (
    install_ctrl_c,
    invoke_guarded,
    press_ctrl_c,
    repairing,
    run_pager_workload,
    termination_report,
)
from repro.locks import LockManager
from repro.monitor import MonitorServer, install_monitor
from tests.conftest import make_cluster


class CleanupAware(DistObject):
    """An object that records ABORT notifications (application cleanup)."""

    def __init__(self):
        super().__init__()
        self.aborted_tids = []

    @on_event("ABORT")
    def on_abort(self, ctx, block):
        yield ctx.compute(1e-5)
        data = block.user_data or {}
        self.aborted_tids.append(str(data.get("tid")))


class CtrlCApp(CleanupAware):
    """The §6.3 application shape: a root that fans out workers."""

    @entry
    def main(self, ctx, worker_cap, mgr_cap, n_workers):
        yield from install_ctrl_c(ctx)
        for i in range(n_workers):
            yield ctx.invoke_async(worker_cap, "work", mgr_cap,
                                   f"lock-{i}", claimable=False)
        yield ctx.sleep(10_000.0)
        return "never"

    @entry
    def work(self, ctx, mgr_cap, lock_name):
        if mgr_cap is not None:
            yield ctx.invoke(mgr_cap, "acquire", lock_name)
        yield ctx.sleep(10_000.0)
        return "never"


class TestDistributedCtrlC:
    def _run(self, n_workers=3, n_nodes=4):
        cluster = make_cluster(n_nodes=n_nodes)
        mgr = cluster.create_object(LockManager, node=n_nodes - 1)
        root_obj = cluster.create_object(CtrlCApp, node=0)
        worker_obj = cluster.create_object(CtrlCApp, node=1)
        gid = cluster.new_group()
        root = cluster.spawn(root_obj, "main", worker_obj, mgr,
                             n_workers, at=0, group=gid)
        cluster.run(until=1.0)
        return cluster, mgr, root_obj, worker_obj, gid, root

    def test_all_threads_terminated_no_orphans(self):
        cluster, mgr, root_obj, worker_obj, gid, root = self._run()
        assert len(cluster.groups.members(gid)) == 4
        press_ctrl_c(cluster, root.tid)
        cluster.run()
        report = termination_report(cluster, gid,
                                    caps=[root_obj, worker_obj])
        assert report["surviving_members"] == []
        assert report["orphans"] == []
        assert root.state == "terminated"

    def test_objects_notified_via_abort(self):
        cluster, mgr, root_obj, worker_obj, gid, root = self._run()
        press_ctrl_c(cluster, root.tid)
        cluster.run()
        # the worker object hosted the workers; the root object hosted
        # the root thread: both observed ABORT during unwinding
        assert cluster.get_object(worker_obj).aborted_tids
        assert cluster.get_object(root_obj).aborted_tids

    def test_locks_released_across_the_group(self):
        cluster, mgr, root_obj, worker_obj, gid, root = self._run()
        manager = cluster.get_object(mgr)
        assert sum(1 for lk in manager._locks.values()
                   if lk.holder is not None) == 3
        press_ctrl_c(cluster, root.tid)
        cluster.run()
        assert all(lk.holder is None
                   for lk in manager._locks.values())
        assert manager.cleanup_releases == 3

    def test_scales_with_worker_count(self):
        cluster, mgr, root_obj, worker_obj, gid, root = self._run(
            n_workers=10, n_nodes=6)
        press_ctrl_c(cluster, root.tid)
        cluster.run()
        report = termination_report(cluster, gid)
        assert report["surviving_members"] == []
        assert report["orphans"] == []

    def test_ctrl_c_on_already_finished_app(self):
        cluster = make_cluster(n_nodes=2)

        class Quick(DistObject):
            @entry
            def main(self, ctx):
                yield from install_ctrl_c(ctx)
                return "fast"

        obj = cluster.create_object(Quick, node=0)
        gid = cluster.new_group()
        root = cluster.spawn(obj, "main", at=0, group=gid)
        cluster.run()
        assert root.completion.result() == "fast"
        press_ctrl_c(cluster, root.tid)  # dead target: no crash
        cluster.run()
        assert cluster.events.dead_targets >= 1


class TestMonitoring:
    def test_samples_follow_thread_across_nodes(self):
        cluster = make_cluster(n_nodes=3)
        server = cluster.create_object(MonitorServer, node=2)

        class Roamer(DistObject):
            @entry
            def start(self, ctx, far, srv):
                yield from install_monitor(ctx, srv, period=0.05)
                yield ctx.compute(0.2)          # sampled here
                yield ctx.invoke(far, "churn")  # sampled there
                yield ctx.compute(0.2)          # and here again
                return "done"

            @entry
            def churn(self, ctx):
                yield ctx.compute(0.2)
                return None

        home = cluster.create_object(Roamer, node=0)
        far = cluster.create_object(Roamer, node=1)
        thread = cluster.spawn(home, "start", far, server, at=0)
        cluster.run()
        assert thread.completion.result() == "done"
        samples = cluster.get_object(server).samples[str(thread.tid)]
        assert {s.node for s in samples} == {0, 1}
        assert {s.entry for s in samples} == {"start", "churn"}

    def test_liveliness_and_progress_queries(self):
        cluster = make_cluster(n_nodes=2)
        server = cluster.create_object(MonitorServer, node=1)

        class Busy(DistObject):
            @entry
            def spin(self, ctx, srv):
                yield from install_monitor(ctx, srv, period=0.05)
                for _ in range(10):
                    yield ctx.compute(0.05)
                return "done"

        busy = cluster.create_object(Busy, node=0)
        thread = cluster.spawn(busy, "spin", server, at=0)
        cluster.run()
        probe = cluster.spawn(server, "progressing", thread.tid, at=0)
        cluster.run()
        assert probe.completion.result() is True
        live = cluster.spawn(server, "liveliness", at=0)
        cluster.run()
        report = live.completion.result()
        assert str(thread.tid) in report

    def test_monitoring_stops_with_thread(self):
        cluster = make_cluster(n_nodes=2)
        server = cluster.create_object(MonitorServer, node=1)

        class Short(DistObject):
            @entry
            def brief(self, ctx, srv):
                yield from install_monitor(ctx, srv, period=0.05)
                yield ctx.compute(0.12)
                return "done"

        obj = cluster.create_object(Short, node=0)
        thread = cluster.spawn(obj, "brief", server, at=0)
        cluster.run()
        count = len(cluster.get_object(server).samples.get(
            str(thread.tid), []))
        cluster.run(until=cluster.now + 1.0)
        after = len(cluster.get_object(server).samples.get(
            str(thread.tid), []))
        assert after == count  # no ghost samples after completion


class TestScopedExceptionHandling:
    def test_invoke_guarded_repairs(self):
        cluster = make_cluster(n_nodes=2)

        class Math(DistObject):
            @entry
            def divide(self, ctx, a, b):
                yield ctx.compute(0)
                return a / b

            @entry
            def guarded_divide(self, ctx, cap, a, b):
                result = yield from invoke_guarded(
                    ctx, cap, "divide", a, b,
                    handlers={"DIV_ZERO": repairing(float("inf"))})
                return result

        math = cluster.create_object(Math, node=1)
        caller = cluster.create_object(Math, node=0)
        thread = cluster.spawn(caller, "guarded_divide", math, 1, 0, at=0)
        cluster.run()
        assert thread.completion.result() == float("inf")

    def test_handler_scope_ends_with_invocation(self):
        cluster = make_cluster(n_nodes=2)

        class Math(DistObject):
            @entry
            def divide(self, ctx, a, b):
                yield ctx.compute(0)
                return a / b

            @entry
            def two_phase(self, ctx, cap):
                ok = yield from invoke_guarded(
                    ctx, cap, "divide", 1, 0,
                    handlers={"DIV_ZERO": repairing(-1)})
                # handler detached now: the second fault is unguarded
                bad = yield ctx.invoke(cap, "divide", 1, 0)
                return ok, bad

        math = cluster.create_object(Math, node=1)
        caller = cluster.create_object(Math, node=0)
        thread = cluster.spawn(caller, "two_phase", math, at=0)
        cluster.run()
        assert thread.state == "failed"
        with pytest.raises(ZeroDivisionError):
            thread.completion.result()


class TestPagerApp:
    def test_workload_all_faults_served(self):
        cluster = make_cluster(n_nodes=4)
        result = run_pager_workload(cluster, faulters=4,
                                    keys_per_thread=2, writes=2)
        assert result.faults_served >= 1
        assert result.vm_faults == result.faults_served
        assert all(value is not None for value in result.per_thread)

    def test_private_copy_mode_merges(self):
        cluster = make_cluster(n_nodes=4)
        result = run_pager_workload(cluster, faulters=4,
                                    keys_per_thread=2, writes=2,
                                    private_copies=True)
        assert result.merged_pages >= 1
        assert result.faults_served >= 4  # one per faulting node at least

    def test_shared_mode_faults_once_per_page(self):
        cluster = make_cluster(n_nodes=3)
        result = run_pager_workload(cluster, faulters=3,
                                    keys_per_thread=1, writes=1)
        segment_pages = 8
        assert result.vm_faults <= segment_pages
