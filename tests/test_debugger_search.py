"""Tests for the debugger (buddy handlers, §4.1) and cooperative search
(partial-result notification, §1) applications."""

import pytest

from repro import DistObject, entry
from repro.apps import (
    DebuggerServer,
    attach_debugger,
    breakpoint_here,
    run_search,
)
from repro.apps.search import generate_candidates
from tests.conftest import make_cluster


class Debuggee(DistObject):
    @entry
    def run(self, ctx, debugger_cap, tags):
        yield attach_debugger(debugger_cap)
        visited = []
        for tag in tags:
            yield ctx.compute(1e-3)
            visited.append(tag)
            yield breakpoint_here(ctx, tag)
        return visited

    @entry
    def run_remote(self, ctx, debugger_cap, far_cap):
        yield attach_debugger(debugger_cap)
        result = yield ctx.invoke(far_cap, "deep_break")
        return result

    @entry
    def deep_break(self, ctx):
        yield breakpoint_here(ctx, "deep")
        yield ctx.compute(1e-3)
        return "deep-done"


@pytest.fixture()
def debug_rig():
    cluster = make_cluster(n_nodes=3)
    cluster.register_event("BREAKPOINT")
    debugger = cluster.create_object(DebuggerServer, node=2)
    app = cluster.create_object(Debuggee, node=1)
    return cluster, debugger, app


def _command(cluster, debugger, entry_name, *args):
    probe = cluster.spawn(debugger, entry_name, *args, at=0)
    cluster.run(until=cluster.now + 1.0)
    return probe.completion.result()


class TestDebugger:
    def test_thread_freezes_at_breakpoint(self, debug_rig):
        cluster, debugger, app = debug_rig
        thread = cluster.spawn(app, "run", debugger, ["bp1"], at=0)
        cluster.run(until=1.0)
        assert thread.alive
        assert thread.suspended_by_event
        assert _command(cluster, debugger, "list_stopped") == \
            [str(thread.tid)]

    def test_inspect_shows_frames_and_tag(self, debug_rig):
        cluster, debugger, app = debug_rig
        thread = cluster.spawn(app, "run", debugger, ["bp1"], at=0)
        cluster.run(until=1.0)
        info = _command(cluster, debugger, "inspect", thread.tid)
        assert info["tag"] == "bp1"
        assert info["node"] == 1  # app's home, where the thread executes
        assert any(entry_name == "run" for _, entry_name, _
                   in info["frames"])

    def test_resume_continues_to_next_breakpoint(self, debug_rig):
        cluster, debugger, app = debug_rig
        thread = cluster.spawn(app, "run", debugger, ["bp1", "bp2"], at=0)
        cluster.run(until=1.0)
        assert _command(cluster, debugger, "resume_thread", thread.tid)
        cluster.run(until=cluster.now + 1.0)
        info = _command(cluster, debugger, "inspect", thread.tid)
        assert info["tag"] == "bp2"
        assert _command(cluster, debugger, "resume_thread", thread.tid)
        cluster.run()
        assert thread.completion.result() == ["bp1", "bp2"]

    def test_kill_terminates_stopped_thread(self, debug_rig):
        cluster, debugger, app = debug_rig
        thread = cluster.spawn(app, "run", debugger, ["bp1"], at=0)
        cluster.run(until=1.0)
        assert _command(cluster, debugger, "kill_thread", thread.tid)
        cluster.run()
        assert thread.state == "terminated"

    def test_disabled_tag_does_not_stop(self, debug_rig):
        cluster, debugger, app = debug_rig
        _command(cluster, debugger, "disable_tag", "noisy")
        thread = cluster.spawn(app, "run", debugger, ["noisy"], at=0)
        cluster.run()
        assert thread.completion.result() == ["noisy"]
        server = cluster.get_object(debugger)
        assert len(server.history) == 1  # hit recorded, not stopped

    def test_breakpoint_deep_in_remote_object(self, debug_rig):
        cluster, debugger, app = debug_rig
        far = cluster.create_object(Debuggee, node=0)
        thread = cluster.spawn(app, "run_remote", debugger, far, at=0)
        cluster.run(until=1.0)
        info = _command(cluster, debugger, "inspect", thread.tid)
        assert info["tag"] == "deep"
        assert info["node"] == 0  # stopped in the far object
        assert len(info["frames"]) == 2  # run_remote -> deep_break
        _command(cluster, debugger, "resume_thread", thread.tid)
        cluster.run()
        assert thread.completion.result() == "deep-done"

    def test_resume_unknown_thread(self, debug_rig):
        cluster, debugger, app = debug_rig
        from repro.threads.ids import ThreadId

        assert _command(cluster, debugger, "resume_thread",
                        ThreadId(0, 999)) is False

    def test_two_threads_stopped_independently(self, debug_rig):
        cluster, debugger, app = debug_rig
        t1 = cluster.spawn(app, "run", debugger, ["a"], at=0)
        t2 = cluster.spawn(app, "run", debugger, ["b"], at=2)
        cluster.run(until=1.0)
        stopped = _command(cluster, debugger, "list_stopped")
        assert len(stopped) == 2
        _command(cluster, debugger, "resume_thread", t1.tid)
        cluster.run(until=cluster.now + 1.0)
        assert t1.completion.result() == ["a"]
        assert t2.alive and t2.suspended_by_event
        _command(cluster, debugger, "resume_thread", t2.tid)
        cluster.run()
        assert t2.completion.result() == ["b"]


class TestSearchWorkload:
    def test_candidates_reproducible(self):
        assert generate_candidates(3, 50) == generate_candidates(3, 50)
        assert generate_candidates(3, 50) != generate_candidates(4, 50)

    def test_lower_bounds_sound(self):
        for candidate in generate_candidates(9, 100):
            assert candidate.lower_bound <= candidate.value

    def test_search_finds_the_optimum(self):
        cluster = make_cluster(n_nodes=4, trace_net=False)
        result = run_search(cluster, workers=4, space=200, seed=11)
        expected = min(c.value for c in generate_candidates(11, 200))
        assert result.best == expected

    def test_notification_reduces_exploration(self):
        explored = {}
        for notify in (True, False):
            cluster = make_cluster(n_nodes=4, trace_net=False)
            result = run_search(cluster, workers=4, space=300, seed=7,
                                notify=notify)
            explored[notify] = result.explored
            # correctness does not depend on notification
            assert result.best == pytest.approx(1.5)
        assert explored[True] < explored[False]

    def test_single_worker_degenerate(self):
        cluster = make_cluster(n_nodes=2, trace_net=False)
        result = run_search(cluster, workers=1, space=100, seed=5)
        assert result.explored + result.pruned == 100

    def test_explored_plus_pruned_covers_space(self):
        cluster = make_cluster(n_nodes=4, trace_net=False)
        result = run_search(cluster, workers=4, space=200, seed=7)
        assert result.explored + result.pruned == 200

    def test_events_raised_only_when_notifying(self):
        cluster = make_cluster(n_nodes=4, trace_net=False)
        result = run_search(cluster, workers=4, space=200, seed=7,
                            notify=False)
        assert result.events_raised == 0
