"""Concurrent execution by multiple threads inside one passive object.

"Objects may allow concurrent execution by multiple threads. The threads
active inside an object may all belong to the same application or to
different applications." (§2) — these tests exercise exactly that
sharing, including the §3.1 sharability requirement that events posted to
one thread leave unrelated threads in the same object untouched.
"""

from repro import Decision, DistObject, entry
from tests.conftest import make_cluster


class SharedService(DistObject):
    """A passive object entered concurrently by many threads."""

    def __init__(self):
        super().__init__()
        self.inside = 0
        self.high_water = 0
        self.completed = []

    @entry
    def serve(self, ctx, label, duration):
        self.inside += 1
        self.high_water = max(self.high_water, self.inside)
        yield ctx.sleep(duration)
        self.inside -= 1
        self.completed.append(label)
        return label


class TestConcurrentEntry:
    def test_threads_overlap_inside_one_object(self):
        cluster = make_cluster(n_nodes=4)
        service = cluster.create_object(SharedService, node=1)
        threads = [cluster.spawn(service, "serve", f"t{i}", 0.5, at=i)
                   for i in range(4)]
        cluster.run()
        obj = cluster.get_object(service)
        assert obj.high_water == 4          # genuinely concurrent
        assert obj.inside == 0
        assert sorted(obj.completed) == ["t0", "t1", "t2", "t3"]
        assert all(t.completion.result().startswith("t") for t in threads)

    def test_event_to_one_thread_leaves_others_untouched(self):
        """§3.1 sharability: 'Events posted to a thread should not affect
        the behavior of the unrelated threads inside the object'."""
        cluster = make_cluster(n_nodes=3)
        service = cluster.create_object(SharedService, node=1)
        app1 = cluster.spawn(service, "serve", "app1", 5.0, at=0)
        app2 = cluster.spawn(service, "serve", "app2", 5.0, at=2)
        cluster.run(until=1.0)
        cluster.raise_event("TERMINATE", app1.tid, from_node=0)
        cluster.run()
        assert app1.state == "terminated"
        assert app2.completion.result() == "app2"
        obj = cluster.get_object(service)
        assert obj.completed == ["app2"]

    def test_termination_mid_entry_keeps_object_usable(self):
        cluster = make_cluster(n_nodes=2)
        service = cluster.create_object(SharedService, node=1)
        doomed = cluster.spawn(service, "serve", "doomed", 100.0, at=0)
        cluster.run(until=0.5)
        cluster.invoker.terminate_thread(doomed)
        cluster.run()
        # note: the unwind never decremented `inside` (no finally in the
        # entry) — the object is still invocable though
        fresh = cluster.spawn(service, "serve", "fresh", 0.1, at=0)
        cluster.run()
        assert fresh.completion.result() == "fresh"

    def test_same_thread_reenters_object_recursively(self):
        cluster = make_cluster(n_nodes=2)

        class Recursive(DistObject):
            @entry
            def fact(self, ctx, n):
                if n <= 1:
                    yield ctx.compute(0)
                    return 1
                rest = yield ctx.invoke(self.cap, "fact", n - 1)
                return n * rest

        obj = cluster.create_object(Recursive, node=1)
        thread = cluster.spawn(obj, "fact", 6, at=0)
        cluster.run()
        assert thread.completion.result() == 720

    def test_per_thread_state_isolated_via_attributes(self):
        """Two applications' threads in one object keep per-thread state
        in their attributes, not in the shared object."""
        cluster = make_cluster(n_nodes=3)
        cluster.register_event("NUDGE")

        class Stateful(DistObject):
            @entry
            def work(self, ctx, label):
                memory = ctx.attributes.per_thread_memory
                memory["count"] = 0

                def on_nudge(hctx, block):
                    hctx.attributes.per_thread_memory["count"] += 1
                    yield hctx.compute(0)
                    return Decision.RESUME

                yield ctx.attach_handler("NUDGE", on_nudge)
                yield ctx.sleep(2.0)
                return (label, memory["count"])

        obj = cluster.create_object(Stateful, node=1)
        t1 = cluster.spawn(obj, "work", "one", at=0)
        t2 = cluster.spawn(obj, "work", "two", at=2)
        cluster.run(until=0.5)
        for _ in range(3):
            cluster.raise_event("NUDGE", t1.tid, from_node=0)
            cluster.run(until=cluster.now + 0.1)
        cluster.raise_event("NUDGE", t2.tid, from_node=0)
        cluster.run()
        assert t1.completion.result() == ("one", 3)
        assert t2.completion.result() == ("two", 1)

    def test_mixed_waiters_and_events_in_object(self):
        """Threads blocked inside an object receive group events there."""
        cluster = make_cluster(n_nodes=4)
        service = cluster.create_object(SharedService, node=1)
        gid = cluster.new_group()
        members = [cluster.spawn(service, "serve", f"m{i}", 100.0, at=i,
                                 group=gid) for i in range(3)]
        outsider = cluster.spawn(service, "serve", "out", 100.0, at=3)
        cluster.run(until=0.5)
        cluster.raise_event("TERMINATE", gid, from_node=0)
        cluster.run(until=10.0)
        assert all(m.state == "terminated" for m in members)
        assert outsider.alive  # not in the group, untouched
