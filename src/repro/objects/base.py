"""Base class and decorators for distributed objects.

Objects in the DO/CT model are passive and persistent (§2): they have no
threads of their own, may be entered concurrently by threads of unrelated
applications, and exist independently of any thread. An object class
declares:

* **entry points** — generator methods decorated with :func:`entry`;
  these are the operations threads invoke (``entry void work(int id)`` in
  the paper's template);
* **object-based handlers** — generator methods decorated with
  :func:`on_event`, registered when the object is created and active
  while the object persists (``handler void my_delete_handler(event_block&)
  on { DELETE }`` in §5.1); they are *private*: not invocable as entries;
* **handler entries** — generator methods decorated with
  :func:`handler_entry`, attachable as thread-based handlers in
  attaching-object or buddy context (§4.1, §5.2).

All three kinds take ``(self, ctx, ...)`` where ``ctx`` is the
:class:`~repro.threads.context.Ctx` of the executing thread, and are
written as generators yielding syscalls.
"""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable

from repro.errors import NoSuchEntryError, ObjectError
from repro.objects.capability import Capability

_ENTRY_FLAG = "_repro_entry"
_ENTRY_RAISES_FLAG = "_repro_entry_raises"
_HANDLER_EVENTS_FLAG = "_repro_handler_events"
_HANDLER_ENTRY_FLAG = "_repro_handler_entry"


def entry(fn: Callable | None = None, *, raises: tuple[str, ...] = ()
          ) -> Callable:
    """Mark a generator method as an invocable entry point.

    ``raises`` declares the exceptional events the entry may raise —
    §5.2: "Entry point signatures in the object interface specifies
    exceptional events raised by the entry points." Callers can inspect
    the declaration (:meth:`DistObject.entry_raises`) to attach handlers
    at the point of invocation.

    Usable bare (``@entry``) or parameterised
    (``@entry(raises=("DIV_ZERO",))``).
    """

    def mark(func: Callable) -> Callable:
        if not inspect.isgeneratorfunction(func):
            raise ObjectError(
                f"entry point {func.__name__!r} must be a generator "
                f"function (write it with `yield`)")
        setattr(func, _ENTRY_FLAG, True)
        setattr(func, _ENTRY_RAISES_FLAG, tuple(raises))
        return func

    if fn is not None:
        return mark(fn)
    return mark


def on_event(*events: str) -> Callable[[Callable], Callable]:
    """Mark a generator method as this object's handler for ``events``."""
    if not events:
        raise ObjectError("on_event requires at least one event name")

    def mark(fn: Callable) -> Callable:
        if not inspect.isgeneratorfunction(fn):
            raise ObjectError(
                f"object handler {fn.__name__!r} must be a generator function")
        existing = list(getattr(fn, _HANDLER_EVENTS_FLAG, ()))
        setattr(fn, _HANDLER_EVENTS_FLAG, tuple(existing + list(events)))
        return fn

    return mark


def handler_entry(fn: Callable) -> Callable:
    """Mark a generator method as attachable for thread-based handling."""
    if not inspect.isgeneratorfunction(fn):
        raise ObjectError(
            f"handler entry {fn.__name__!r} must be a generator function")
    setattr(fn, _HANDLER_ENTRY_FLAG, True)
    return fn


_oids = itertools.count(1)


class DistObject:
    """Base class for all distributed objects.

    Subclasses declare state in ``__init__`` (plain attributes for RPC
    transport; DSM-transport objects access state via ``ctx.read`` /
    ``ctx.write`` so page faults and coherence apply). Instances are
    created through :meth:`repro.kernel.boot.Cluster.create_object` or
    the ``ctx.create`` syscall, never placed on a node by hand.
    """

    #: populated by __init_subclass__
    _entries: dict[str, str]
    _object_handlers: dict[str, str]
    _handler_entries: frozenset[str]

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        entries: dict[str, str] = {}
        entry_raises: dict[str, tuple[str, ...]] = {}
        object_handlers: dict[str, str] = {}
        handler_entries: set[str] = set()
        for klass in reversed(cls.__mro__):
            for name, member in vars(klass).items():
                if getattr(member, _ENTRY_FLAG, False):
                    entries[name] = name
                    entry_raises[name] = getattr(member, _ENTRY_RAISES_FLAG,
                                                 ())
                for event in getattr(member, _HANDLER_EVENTS_FLAG, ()):
                    object_handlers[event] = name
                if getattr(member, _HANDLER_ENTRY_FLAG, False):
                    handler_entries.add(name)
        cls._entries = entries
        cls._entry_raises = entry_raises
        cls._object_handlers = object_handlers
        cls._handler_entries = frozenset(handler_entries)

    def __init__(self) -> None:
        self._oid = next(_oids)
        self._home: int | None = None
        self._transport: str | None = None
        #: DSM-backed field storage (only used under the DSM transport).
        self._dsm_segment: Any = None

    # ------------------------------------------------------------------
    # identity / placement (set once by the object manager)
    # ------------------------------------------------------------------

    @property
    def oid(self) -> int:
        return self._oid

    @property
    def home(self) -> int:
        if self._home is None:
            raise ObjectError(f"object {type(self).__name__} is not placed yet")
        return self._home

    @property
    def transport(self) -> str:
        if self._transport is None:
            raise ObjectError(f"object {type(self).__name__} is not placed yet")
        return self._transport

    @property
    def cap(self) -> Capability:
        """This object's capability."""
        return Capability(oid=self._oid, home=self.home,
                          transport=self.transport,
                          cls_name=type(self).__name__)

    def _place(self, home: int, transport: str) -> None:
        if self._home is not None:
            raise ObjectError(f"object {self._oid} already placed on "
                              f"node {self._home}")
        self._home = home
        self._transport = transport

    # ------------------------------------------------------------------
    # interface lookups used by the invocation and event engines
    # ------------------------------------------------------------------

    def entry_fn(self, name: str) -> Callable:
        if name not in self._entries:
            raise NoSuchEntryError(
                f"{type(self).__name__} (oid {self._oid}) has no entry "
                f"point {name!r}; entries: {sorted(self._entries)}")
        return getattr(self, name)

    def handler_fn(self, name: str) -> Callable:
        """A method attachable as a thread-based handler.

        Entries are also accepted — a public entry point may double as a
        handler target — but plain undecorated methods are not.
        """
        if name in self._handler_entries or name in self._entries:
            return getattr(self, name)
        raise NoSuchEntryError(
            f"{type(self).__name__} (oid {self._oid}) has no handler "
            f"entry {name!r}; declare it with @handler_entry")

    def entry_raises(self, name: str) -> tuple[str, ...]:
        """Events the entry's signature declares it may raise (§5.2)."""
        self.entry_fn(name)  # validate the entry exists
        return self._entry_raises.get(name, ())

    def object_handler_fn(self, event: str) -> Callable | None:
        """This object's own handler for ``event``, or None."""
        name = self._object_handlers.get(event)
        return getattr(self, name) if name else None

    def handled_events(self) -> list[str]:
        return sorted(self._object_handlers)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        where = self._home if self._home is not None else "?"
        return f"<{type(self).__name__} oid={self._oid} home={where}>"
