"""Per-thread memory.

"A procedure defined in the per-thread area of the thread. The compiled
procedure traverses with the thread and will be made visible within the
current object in which the thread is executing." (§4.1; see also
[Dasgupta 90])

Per-thread memory is a private area attached to a thread's attributes. It
carries named *procedures* (position-independent handler code in the
paper; plain callables here) and arbitrary user data. Because it travels
with the thread, a CURRENT-context handler can be executed on whatever
node the thread occupies when the event arrives — the delivery engine
looks the procedure up by name at that moment.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import HandlerContextError


class PerThreadMemory:
    """A thread's private memory area: procedures plus scratch data."""

    def __init__(self) -> None:
        self._procedures: dict[str, Callable[..., Any]] = {}
        self._data: dict[str, Any] = {}

    # -- procedures (handler code that travels with the thread) ---------

    def install_procedure(self, name: str, fn: Callable[..., Any]) -> None:
        """Map handler code into the per-thread area under ``name``."""
        if not callable(fn):
            raise HandlerContextError(
                f"per-thread procedure {name!r} must be callable, got {fn!r}")
        self._procedures[name] = fn

    def procedure(self, name: str) -> Callable[..., Any]:
        fn = self._procedures.get(name)
        if fn is None:
            raise HandlerContextError(
                f"per-thread memory has no procedure {name!r}; it must be "
                f"installed before the handler can run")
        return fn

    def has_procedure(self, name: str) -> bool:
        return name in self._procedures

    def procedures(self) -> list[str]:
        return sorted(self._procedures)

    # -- scratch data ----------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        self._data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def setdefault(self, key: str, default: Any) -> Any:
        return self._data.setdefault(key, default)

    def copy(self) -> "PerThreadMemory":
        """Clone for a spawned thread inheriting its parent's attributes."""
        clone = PerThreadMemory()
        clone._procedures = dict(self._procedures)
        clone._data = dict(self._data)
        return clone

    @property
    def nominal_size(self) -> int:
        """Bytes charged when the thread migrates (attribute payload)."""
        return 64 + 32 * len(self._procedures) + 32 * len(self._data)
