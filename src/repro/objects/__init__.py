"""Passive distributed objects: base class, capabilities, invocation."""

from repro.objects.base import DistObject, entry, handler_entry, on_event
from repro.objects.capability import Capability
from repro.objects.perthread import PerThreadMemory

__all__ = [
    "Capability",
    "DistObject",
    "PerThreadMemory",
    "entry",
    "handler_entry",
    "on_event",
]
