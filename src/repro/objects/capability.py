"""Object capabilities.

A capability is a location-transparent reference to a distributed object:
it names the object (oid), remembers the object's home node (where its
state lives and where RPC-transport invocations execute) and the transport
used to invoke it. Capabilities are small, copyable, and safe to pass in
messages and event blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.config import TRANSPORT_NAMES
from repro.errors import ObjectError


@dataclass(frozen=True, order=True)
class Capability:
    """Reference to a distributed object."""

    oid: int
    home: int
    transport: str
    cls_name: str = "?"

    def __post_init__(self) -> None:
        if self.transport not in TRANSPORT_NAMES:
            raise ObjectError(f"unknown transport {self.transport!r}")

    def __str__(self) -> str:
        return f"O{self.oid}@{self.home}/{self.transport}"
