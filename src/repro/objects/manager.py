"""Per-node object manager.

Hosts the objects homed on a node and executes their object-based event
handlers. Section 7 of the paper: "to support posting events to passive
objects, a system thread needs to be employed. To reduce thread-creation
costs, it is preferable to employ a master handler thread on behalf of a
passive object." Both modes are implemented — the configured default is
the master thread; experiment E3 compares them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

import inspect

from repro.errors import (
    HandlerTimeout,
    NoSuchEntryError,
    ObjectError,
    UnknownObjectError,
)
from repro.events.block import EventBlock
from repro.events.handlers import ObjectHandlerRegistry
from repro.kernel.config import (
    OBJ_EVENTS_MASTER,
    TRANSPORT_DSM,
)
from repro.objects.base import DistObject
from repro.objects.capability import Capability
from repro.sim.primitives import Channel, SimFuture
from repro.threads.thread import DThread, KIND_KERNEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.node import Kernel


class ObjectManager:
    """Registry plus object-event executor for one node."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.node_id = kernel.node_id
        self._objects: dict[int, DistObject] = {}
        #: dynamic object-based handler bindings (kernel state: volatile
        #: on crash, journaled and replayed when durable_delivery is on)
        self.handlers = ObjectHandlerRegistry()
        #: routing table for hot ``(oid, event)`` pairs: the resolved
        #: handler callable (or None for default-action events), so the
        #: per-post registry + getattr walk happens once. Pure lookup
        #: memoisation — invalidated whenever the answer could change
        #: (registration changes, destroy, restore, crash).
        self._handler_cache: dict[tuple[int, str], Any] = {}
        self._queue: Channel[Any] = Channel(kernel.sim)
        self._master: DThread | None = None
        #: handler runs in progress right now (0 when idle) — lets the
        #: chaos harness spot a wedged master / one-shot thread
        self.serving = 0
        #: counters reported by experiment E3
        self.events_served = 0
        self.handler_threads_created = 0

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def create(self, cls: type, *args: Any, transport: str | None = None,
               **kwargs: Any) -> Capability:
        """Instantiate ``cls`` on this node and return its capability."""
        if not (isinstance(cls, type) and issubclass(cls, DistObject)):
            raise ObjectError(f"{cls!r} is not a DistObject subclass")
        transport = transport or self.kernel.config.default_transport
        obj = cls(*args, **kwargs)
        if obj._home is not None:
            raise ObjectError(
                f"{cls.__name__}.__init__ must not place the object itself")
        # re-key onto the cluster-local oid space for determinism
        obj._oid = next(self.kernel.cluster.oid_counter)
        obj._place(self.node_id, transport)
        self._objects[obj.oid] = obj
        self.kernel.cluster.object_directory[obj.oid] = obj
        if transport == TRANSPORT_DSM:
            self.kernel.cluster.dsm.register_object(obj)
        self.kernel.tracer.emit("object", "create", oid=obj.oid,
                                cls=cls.__name__, node=self.node_id,
                                transport=transport)
        return obj.cap

    def get(self, oid: int) -> DistObject | None:
        return self._objects.get(oid)

    def require(self, oid: int) -> DistObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownObjectError(
                f"node {self.node_id} hosts no object {oid}")
        return obj

    def _invalidate_routes(self, oid: int) -> None:
        """Drop every routing-table entry for ``oid``."""
        cache = self._handler_cache
        for key in [k for k in cache if k[0] == oid]:
            del cache[key]

    def adopt(self, obj: DistObject) -> None:
        """Reinstall a restored object (recovery replay of a checkpoint
        snapshot after simulated media loss)."""
        # the restored instance is a different object; cached bound
        # methods of the old one must not serve its posts
        self._invalidate_routes(obj.oid)
        self._objects[obj.oid] = obj
        self.kernel.cluster.object_directory[obj.oid] = obj
        self.kernel.tracer.emit("object", "restore", oid=obj.oid,
                                node=self.node_id)

    def destroy(self, oid: int) -> bool:
        """Remove an object from the node (the DELETE default action)."""
        obj = self._objects.pop(oid, None)
        if obj is None:
            return False
        self.kernel.cluster.object_directory.pop(oid, None)
        self.handlers.drop_object(oid)
        self._invalidate_routes(oid)
        self.kernel.tracer.emit("object", "destroy", oid=oid,
                                node=self.node_id)
        return True

    def oids(self) -> list[int]:
        return sorted(self._objects)

    # ------------------------------------------------------------------
    # dynamic object-based handler registry (§5.1, persistent via store)
    # ------------------------------------------------------------------

    def register_object_handler(self, oid: int, event: str,
                                fn_name: str) -> None:
        """Bind ``event`` on the hosted object ``oid`` to its generator
        method ``fn_name``; journaled when durable_delivery is on."""
        obj = self.require(oid)
        fn = getattr(obj, fn_name, None)
        if fn is None or not inspect.isgeneratorfunction(fn):
            raise NoSuchEntryError(
                f"{type(obj).__name__} (oid {oid}) has no generator "
                f"method {fn_name!r} to register for {event!r}")
        self.kernel.cluster.names.require_event(event)
        self.handlers.register(oid, event, fn_name)
        self._handler_cache.pop((oid, event), None)
        if self.kernel.config.durable_delivery:
            self.kernel.store.journal_registration(oid, event, fn_name)
        self.kernel.tracer.emit("event", "register-object-handler",
                                oid=oid, event=event, node=self.node_id)

    def unregister_object_handler(self, oid: int, event: str) -> bool:
        removed = self.handlers.unregister(oid, event)
        self._handler_cache.pop((oid, event), None)
        if removed and self.kernel.config.durable_delivery:
            self.kernel.store.journal_unregistration(oid, event)
        return removed

    def object_handler_fn(self, obj: DistObject, event: str):
        """The object's handler for ``event``: a dynamic registration
        wins over the class-declared ``@on_event`` one.

        Memoised per ``(oid, event)`` — the hot delivery path resolves
        the same pairs over and over; see ``_handler_cache``."""
        key = (obj.oid, event)
        cache = self._handler_cache
        if key in cache:
            return cache[key]
        name = self.handlers.lookup(obj.oid, event)
        fn = (getattr(obj, name) if name is not None
              else obj.object_handler_fn(event))
        cache[key] = fn
        return fn

    # ------------------------------------------------------------------
    # crash (volatile-state discard; objects themselves persist)
    # ------------------------------------------------------------------

    def on_crash(self) -> None:
        """Discard kernel-side volatile state at a node crash.

        The hosted objects persist (§2), but the event queue and the
        dynamic handler registry are kernel memory. Durable posts lost
        from the queue here are exactly what the origin's outbox
        redelivers on recovery; the registry is replayed from the
        journal when durable_delivery is on.
        """
        # reset (not drain): the dead master's pending recv future must
        # not swallow the first post enqueued after recovery
        dropped = self._queue.reset()
        for work in dropped:
            block = work[2]
            self.kernel.tracer.emit("event", "queue-lost",
                                    event=block.event, node=self.node_id)
        self._master = None
        self.serving = 0
        self.handlers.clear()
        self._handler_cache.clear()

    # ------------------------------------------------------------------
    # object-based event execution (§4.3, §7)
    # ------------------------------------------------------------------

    def run_object_handler(self, obj: DistObject, fn: Callable,
                           block: EventBlock,
                           done: SimFuture[Any]) -> None:
        """Execute an object's handler for an event posted to it.

        ``fn`` is the bound handler method (a generator function taking
        ``(ctx, event_block)``); ``done`` resolves with its return value.
        """
        mode = self.kernel.config.object_event_mode
        if mode == OBJ_EVENTS_MASTER:
            self._queue.put((obj, fn, block, done))
            self._ensure_master()
        else:
            self._spawn_per_event_thread(obj, fn, block, done)

    def _ensure_master(self) -> None:
        if self._master is not None and self._master.alive:
            return
        # The master is created once (its creation cost is paid once, at
        # first use — the whole point of the optimisation).
        self.handler_threads_created += 1
        self._master = self.kernel.invoker.adopt_loop_thread(
            self.node_id, self._master_loop, "obj-event-master", KIND_KERNEL)

    def _master_loop(self, ctx):
        """Body of the per-node master handler thread."""
        while True:
            work = yield ctx.recv(self._queue)
            yield from self._serve(ctx, work)

    def _spawn_per_event_thread(self, obj: DistObject, fn: Callable,
                                block: EventBlock,
                                done: SimFuture[Any]) -> None:
        self.handler_threads_created += 1

        def one_shot(ctx):
            # Creation cost is charged by spawn machinery below.
            yield from self._serve(ctx, (obj, fn, block, done))

        def create() -> None:
            self.kernel.invoker.adopt_loop_thread(
                self.node_id, one_shot, "obj-event-oneshot", KIND_KERNEL)

        # Charge the thread-creation cost the master mode avoids.
        self.kernel.sim.call_after(self.kernel.config.thread_create_cost,
                                   create)

    def _serve(self, ctx, work):
        """Run one handler within the object's context (shared by modes)."""
        obj, fn, block, done = work
        activation = ctx._activation
        activation.obj = obj
        previous_block, activation.event_block = activation.event_block, block
        block.delivered_at = ctx.now
        self.events_served += 1
        if block.durable_id is not None:
            # Atomic with the handler's first segment (no yield between
            # here and fn's first statement): a crash earlier redelivers,
            # a crash later suppresses — exactly-once either way.
            self.kernel.store.mark_applied(block.durable_id)
        self.kernel.tracer.emit("event", "object-handler", oid=obj.oid,
                                event=block.event, node=self.node_id)
        self.serving += 1
        watchdog = self._arm_watchdog(ctx._thread, obj, block, done)
        try:
            result = yield from fn(ctx, block)
        except BaseException as exc:  # noqa: BLE001 - handler crash is data
            if not done.done:
                done.fail(exc)
        else:
            if not done.done:
                done.resolve(result)
        finally:
            if watchdog is not None:
                watchdog.cancel()
            self.serving -= 1
        activation.obj = None
        activation.event_block = previous_block

    def _arm_watchdog(self, thread: DThread, obj: DistObject,
                      block: EventBlock, done: SimFuture[Any]):
        """Watchdog over one object-handler run (``handler_deadline``).

        A hung handler would otherwise wedge the node's master handler
        thread, starving every later post to objects homed here. On
        expiry the executing thread is destroyed, ``done`` fails with
        :class:`~repro.errors.HandlerTimeout`, and a fresh master is
        spawned if work is waiting. Returns the timer handle (None when
        the knob is off — no timer, no extra simulator event).
        """
        deadline = self.kernel.config.handler_deadline
        if deadline is None:
            return None

        def expire() -> None:
            if done.done or not thread.alive:
                return
            supervisor = self.kernel.events.supervisor
            supervisor.counters["handler_timeouts"] += 1
            self.kernel.tracer.emit("supervise", "handler-timeout",
                                    event=block.event, oid=obj.oid,
                                    node=self.node_id, deadline=deadline)
            error = HandlerTimeout(
                f"object handler for {block.event} on oid {obj.oid} "
                f"exceeded {deadline}s")
            # Fail the delivery future first: the destroy below unwinds
            # the generator, whose error path must see done as settled.
            done.fail(error)
            self.kernel.invoker.destroy_thread_abrupt(thread, error)
            if self._master is thread:
                # The master died with the hung handler; respawn it if
                # posts are waiting (otherwise first use re-creates it).
                self._master = None
                if len(self._queue):
                    self._ensure_master()

        return self.kernel.sim.call_after(deadline, expire)
