"""Per-node object manager.

Hosts the objects homed on a node and executes their object-based event
handlers. Section 7 of the paper: "to support posting events to passive
objects, a system thread needs to be employed. To reduce thread-creation
costs, it is preferable to employ a master handler thread on behalf of a
passive object." Both modes are implemented — the configured default is
the master thread; experiment E3 compares them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.errors import ObjectError, UnknownObjectError
from repro.events.block import EventBlock
from repro.kernel.config import (
    OBJ_EVENTS_MASTER,
    TRANSPORT_DSM,
)
from repro.objects.base import DistObject
from repro.objects.capability import Capability
from repro.sim.primitives import Channel, SimFuture
from repro.threads.thread import DThread, KIND_KERNEL

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.node import Kernel


class ObjectManager:
    """Registry plus object-event executor for one node."""

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self.node_id = kernel.node_id
        self._objects: dict[int, DistObject] = {}
        self._queue: Channel[Any] = Channel(kernel.sim)
        self._master: DThread | None = None
        #: counters reported by experiment E3
        self.events_served = 0
        self.handler_threads_created = 0

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------

    def create(self, cls: type, *args: Any, transport: str | None = None,
               **kwargs: Any) -> Capability:
        """Instantiate ``cls`` on this node and return its capability."""
        if not (isinstance(cls, type) and issubclass(cls, DistObject)):
            raise ObjectError(f"{cls!r} is not a DistObject subclass")
        transport = transport or self.kernel.config.default_transport
        obj = cls(*args, **kwargs)
        if obj._home is not None:
            raise ObjectError(
                f"{cls.__name__}.__init__ must not place the object itself")
        # re-key onto the cluster-local oid space for determinism
        obj._oid = next(self.kernel.cluster.oid_counter)
        obj._place(self.node_id, transport)
        self._objects[obj.oid] = obj
        self.kernel.cluster.object_directory[obj.oid] = obj
        if transport == TRANSPORT_DSM:
            self.kernel.cluster.dsm.register_object(obj)
        self.kernel.tracer.emit("object", "create", oid=obj.oid,
                                cls=cls.__name__, node=self.node_id,
                                transport=transport)
        return obj.cap

    def get(self, oid: int) -> DistObject | None:
        return self._objects.get(oid)

    def require(self, oid: int) -> DistObject:
        obj = self._objects.get(oid)
        if obj is None:
            raise UnknownObjectError(
                f"node {self.node_id} hosts no object {oid}")
        return obj

    def destroy(self, oid: int) -> bool:
        """Remove an object from the node (the DELETE default action)."""
        obj = self._objects.pop(oid, None)
        if obj is None:
            return False
        self.kernel.cluster.object_directory.pop(oid, None)
        self.kernel.tracer.emit("object", "destroy", oid=oid,
                                node=self.node_id)
        return True

    def oids(self) -> list[int]:
        return sorted(self._objects)

    # ------------------------------------------------------------------
    # object-based event execution (§4.3, §7)
    # ------------------------------------------------------------------

    def run_object_handler(self, obj: DistObject, fn: Callable,
                           block: EventBlock,
                           done: SimFuture[Any]) -> None:
        """Execute an object's handler for an event posted to it.

        ``fn`` is the bound handler method (a generator function taking
        ``(ctx, event_block)``); ``done`` resolves with its return value.
        """
        mode = self.kernel.config.object_event_mode
        if mode == OBJ_EVENTS_MASTER:
            self._queue.put((obj, fn, block, done))
            self._ensure_master()
        else:
            self._spawn_per_event_thread(obj, fn, block, done)

    def _ensure_master(self) -> None:
        if self._master is not None and self._master.alive:
            return
        # The master is created once (its creation cost is paid once, at
        # first use — the whole point of the optimisation).
        self.handler_threads_created += 1
        self._master = self.kernel.invoker.adopt_loop_thread(
            self.node_id, self._master_loop, "obj-event-master", KIND_KERNEL)

    def _master_loop(self, ctx):
        """Body of the per-node master handler thread."""
        while True:
            work = yield ctx.recv(self._queue)
            yield from self._serve(ctx, work)

    def _spawn_per_event_thread(self, obj: DistObject, fn: Callable,
                                block: EventBlock,
                                done: SimFuture[Any]) -> None:
        self.handler_threads_created += 1

        def one_shot(ctx):
            # Creation cost is charged by spawn machinery below.
            yield from self._serve(ctx, (obj, fn, block, done))

        def create() -> None:
            self.kernel.invoker.adopt_loop_thread(
                self.node_id, one_shot, "obj-event-oneshot", KIND_KERNEL)

        # Charge the thread-creation cost the master mode avoids.
        self.kernel.sim.call_after(self.kernel.config.thread_create_cost,
                                   create)

    def _serve(self, ctx, work):
        """Run one handler within the object's context (shared by modes)."""
        obj, fn, block, done = work
        activation = ctx._activation
        activation.obj = obj
        previous_block, activation.event_block = activation.event_block, block
        block.delivered_at = ctx.now
        self.events_served += 1
        self.kernel.tracer.emit("event", "object-handler", oid=obj.oid,
                                event=block.event, node=self.node_id)
        try:
            result = yield from fn(ctx, block)
        except BaseException as exc:  # noqa: BLE001 - handler crash is data
            if not done.done:
                done.fail(exc)
        else:
            if not done.done:
                done.resolve(result)
        activation.obj = None
        activation.event_block = previous_block
