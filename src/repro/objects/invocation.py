"""The invocation engine: how logical threads cross object boundaries.

In the passive-object paradigm "when an object invokes another, the same
logical thread is used to execute the code in the called object" (§2).
Under the **RPC transport** this engine ships the thread — attributes and
all — to the callee's home node, maintaining the per-node TCB forwarding
chain the path locator walks; under the **DSM transport** the entry runs
on the caller's node and the object's pages are faulted in on access.

The engine also owns thread lifecycle bookkeeping that is inseparable
from migration: spawning (asynchronous invocations, §5.3/§7.1), normal
completion, exception propagation across frames, invocation aborts, and
terminate-time unwinding with per-object ABORT notification (§6.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import (
    InvocationAborted,
    ObjectError,
    ThreadTerminated,
    UndeliverableError,
    UnknownObjectError,
)
from repro.kernel.config import TRANSPORT_DSM
from repro.net.message import Message
from repro.objects.capability import Capability
from repro.threads import syscalls as sc
from repro.threads.attributes import ThreadAttributes
from repro.threads.thread import (
    Activation,
    DThread,
    KIND_USER,
    RUNNING,
    TERMINATED,
    TERMINATING,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.boot import Cluster

MSG_INVOKE = "invoke.request"
MSG_REPLY = "invoke.reply"
MSG_UNWIND = "thread.unwind"
MSG_COMPLETE = "thread.complete"

SVC_CREATE_OBJECT = "obj.create"


class InvocationEngine:
    """Cluster-wide engine driving invocations and thread lifecycle."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        for kernel in cluster.kernels.values():
            kernel.register_message_handler(MSG_INVOKE, self._on_invoke)
            kernel.register_message_handler(MSG_REPLY, self._on_reply)
            kernel.register_message_handler(MSG_UNWIND, self._on_unwind)
            kernel.register_message_handler(MSG_COMPLETE, self._on_complete)
            kernel.rpc.serve(SVC_CREATE_OBJECT, self._svc_create_object)

    # ------------------------------------------------------------------
    # thread creation
    # ------------------------------------------------------------------

    def spawn_thread(self, root_node: int, cap: Capability, entry: str,
                     args: tuple = (),
                     attributes: ThreadAttributes | None = None,
                     kind: str = KIND_USER,
                     charge_create: bool = True) -> DThread:
        """Create a thread rooted at ``root_node`` invoking ``cap.entry``.

        The root TCB is installed immediately (the thread is findable from
        its root from birth, §7.1); the initial invocation begins after
        the configured thread-creation cost.
        """
        cluster = self.cluster
        kernel = cluster.kernels[root_node]
        tid = kernel.id_allocator.new_tid()
        thread = DThread(cluster, tid,
                         attributes or ThreadAttributes(), kind=kind)
        cluster.live_threads[tid] = thread
        kernel.thread_table.thread_arrived(tid)
        cluster.events.thread_entered_node(thread, root_node, created=True)
        cluster.tracer.emit("thread", "create", tid=str(tid), node=root_node,
                            kind=kind, entry=entry)
        delay = cluster.config.thread_create_cost if charge_create else 0.0
        cluster.sim.call_after(delay, self._first_invoke, thread, cap,
                               entry, args)
        return thread

    def _first_invoke(self, thread: DThread, cap: Capability, entry: str,
                      args: tuple) -> None:
        if not thread.alive:
            return
        thread.state = RUNNING
        self.invoke(thread, sc.Invoke(cap=cap, entry=entry, args=args))

    def adopt_loop_thread(self, node: int, gen_fn: Any, name: str,
                          kind: str, *gen_args: Any,
                          attributes: ThreadAttributes | None = None,
                          impersonate: Any = None) -> DThread:
        """Create a thread running a bare generator frame on ``node``.

        Used for kernel service threads (the master handler thread of §7)
        and for surrogate threads, which "take on the attributes of the
        suspended thread" (§6.1) via the ``attributes`` argument.
        """
        cluster = self.cluster
        kernel = cluster.kernels[node]
        tid = kernel.id_allocator.new_tid()
        thread = DThread(cluster, tid, attributes or ThreadAttributes(),
                         kind=kind)
        thread.impersonates = impersonate
        cluster.live_threads[tid] = thread
        kernel.thread_table.thread_arrived(tid)
        cluster.events.thread_entered_node(thread, node, created=True)
        act = Activation(obj=None, entry=name, gen=None, node=node)
        thread.push_frame(act)
        act.gen = gen_fn(act.ctx, *gen_args)
        cluster.tracer.emit("thread", "create", tid=str(tid), node=node,
                            kind=kind, entry=name)
        thread.schedule_step(None, None)
        return thread

    # ------------------------------------------------------------------
    # synchronous invocation
    # ------------------------------------------------------------------

    def invoke(self, thread: DThread, syscall: sc.Invoke) -> None:
        cap = syscall.cap
        here = thread.current_node
        obj = self.cluster.find_object(cap.oid)
        if obj is None:
            thread.schedule_step(None, UnknownObjectError(
                f"no object with oid {cap.oid} (capability {cap})"))
            return
        if cap.transport == TRANSPORT_DSM:
            # The thread stays put; the object's state pages will be
            # faulted to this node on access.
            self._enter_local(thread, obj, syscall, node=here)
        elif cap.home == here:
            self._enter_local(thread, obj, syscall, node=here)
        else:
            self._migrate_out(thread, obj, syscall, src=here, dst=cap.home)

    def _make_activation(self, thread: DThread, obj: Any,
                         syscall: sc.Invoke, node: int, is_remote: bool,
                         caller_node: int | None) -> Activation | None:
        """Push a frame and instantiate its generator; None on failure."""
        act = Activation(obj=obj, entry=syscall.entry, gen=None, node=node,
                         is_remote=is_remote, caller_node=caller_node,
                         event_block=syscall.handler_block)
        thread.push_frame(act)
        try:
            if syscall.as_handler:
                fn = obj.handler_fn(syscall.entry)
            else:
                fn = obj.entry_fn(syscall.entry)
            act.gen = fn(act.ctx, *syscall.args)
        except BaseException as exc:  # noqa: BLE001 - bad entry/arity
            thread.pop_frame()
            self._resume_or_fail_frame(thread, None, exc, is_remote,
                                       node, caller_node)
            return None
        self.cluster.tracer.emit(
            "invoke", "remote" if is_remote else "local", tid=str(thread.tid),
            oid=obj.oid, entry=syscall.entry, node=node)
        return act

    def _enter_local(self, thread: DThread, obj: Any, syscall: sc.Invoke,
                     node: int) -> None:
        act = self._make_activation(thread, obj, syscall, node,
                                    is_remote=False, caller_node=None)
        if act is not None:
            thread.schedule_step(None, None)

    def _migrate_out(self, thread: DThread, obj: Any, syscall: sc.Invoke,
                     src: int, dst: int) -> None:
        cluster = self.cluster
        cluster.events.thread_leaving_node(thread, src, frames_remain=True)
        cluster.kernels[src].thread_table.thread_departed(thread.tid, dst)
        thread.state = RUNNING  # continuation arrives with the message
        cluster.tracer.emit("thread", "migrate", tid=str(thread.tid),
                            src=src, dst=dst, oid=obj.oid,
                            entry=syscall.entry)
        size = 256 + thread.attributes.nominal_size
        self._ship(Message(
            src=src, dst=dst, mtype=MSG_INVOKE, size=size,
            payload={"thread": thread, "obj": obj, "syscall": syscall,
                     "caller_node": src}), thread)

    def _ship(self, message: Message, thread: DThread) -> None:
        """Send a thread-carrying control message (reliably when enabled).

        If the reliable channel gives up — the peer crashed and never
        recovered within the retransmission budget — the thread inside
        the message is gone for good; destroy it so waiters get a
        bounded-time failure instead of a hang.
        """
        self.cluster.transmit(message, on_give_up=lambda m: \
            self.destroy_thread_abrupt(thread, UndeliverableError(
                f"{message.mtype} for {thread.tid} undeliverable to "
                f"node {message.dst}")))

    def _on_invoke(self, message: Message) -> None:
        body = message.payload
        thread: DThread = body["thread"]
        node = int(message.dst)
        if not thread.alive or thread.state == TERMINATING:
            return  # terminated while the request was in flight
        thread.cluster.kernels[node].thread_table.thread_arrived(thread.tid)
        self.cluster.events.thread_entered_node(thread, node)
        act = self._make_activation(thread, body["obj"], body["syscall"],
                                    node, is_remote=True,
                                    caller_node=body["caller_node"])
        if act is not None:
            thread.schedule_step(None, None)

    # ------------------------------------------------------------------
    # returns and exception propagation
    # ------------------------------------------------------------------

    def frame_returned(self, thread: DThread, value: Any) -> None:
        self._leave_frame(thread, value, None)

    def frame_failed(self, thread: DThread, error: BaseException) -> None:
        self._leave_frame(thread, None, error)

    def _leave_frame(self, thread: DThread, value: Any,
                     error: BaseException | None) -> None:
        frame = thread.pop_frame()
        self.cluster.tracer.emit(
            "invoke", "return" if error is None else "raise",
            tid=str(thread.tid), entry=frame.entry, node=frame.node,
            oid=frame.obj.oid if frame.obj is not None else -1)
        if not thread.frames:
            self._complete_thread(thread, frame.node, value, error)
            return
        self._resume_or_fail_frame(thread, value, error, frame.is_remote,
                                   frame.node, frame.caller_node)

    def _resume_or_fail_frame(self, thread: DThread, value: Any,
                              error: BaseException | None, was_remote: bool,
                              from_node: int,
                              caller_node: int | None) -> None:
        if not was_remote or caller_node is None or caller_node == from_node:
            thread.schedule_step(value, error)
            return
        cluster = self.cluster
        cluster.events.thread_leaving_node(
            thread, from_node,
            frames_remain=self._frames_remain(thread, from_node))
        remaining = cluster.kernels[from_node].thread_table.frame_popped(
            thread.tid)
        if remaining is None:
            cluster.events.thread_left_for_good(thread, from_node)
        self._ship(Message(
            src=from_node, dst=caller_node, mtype=MSG_REPLY, size=128,
            payload={"thread": thread, "value": value, "error": error}),
            thread)

    def _frames_remain(self, thread: DThread, node: int) -> bool:
        return any(f.node == node for f in thread.frames)

    def _on_reply(self, message: Message) -> None:
        body = message.payload
        thread: DThread = body["thread"]
        node = int(message.dst)
        if not thread.alive or thread.state == TERMINATING:
            return
        thread.cluster.kernels[node].thread_table.thread_returned_here(
            thread.tid)
        self.cluster.events.thread_entered_node(thread, node, returned=True)
        thread.schedule_step(body["value"], body["error"])

    def thread_result_with_no_frames(self, thread: DThread, value: Any,
                                     error: BaseException | None) -> None:
        """Driver callback: a continuation arrived but no activation exists
        (the thread's first invocation failed to start)."""
        self._complete_thread(thread, thread.current_node, value, error)

    def _complete_thread(self, thread: DThread, last_node: int, value: Any,
                         error: BaseException | None) -> None:
        """The outermost frame finished; clean up back at the root."""
        cluster = self.cluster
        cluster.events.thread_leaving_node(thread, last_node,
                                           frames_remain=False)
        root = thread.tid.root
        if last_node != root:
            kernel = cluster.kernels[last_node]
            if thread.tid in kernel.thread_table:
                kernel.thread_table.frame_popped(thread.tid)
            cluster.events.thread_left_for_good(thread, last_node)
            self._ship(Message(
                src=last_node, dst=root, mtype=MSG_COMPLETE, size=128,
                payload={"thread": thread, "value": value, "error": error}),
                thread)
            return
        self._finalize(thread, value, error)

    def _on_complete(self, message: Message) -> None:
        body = message.payload
        self._finalize(body["thread"], body["value"], body["error"])

    def _finalize(self, thread: DThread, value: Any,
                  error: BaseException | None,
                  state: str | None = None) -> None:
        cluster = self.cluster
        root = thread.tid.root
        cluster.kernels[root].thread_table.purge(thread.tid)
        cluster.events.thread_gone(thread)
        cluster.live_threads.pop(thread.tid, None)
        gid = thread.attributes.group
        if gid is not None:
            cluster.groups.remove(gid, thread.tid)
        if state is None:
            state = "done" if error is None else "failed"
        cluster.tracer.emit("thread", "exit", tid=str(thread.tid),
                            state=state)
        thread.finish(value, error, state=state)

    # ------------------------------------------------------------------
    # asynchronous invocation (spawn)
    # ------------------------------------------------------------------

    def invoke_async(self, thread: DThread, syscall: sc.InvokeAsync) -> None:
        here = thread.current_node
        attributes = thread.attributes.inherit()
        gid = attributes.group
        child = self.spawn_thread(here, syscall.cap, syscall.entry,
                                  syscall.args, attributes=attributes)
        if gid is not None:
            self.cluster.groups.add(gid, child.tid)
        result = child.completion if syscall.claimable else None
        if not syscall.claimable:
            # Fire-and-forget: nobody will observe a failure, so swallow
            # it (the system "may not keep track of asynchronous
            # invocations, the results of which are not claimed", §7.1).
            child.completion.add_done_callback(lambda fut: None)
        handle = sc.AsyncHandle(tid=child.tid, result=result)
        # The parent pays the creation cost before continuing.
        self.cluster.sim.call_after(self.cluster.config.thread_create_cost,
                                    thread.resume_with, handle, None,
                                    thread.block("spawn"))

    # ------------------------------------------------------------------
    # object creation from running threads
    # ------------------------------------------------------------------

    def create_object_from_thread(self, thread: DThread,
                                  syscall: sc.CreateObject) -> None:
        cluster = self.cluster
        here = thread.current_node
        target = here if syscall.node is None else syscall.node
        if target not in cluster.kernels:
            thread.schedule_step(None, ObjectError(
                f"cannot create object on unknown node {target}"))
            return
        if target == here:
            try:
                cap = cluster.kernels[target].objects.create(
                    syscall.cls, *syscall.args,
                    transport=syscall.transport, **syscall.kwargs)
            except BaseException as exc:  # noqa: BLE001
                thread.schedule_step(None, exc)
                return
            thread.schedule_step(cap, None)
            return
        epoch = thread.block("create")
        fut = cluster.kernels[here].rpc.request(
            target, SVC_CREATE_OBJECT,
            {"cls": syscall.cls, "args": syscall.args,
             "kwargs": syscall.kwargs, "transport": syscall.transport})

        def done(f):
            if f.failed or f.cancelled:
                try:
                    f.result()
                except BaseException as exc:  # noqa: BLE001
                    thread.resume_with(None, exc, epoch)
                return
            thread.resume_with(f.result(), None, epoch)

        fut.add_done_callback(done)

    def _svc_create_object(self, payload: dict, message: Message) -> Any:
        kernel = self.cluster.kernels[int(message.dst)]
        return kernel.objects.create(payload["cls"], *payload["args"],
                                     transport=payload["transport"],
                                     **payload["kwargs"])

    # ------------------------------------------------------------------
    # termination and aborts
    # ------------------------------------------------------------------

    def terminate_thread(self, thread: DThread, reason: str = "") -> None:
        """Terminate a thread: unwind all activations, innermost first.

        Each frame's ``finally`` blocks run on the node the frame occupies
        (cross-node unwinding is charged as messages); each distinct
        object the thread unwinds out of is posted an ABORT event so it
        can clean up (§6.3).
        """
        if not thread.alive or thread.state == TERMINATING:
            return
        thread.state = TERMINATING
        thread.cancel_wait()
        thread.cancel_pending_steps()
        self.cluster.tracer.emit("thread", "terminate", tid=str(thread.tid),
                                 reason=reason, node=thread.current_node)
        self._unwind_next(thread, reason, notified=set())

    def _unwind_next(self, thread: DThread, reason: str,
                     notified: set[int]) -> None:
        cluster = self.cluster
        if not thread.frames:
            self._finalize(thread, None,
                           ThreadTerminated(reason or f"{thread.tid} killed"),
                           state=TERMINATED)
            return
        frame = thread.frames[-1]
        crash = thread.unwind_close(frame)
        if crash is not None:
            cluster.tracer.emit("thread", "unwind-crash", tid=str(thread.tid),
                                entry=frame.entry, error=repr(crash))
        thread.pop_frame()
        obj = frame.obj
        if (obj is not None and cluster.config.notify_abort_on_unwind
                and obj.oid not in notified):
            notified.add(obj.oid)
            cluster.events.post_abort_notification(obj, thread, frame.node)
        if frame.is_remote and frame.caller_node is not None \
                and frame.caller_node != frame.node:
            cluster.events.thread_leaving_node(
                thread, frame.node,
                frames_remain=self._frames_remain(thread, frame.node))
            kernel = cluster.kernels[frame.node]
            if thread.tid in kernel.thread_table:
                if kernel.thread_table.frame_popped(thread.tid) is None:
                    cluster.events.thread_left_for_good(thread, frame.node)
            self._ship(Message(
                src=frame.node, dst=frame.caller_node, mtype=MSG_UNWIND,
                size=96, payload={"thread": thread, "reason": reason,
                                  "notified": notified,
                                  "mode": "terminate", "depth": 0}), thread)
            return
        cluster.sim.call_soon(self._unwind_next, thread, reason, notified)

    def _on_unwind(self, message: Message) -> None:
        body = message.payload
        thread: DThread = body["thread"]
        node = int(message.dst)
        kernel = self.cluster.kernels[node]
        if thread.tid in kernel.thread_table:
            kernel.thread_table.thread_returned_here(thread.tid)
        if body.get("mode") == "abort":
            self._abort_down_to(thread, body["depth"], body["reason"],
                                body["notified"])
        else:
            self._unwind_next(thread, body["reason"], body["notified"])

    def abort_invocation(self, thread: DThread, oid: int,
                         reason: str = "") -> bool:
        """Abort the invocation of object ``oid`` in progress for a thread.

        Frames above and including the innermost frame executing in
        ``oid`` are unwound; the frame below observes
        :class:`~repro.errors.InvocationAborted` (which it may catch).
        Returns False if the thread has no frame in that object.

        This is the action §6.3 assigns to the ABORT handler: "the
        handler must abort the invocation in progress for the thread
        named in the event block".
        """
        depth = None
        for i in range(len(thread.frames) - 1, -1, -1):
            obj = thread.frames[i].obj
            if obj is not None and obj.oid == oid:
                depth = i
                break
        if depth is None or not thread.alive:
            return False
        if depth == 0:
            # Aborting the top-level invocation terminates the thread.
            self.terminate_thread(thread, reason or f"abort oid {oid}")
            return True
        thread.cancel_wait()
        thread.cancel_pending_steps()
        self._abort_down_to(thread, depth, reason, notified=set())
        return True

    def destroy_thread_abrupt(self, thread: DThread,
                              error: BaseException) -> None:
        """Kill a thread without unwinding (its node crashed).

        Unlike :meth:`terminate_thread` there is no orderly frame-by-frame
        unwind and no ABORT notifications: the machine holding the stack
        is gone. Generators are closed locally (a simulation artefact —
        Python would otherwise warn about un-collected frames), every
        node's TCB entry for the thread is purged, and the completion
        future fails with ``error`` so waiters learn the fate in bounded
        time. Raisers with events queued on the thread get dead-target
        notices via the usual ``thread_gone`` path.
        """
        if not thread.alive:
            return
        thread.cancel_wait()
        thread.cancel_pending_steps()
        thread.state = TERMINATING
        for frame in reversed(thread.frames):
            gen = frame.gen
            if gen is not None:
                try:
                    gen.close()
                except BaseException:  # noqa: BLE001 - cleanup crash moot
                    pass
        thread.frames.clear()
        for kernel in self.cluster.kernels.values():
            kernel.thread_table.purge(thread.tid)
        self.cluster.tracer.emit("thread", "destroy", tid=str(thread.tid),
                                 error=repr(error))
        self._finalize(thread, None, error, state=TERMINATED)

    def _abort_down_to(self, thread: DThread, depth: int, reason: str,
                       notified: set[int]) -> None:
        cluster = self.cluster
        if len(thread.frames) <= depth:
            error = InvocationAborted(reason or "invocation aborted")
            thread.resume_with(None, error)
            return
        frame = thread.frames[-1]
        thread.unwind_close(frame)
        thread.pop_frame()
        obj = frame.obj
        if (obj is not None and cluster.config.notify_abort_on_unwind
                and obj.oid not in notified):
            notified.add(obj.oid)
            cluster.events.post_abort_notification(obj, thread, frame.node)
        if frame.is_remote and frame.caller_node is not None \
                and frame.caller_node != frame.node:
            cluster.events.thread_leaving_node(
                thread, frame.node,
                frames_remain=self._frames_remain(thread, frame.node))
            kernel = cluster.kernels[frame.node]
            if thread.tid in kernel.thread_table:
                if kernel.thread_table.frame_popped(thread.tid) is None:
                    cluster.events.thread_left_for_good(thread, frame.node)
            self._ship(Message(
                src=frame.node, dst=frame.caller_node, mtype=MSG_UNWIND,
                size=96, payload={"thread": thread, "reason": reason,
                                  "notified": notified,
                                  "mode": "abort", "depth": depth}), thread)
            return
        cluster.sim.call_soon(self._abort_down_to, thread, depth, reason,
                              notified)
