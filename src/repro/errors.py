"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
applications can catch library failures with a single ``except`` clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class ProcessError(SimulationError):
    """A simulated process performed an illegal operation."""


class Interrupted(ReproError):
    """Raised inside a simulated process when it is interrupted.

    The ``cause`` attribute carries the value passed to ``interrupt()``.
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(cause)
        self.cause = cause


class NetworkError(ReproError):
    """The message fabric was used incorrectly."""


class PartitionedError(NetworkError):
    """A message could not be delivered because of a network partition."""


class KernelError(ReproError):
    """A node kernel was used incorrectly."""


class UnknownNodeError(KernelError):
    """Referenced a node id that does not exist in the cluster."""


class NodeCrashedError(KernelError):
    """An operation failed because its node crashed.

    Threads resident on a crashed node fail their completion futures with
    this error; RPC calls targeting the node fail fast with it when the
    crash is observed.
    """


class UndeliverableError(NetworkError):
    """A reliable send exhausted its retransmission budget.

    The receiving node is unreachable (crashed, partitioned beyond the
    retransmit horizon, or detached); the message was given up on after
    ``max_retransmits`` attempts. This is the bounded-time signal §7.2
    asks for in place of a silent hang.
    """


class OverloadShedError(UndeliverableError):
    """The post was shed by admission control.

    The raiser's node (or the target's home) was over its admission
    high watermark and the ``overload_policy`` rejected the post. Like
    every undeliverable outcome this is surfaced as a bounded-time
    notice (§7.2), never a silent loss.
    """


class NameServiceError(KernelError):
    """A name lookup or registration failed."""


class RpcError(KernelError):
    """A request/reply exchange failed."""


class RpcTimeout(RpcError):
    """A request did not receive a reply within its deadline."""


class ObjectError(ReproError):
    """An object-system operation failed."""


class UnknownObjectError(ObjectError):
    """Referenced an object id that is not registered anywhere."""


class NoSuchEntryError(ObjectError):
    """Invoked an entry point that the object does not define."""


class InvocationError(ObjectError):
    """An invocation could not be carried out."""


class InvocationAborted(InvocationError):
    """An in-progress invocation was aborted (e.g. by an ABORT event)."""


class ThreadError(ReproError):
    """A thread-system operation failed."""


class UnknownThreadError(ThreadError):
    """Referenced a thread id that does not exist (or no longer exists)."""


class DeadThreadError(UnknownThreadError):
    """An event was posted to a thread that has already terminated.

    The paper (section 7.2) requires that the sender of an asynchronous
    event be notified when the target thread has been destroyed; this
    exception is that notification.
    """


class ThreadTerminated(ThreadError):
    """Thrown into a thread's activations while it is being terminated.

    User entry points observe this as an exception so their ``finally``
    blocks run, mirroring stack unwinding during termination.
    """


class GroupError(ThreadError):
    """A thread-group operation failed."""


class EventError(ReproError):
    """An event-system operation failed."""


class UnknownEventError(EventError):
    """Raised or attached a handler for an event name never registered."""


class EventNameInUseError(EventError):
    """Attempted to register an event name that already exists."""


class NoHandlerError(EventError):
    """No handler accepted the event and no default action applies."""


class HandlerContextError(EventError):
    """A handler's execution context could not be established."""


class HandlerTimeout(EventError):
    """A supervised handler exceeded its watchdog deadline.

    The surrogate thread running the handler is cancelled, the chain
    falls through to the next registration, and a ``HANDLER_TIMEOUT``
    system event is raised on the owning thread (if it subscribed).
    """


class BuddyUnavailableError(EventError):
    """A buddy invocation was failed fast by the failure detector.

    The buddy object's home node has missed ``suspect_after``
    consecutive heartbeats; rather than waiting out the full
    retransmission give-up, the invocation fails immediately and feeds
    the circuit breaker / retry policy.
    """


class EventQuarantinedError(EventError):
    """An event block was moved to the dead-letter queue.

    A synchronous raiser whose event's entire handler chain failed
    ``poison_threshold`` times is resumed with this error instead of
    hanging; the block is inspectable via ``cluster.dead_letters()``.
    """


class LocateError(EventError):
    """A thread-location strategy failed to find the target thread."""


class DsmError(ReproError):
    """A distributed-shared-memory operation failed."""


class SegmentError(DsmError):
    """A segment was created, mapped or accessed incorrectly."""


class PageFaultError(DsmError):
    """A page fault could not be satisfied."""


class CoherenceError(DsmError):
    """The coherence protocol detected an inconsistent state."""


class PagerError(DsmError):
    """A user-level pager misbehaved."""


class LockError(ReproError):
    """A distributed lock operation failed."""


class LockNotHeldError(LockError):
    """Released a lock the thread does not hold."""


class BenchmarkError(ReproError):
    """A benchmark harness was configured incorrectly."""
