"""Structured trace recording for simulations.

Every interesting action in the simulated cluster (message send/receive,
invocation, event raise/delivery, handler execution, page fault, …) is
recorded as a :class:`TraceRecord`. Traces serve three purposes:

* tests assert on exact sequences (determinism, delivery order);
* experiment E7 compares handler-execution traces across transports;
* benchmarks derive message counts and latencies from them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.sim.scheduler import Simulator


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped structured event in a simulation run."""

    time: float
    category: str
    name: str
    fields: tuple[tuple[str, Any], ...] = ()

    def get(self, key: str, default: Any = None) -> Any:
        for k, v in self.fields:
            if k == key:
                return v
        return default

    def as_dict(self) -> dict[str, Any]:
        data = {"time": self.time, "category": self.category, "name": self.name}
        data.update(dict(self.fields))
        return data

    def __str__(self) -> str:  # pragma: no cover - diagnostic only
        kv = " ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"[{self.time:10.6f}] {self.category}/{self.name} {kv}"


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` entries against a simulator clock.

    Categories can be muted wholesale with :meth:`mute` to keep long
    benchmark runs light; records in muted categories are counted but not
    stored.
    """

    sim: Simulator
    records: list[TraceRecord] = field(default_factory=list)
    counts: dict[str, int] = field(default_factory=dict)
    _muted: set[str] = field(default_factory=set)
    _listeners: list[Callable[[TraceRecord], None]] = field(default_factory=list)

    def emit(self, category: str, name: str, **fields: Any) -> None:
        """Record an event at the current virtual time."""
        key = f"{category}/{name}"
        counts = self.counts
        counts[key] = counts.get(key, 0) + 1
        if category in self._muted and not self._listeners:
            # Muted and nobody listening: the record would be built only
            # to be thrown away. Counting alone keeps big benchmark runs
            # from paying a TraceRecord + sorted-tuple per emit.
            return
        record = TraceRecord(self.sim.now, category, name,
                             tuple(sorted(fields.items())))
        if category not in self._muted:
            self.records.append(record)
        for listener in self._listeners:
            listener(record)

    def mute(self, *categories: str) -> None:
        """Stop storing records for the given categories (still counted)."""
        self._muted.update(categories)

    def unmute(self, *categories: str) -> None:
        self._muted.difference_update(categories)

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener`` synchronously for every emitted record."""
        self._listeners.append(listener)

    def select(self, category: str | None = None,
               name: str | None = None, **fields: Any) -> list[TraceRecord]:
        """Return stored records matching all given criteria."""
        return list(self.iter_select(category=category, name=name, **fields))

    def iter_select(self, category: str | None = None,
                    name: str | None = None,
                    **fields: Any) -> Iterator[TraceRecord]:
        for record in self.records:
            if category is not None and record.category != category:
                continue
            if name is not None and record.name != name:
                continue
            if any(record.get(k) != v for k, v in fields.items()):
                continue
            yield record

    def count(self, category: str, name: str | None = None) -> int:
        """Count emitted records (including muted) by category and name."""
        if name is not None:
            return self.counts.get(f"{category}/{name}", 0)
        prefix = f"{category}/"
        return sum(n for key, n in self.counts.items()
                   if key.startswith(prefix))

    def clear(self) -> None:
        self.records.clear()
        self.counts.clear()

    def signature(self) -> tuple[tuple[float, str, str, tuple], ...]:
        """A hashable summary of the stored trace, for determinism checks."""
        return tuple((r.time, r.category, r.name, r.fields)
                     for r in self.records)

    def to_jsonl(self, path) -> int:
        """Dump stored records as JSON lines; returns the record count.

        Values that are not JSON-native are stringified, so traces of
        arbitrary simulations always export.
        """
        import json

        def default(value: Any) -> str:
            return str(value)

        with open(path, "w", encoding="utf-8") as fh:
            for record in self.records:
                fh.write(json.dumps(record.as_dict(), default=default))
                fh.write("\n")
        return len(self.records)

    def summary(self) -> dict[str, int]:
        """Emitted-record counts per category (including muted)."""
        totals: dict[str, int] = {}
        for key, count in self.counts.items():
            category = key.split("/", 1)[0]
            totals[category] = totals.get(category, 0) + count
        return totals
