"""Deterministic discrete-event scheduler with a virtual clock.

The :class:`Simulator` is the execution substrate for the whole library:
node kernels, the message fabric, timers, DSM protocol engines and thread
drivers all schedule callbacks here. Virtual time is a float number of
seconds; two runs with identical inputs produce identical schedules, which
the test suite relies on.

Ordering guarantees:

* callbacks fire in non-decreasing virtual time;
* callbacks scheduled for the same instant fire in scheduling order
  (FIFO), which keeps traces deterministic without relying on object
  identity or hash order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import SimulationError


@dataclass(frozen=True)
class Handle:
    """Cancellation handle returned by :meth:`Simulator.call_at`."""

    when: float
    seq: int
    _entry: list = field(repr=False, compare=False)
    _sim: "Simulator | None" = field(default=None, repr=False, compare=False)

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent.

        Nulls out the callback *and its arguments* so a cancelled entry
        pins no closures or payloads while it waits to be popped (a
        retransmit timer's cancelled entry used to keep its whole message
        alive until its virtual deadline drained past).
        """
        if self._entry[3] is None:
            return
        self._entry[3] = None
        self._entry[2] = ()
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._entry[3] is None


class Simulator:
    """A deterministic discrete-event loop over virtual time.

    Parameters
    ----------
    start:
        Initial virtual time (seconds). Defaults to ``0.0``.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_after(1.5, fired.append, "a")
    >>> _ = sim.call_after(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    #: below this queue size compaction is pointless (the rebuild costs
    #: more than lazily skipping the handful of dead entries)
    COMPACT_MIN = 64

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[list] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._cancelled = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) callbacks."""
        return len(self._queue) - self._cancelled

    @property
    def compactions(self) -> int:
        """Times the heap was rebuilt to purge cancelled entries."""
        return self._compactions

    def _note_cancel(self) -> None:
        """A handle was cancelled; compact once dead entries dominate.

        Lazy cancellation leaves the entry in the heap, which is fine
        while live work drains past it — but a workload that schedules
        and cancels far into the future (per-send retransmit timers were
        the worst offender) can grow the heap without bound. Rebuilding
        once the dead fraction passes one half keeps total compaction
        work O(1) amortised per cancellation.
        """
        self._cancelled += 1
        if (len(self._queue) > self.COMPACT_MIN
                and self._cancelled * 2 > len(self._queue)):
            self._queue = [e for e in self._queue if e[3] is not None]
            heapq.heapify(self._queue)
            self._cancelled = 0
            self._compactions += 1

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at virtual time ``when``.

        ``when`` must not be in the past. Returns a :class:`Handle` that can
        cancel the callback before it fires.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}; virtual time is already {self._now!r}"
            )
        entry = [float(when), next(self._seq), args, fn]
        heapq.heappush(self._queue, entry)
        return Handle(entry[0], entry[1], entry, self)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at the current instant, after queued work."""
        return self.call_at(self._now, fn, *args)

    def step(self) -> bool:
        """Run the single next callback. Returns False when queue is empty."""
        while self._queue:
            when, _seq, args, fn = heapq.heappop(self._queue)
            if fn is None:
                self._cancelled -= 1
                continue
            self._now = when
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run callbacks until the queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this bound; the clock is
            then advanced exactly to ``until``.
        max_events:
            Safety valve — raise :class:`SimulationError` after this many
            callbacks, which catches accidental livelock in tests.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            processed = 0
            while self._queue:
                when = self._next_time()
                if when is None:
                    break
                if until is not None and when > until:
                    self._now = float(until)
                    return
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} (livelock?)"
                    )
            if until is not None and self._now < until:
                self._now = float(until)
        finally:
            self._running = False

    def _next_time(self) -> float | None:
        """Virtual time of the next live callback, or None."""
        while self._queue and self._queue[0][3] is None:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        if not self._queue:
            return None
        return self._queue[0][0]
