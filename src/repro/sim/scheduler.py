"""Deterministic discrete-event scheduler with a virtual clock.

The :class:`Simulator` is the execution substrate for the whole library:
node kernels, the message fabric, timers, DSM protocol engines and thread
drivers all schedule callbacks here. Virtual time is a float number of
seconds; two runs with identical inputs produce identical schedules, which
the test suite relies on.

Ordering guarantees (both backends):

* callbacks fire in non-decreasing virtual time;
* callbacks scheduled for the same instant fire in scheduling order
  (FIFO), which keeps traces deterministic without relying on object
  identity or hash order.

Two backends implement that contract:

* :class:`Simulator` — a single binary heap with lazy cancellation and
  amortised compaction. The reference: bit-identical to the seed
  behaviour, and the default.
* :class:`WheelSimulator` — a hierarchical timing wheel (calendar
  queue): near-future callbacks hash into per-tick buckets drained in
  tick order, each bucket a tiny heap, so the common push/pop touches a
  handful of entries instead of a log of the whole schedule. Entries
  past the wheel horizon *spill* to an overflow heap (far-future
  retransmit/watchdog timers live there) and *migrate* onto the wheel
  when the near window drains to them. Entry lists and bucket lists are
  recycled through free pools (slab allocation) so a steady-state
  workload stops allocating.

Both backends order strictly by ``(when, seq)`` with a shared sequence
counter, so a run executes the same callbacks in the same order at the
same virtual times on either one — :func:`make_simulator` picks by name
and the differential tests in ``tests/test_wheel_scheduler.py`` hold the
two to identical traces.
"""

from __future__ import annotations

import heapq
import itertools
from math import floor
from typing import Any, Callable

from repro.errors import SimulationError

SCHEDULER_HEAP = "heap"
SCHEDULER_WHEEL = "wheel"
SCHEDULER_NAMES = (SCHEDULER_HEAP, SCHEDULER_WHEEL)


class Handle:
    """Cancellation handle returned by :meth:`Simulator.call_at`.

    A plain ``__slots__`` class (not a dataclass): the simulator creates
    one per scheduled callback, which makes construction cost part of
    the hot path.
    """

    __slots__ = ("when", "seq", "_entry", "_sim")

    def __init__(self, when: float, seq: int, entry: list,
                 sim: "Simulator | None" = None) -> None:
        self.when = when
        self.seq = seq
        self._entry = entry
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running. Idempotent.

        Nulls out the callback *and its arguments* so a cancelled entry
        pins no closures or payloads while it waits to be popped (a
        retransmit timer's cancelled entry used to keep its whole message
        alive until its virtual deadline drained past).

        The wheel backend recycles entry lists once they fire; the
        sequence-number guard makes a stale handle's ``cancel`` a no-op
        instead of cancelling whatever callback now occupies the slot.
        """
        entry = self._entry
        if entry[1] != self.seq or entry[3] is None:
            return
        entry[3] = None
        entry[2] = ()
        if self._sim is not None:
            self._sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        entry = self._entry
        return entry[1] != self.seq or entry[3] is None

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        state = "cancelled" if self.cancelled else "pending"
        return f"Handle(when={self.when!r}, seq={self.seq}, {state})"


class Simulator:
    """A deterministic discrete-event loop over virtual time.

    Parameters
    ----------
    start:
        Initial virtual time (seconds). Defaults to ``0.0``.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.call_after(1.5, fired.append, "a")
    >>> _ = sim.call_after(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    backend = SCHEDULER_HEAP

    #: below this queue size compaction is pointless (the rebuild costs
    #: more than lazily skipping the handful of dead entries)
    COMPACT_MIN = 64

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[list] = []
        self._seq = itertools.count()
        self._running = False
        self._events_processed = 0
        self._scheduled = 0
        self._cancelled = 0
        self._cancels_total = 0
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total number of callbacks executed so far."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of scheduled (non-cancelled) callbacks."""
        return len(self._queue) - self._cancelled

    @property
    def compactions(self) -> int:
        """Times the queue was rebuilt to purge cancelled entries."""
        return self._compactions

    def stats(self) -> dict[str, Any]:
        """Scheduler internals, one uniform schema for both backends.

        ``wheel_spills`` / ``wheel_migrations`` / ``overflow_pending``
        are identically zero on the heap backend; benches can aggregate
        the dict without caring which backend is configured.
        """
        return {
            "backend": self.backend,
            "pending": self.pending,
            "scheduled": self._scheduled,
            "executed": self._events_processed,
            "cancellations": self._cancels_total,
            "compactions": self._compactions,
            "wheel_spills": 0,
            "wheel_migrations": 0,
            "overflow_pending": 0,
        }

    def _note_cancel(self) -> None:
        """A handle was cancelled; compact once dead entries dominate.

        Lazy cancellation leaves the entry in the heap, which is fine
        while live work drains past it — but a workload that schedules
        and cancels far into the future (per-send retransmit timers were
        the worst offender) can grow the heap without bound. Rebuilding
        once the dead fraction passes one half keeps total compaction
        work O(1) amortised per cancellation.
        """
        self._cancelled += 1
        self._cancels_total += 1
        if (len(self._queue) > self.COMPACT_MIN
                and self._cancelled * 2 > len(self._queue)):
            self._queue = [e for e in self._queue if e[3] is not None]
            heapq.heapify(self._queue)
            self._cancelled = 0
            self._compactions += 1

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at virtual time ``when``.

        ``when`` must not be in the past. Returns a :class:`Handle` that can
        cancel the callback before it fires.
        """
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}; virtual time is already {self._now!r}"
            )
        self._scheduled += 1
        entry = [float(when), next(self._seq), args, fn]
        heapq.heappush(self._queue, entry)
        return Handle(entry[0], entry[1], entry, self)

    def call_after(self, delay: float, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.call_at(self._now + delay, fn, *args)

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Handle:
        """Schedule ``fn(*args)`` at the current instant, after queued work."""
        return self.call_at(self._now, fn, *args)

    def step(self) -> bool:
        """Run the single next callback. Returns False when queue is empty."""
        while self._queue:
            when, _seq, args, fn = heapq.heappop(self._queue)
            if fn is None:
                self._cancelled -= 1
                continue
            self._now = when
            self._events_processed += 1
            fn(*args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run callbacks until the queue drains.

        Parameters
        ----------
        until:
            Stop once virtual time would exceed this bound; the clock is
            then advanced exactly to ``until``.
        max_events:
            Safety valve — raise :class:`SimulationError` after this many
            callbacks, which catches accidental livelock in tests.
        """
        if self._running:
            raise SimulationError("simulator is already running (re-entrant run())")
        self._running = True
        try:
            processed = 0
            while True:
                when = self._next_time()
                if when is None:
                    break
                if until is not None and when > until:
                    self._now = float(until)
                    return
                if not self.step():
                    break
                processed += 1
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} (livelock?)"
                    )
            if until is not None and self._now < until:
                self._now = float(until)
        finally:
            self._running = False

    def _next_time(self) -> float | None:
        """Virtual time of the next live callback, or None."""
        while self._queue and self._queue[0][3] is None:
            heapq.heappop(self._queue)
            self._cancelled -= 1
        if not self._queue:
            return None
        return self._queue[0][0]

    def peek_next(self) -> float | None:
        """Virtual time of the next live callback without running it.

        The sharded runner's quiescent skip-ahead uses this: when no
        cross-shard traffic is in flight, every shard's earliest
        pending time bounds how far the window counter may jump while
        staying conservative. Works on both backends (each overrides
        :meth:`_next_time`); cancelled entries are lazily purged, so
        repeated peeks are cheap.
        """
        return self._next_time()


class WheelSimulator(Simulator):
    """Timing-wheel / calendar-queue scheduler backend.

    Near-future callbacks go into per-tick buckets (``floor(when/tick)``)
    drained in tick order; each bucket is a small heap ordered by the
    same ``(when, seq)`` key as the reference heap, so the global
    execution order is identical. Callbacks at or past the horizon —
    ``slots`` ticks ahead of the earliest pending work — spill to an
    overflow heap and migrate onto the wheel when the near window drains
    down to them.

    Parameters
    ----------
    start:
        Initial virtual time (seconds).
    tick:
        Bucket width in virtual seconds. Callbacks within one tick share
        a bucket; pick it near the workload's natural event spacing.
    slots:
        Width of the near window in ticks; ``slots * tick`` virtual
        seconds ahead of the window base is the overflow horizon.
    """

    backend = SCHEDULER_WHEEL

    #: bound on the recycled entry/bucket pools (slab caches)
    POOL_MAX = 2048

    def __init__(self, start: float = 0.0, tick: float = 1e-3,
                 slots: int = 4096) -> None:
        super().__init__(start)
        if tick <= 0:
            raise SimulationError(f"wheel tick must be positive, got {tick!r}")
        if slots < 2:
            raise SimulationError(f"wheel needs >= 2 slots, got {slots!r}")
        self._tick = float(tick)
        self._slots = int(slots)
        #: tick index -> heap of entries within that tick
        self._buckets: dict[int, list[list]] = {}
        #: heap of tick indices that currently have a bucket
        self._tick_heap: list[int] = []
        #: entries at/past the horizon, ordered like the reference heap
        self._overflow: list[list] = []
        #: absolute virtual time of the overflow boundary
        self._horizon = (floor(self._now / self._tick)
                         + self._slots) * self._tick
        #: entries currently on the wheel (live + cancelled)
        self._size = 0
        self._spills = 0
        self._migrations = 0
        #: slab pools: spent 4-slot entry lists / emptied bucket lists
        self._entry_pool: list[list] = []
        self._bucket_pool: list[list] = []

    # -- observability --------------------------------------------------

    @property
    def pending(self) -> int:
        return self._size + len(self._overflow) - self._cancelled

    def stats(self) -> dict[str, Any]:
        data = super().stats()
        data["wheel_spills"] = self._spills
        data["wheel_migrations"] = self._migrations
        data["overflow_pending"] = len(self._overflow)
        data["wheel_buckets"] = len(self._buckets)
        return data

    # -- scheduling ------------------------------------------------------

    def call_at(self, when: float, fn: Callable[..., Any], *args: Any) -> Handle:
        if when < self._now:
            raise SimulationError(
                f"cannot schedule at {when!r}; virtual time is already {self._now!r}"
            )
        self._scheduled += 1
        when = float(when)
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = when
            entry[1] = next(self._seq)
            entry[2] = args
            entry[3] = fn
        else:
            entry = [when, next(self._seq), args, fn]
        if when >= self._horizon:
            heapq.heappush(self._overflow, entry)
            self._spills += 1
        else:
            key = floor(when / self._tick)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._bucket_pool.pop() if self._bucket_pool else []
                self._buckets[key] = bucket
                heapq.heappush(self._tick_heap, key)
            heapq.heappush(bucket, entry)
            self._size += 1
        return Handle(when, entry[1], entry, self)

    def _recycle(self, entry: list) -> None:
        """Return a spent entry list to the slab pool.

        The sequence number is left in place until the slot is reused:
        a stale :class:`Handle` checks it and no-ops.
        """
        entry[2] = ()
        entry[3] = None
        pool = self._entry_pool
        if len(pool) < self.POOL_MAX:
            pool.append(entry)

    def _retire_bucket(self, key: int, bucket: list) -> None:
        """Drop an emptied bucket; keep the list for reuse."""
        del self._buckets[key]
        heapq.heappop(self._tick_heap)
        if len(self._bucket_pool) < self.POOL_MAX:
            self._bucket_pool.append(bucket)

    def _advance_horizon(self) -> None:
        """The wheel drained to the overflow heap: move the window.

        Re-bases the near window at the earliest overflow entry and
        migrates everything now inside it onto the wheel. Guaranteed to
        make progress: the new horizon sits ``slots`` ticks past the
        earliest entry.
        """
        base = floor(self._overflow[0][0] / self._tick)
        self._horizon = (base + self._slots) * self._tick
        overflow = self._overflow
        while overflow and overflow[0][0] < self._horizon:
            entry = heapq.heappop(overflow)
            if entry[3] is None:
                self._cancelled -= 1
                self._recycle(entry)
                continue
            key = floor(entry[0] / self._tick)
            bucket = self._buckets.get(key)
            if bucket is None:
                bucket = self._bucket_pool.pop() if self._bucket_pool else []
                self._buckets[key] = bucket
                heapq.heappush(self._tick_heap, key)
            heapq.heappush(bucket, entry)
            self._size += 1
            self._migrations += 1

    def _pop_entry(self) -> list | None:
        """Remove and return the globally-next entry (live or dead)."""
        tick_heap = self._tick_heap
        while True:
            if tick_heap:
                key = tick_heap[0]
                bucket = self._buckets[key]
                entry = heapq.heappop(bucket)
                if not bucket:
                    self._retire_bucket(key, bucket)
                self._size -= 1
                return entry
            if self._overflow:
                # All wheel entries precede the horizon; all overflow
                # entries are at or past it — safe to re-base now.
                self._advance_horizon()
                continue
            return None

    def step(self) -> bool:
        while True:
            entry = self._pop_entry()
            if entry is None:
                return False
            fn = entry[3]
            if fn is None:
                self._cancelled -= 1
                self._recycle(entry)
                continue
            args = entry[2]
            self._now = entry[0]
            self._events_processed += 1
            self._recycle(entry)
            fn(*args)
            return True

    def _next_time(self) -> float | None:
        while True:
            if self._tick_heap:
                key = self._tick_heap[0]
                bucket = self._buckets[key]
                entry = bucket[0]
                if entry[3] is not None:
                    return entry[0]
                heapq.heappop(bucket)
                if not bucket:
                    self._retire_bucket(key, bucket)
                self._size -= 1
                self._cancelled -= 1
                self._recycle(entry)
                continue
            overflow = self._overflow
            if overflow:
                if overflow[0][3] is None:
                    self._recycle(heapq.heappop(overflow))
                    self._cancelled -= 1
                    continue
                self._advance_horizon()
                continue
            return None

    def _note_cancel(self) -> None:
        """Lazy cancel with a whole-structure sweep once dead dominates."""
        self._cancelled += 1
        self._cancels_total += 1
        total = self._size + len(self._overflow)
        if total <= self.COMPACT_MIN or self._cancelled * 2 <= total:
            return
        for key in list(self._buckets):
            bucket = [e for e in self._buckets[key] if e[3] is not None]
            if bucket:
                heapq.heapify(bucket)
                self._buckets[key] = bucket
            else:
                del self._buckets[key]
        self._tick_heap = sorted(self._buckets)
        self._overflow = [e for e in self._overflow if e[3] is not None]
        heapq.heapify(self._overflow)
        self._size = sum(len(b) for b in self._buckets.values())
        self._cancelled = 0
        self._compactions += 1


def make_simulator(scheduler: str = SCHEDULER_HEAP, start: float = 0.0,
                   wheel_tick: float = 1e-3,
                   wheel_slots: int = 4096) -> Simulator:
    """Build a scheduler backend by name (``"heap"`` or ``"wheel"``)."""
    if scheduler == SCHEDULER_HEAP:
        return Simulator(start)
    if scheduler == SCHEDULER_WHEEL:
        return WheelSimulator(start, tick=wheel_tick, slots=wheel_slots)
    raise SimulationError(
        f"unknown scheduler backend {scheduler!r}; "
        f"choose from {SCHEDULER_NAMES}")
