"""Seeded, named random streams for deterministic simulation.

Each consumer of randomness (a latency model, a workload generator, a fault
injector) asks the :class:`RngRegistry` for a stream by name. Stream seeds
are derived from the registry seed and the stream name, so adding a new
consumer never perturbs the draws of existing consumers — a property the
determinism tests assert.
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory for independent, reproducible random streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The same (seed, name) pair always yields an identically-seeded
        stream, independent of creation order.
        """
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, label: str) -> "RngRegistry":
        """Derive a child registry whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}/{label}".encode("utf-8")).digest()
        return RngRegistry(int.from_bytes(digest[:8], "big"))
