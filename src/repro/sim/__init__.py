"""Deterministic discrete-event simulation substrate.

This package provides the virtual-time execution environment that every
other subsystem of the library runs on: a scheduler
(:class:`~repro.sim.scheduler.Simulator`), generator-based processes
(:class:`~repro.sim.process.Process`), synchronisation primitives, seeded
random streams, and structured tracing.
"""

from repro.sim.primitives import Channel, Condition, Semaphore, SimFuture
from repro.sim.process import (
    Checkpoint,
    Process,
    Sleep,
    Syscall,
    Wait,
    WaitAll,
    spawn,
)
from repro.sim.rng import RngRegistry
from repro.sim.scheduler import (
    Handle,
    Simulator,
    WheelSimulator,
    make_simulator,
)
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Channel",
    "Checkpoint",
    "Condition",
    "Handle",
    "Process",
    "RngRegistry",
    "Semaphore",
    "SimFuture",
    "Simulator",
    "Sleep",
    "Syscall",
    "TraceRecord",
    "Tracer",
    "Wait",
    "WaitAll",
    "WheelSimulator",
    "make_simulator",
    "spawn",
]
