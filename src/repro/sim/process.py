"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator whose ``yield`` expressions are
*syscalls* against the virtual clock: sleep for some virtual time, wait on
a :class:`~repro.sim.primitives.SimFuture`, or yield control for one
scheduling round. Kernel services in this library (timer loops, master
handler threads, monitor servers, pagers) are written as processes.

Processes are interruptible: :meth:`Process.interrupt` throws
:class:`~repro.errors.Interrupted` into the generator at its current wait
point, which models the paper's requirement that an executing activity be
"stopped at the point of delivery" when an event arrives.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterable

from repro.errors import Interrupted, ProcessError
from repro.sim.primitives import SimFuture
from repro.sim.scheduler import Handle, Simulator


class Syscall:
    """Base class for values a process may yield."""

    __slots__ = ()


class Sleep(Syscall):
    """Suspend the process for ``delay`` seconds of virtual time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ProcessError(f"negative sleep {delay!r}")
        self.delay = float(delay)


class Wait(Syscall):
    """Suspend until the given future resolves; yields its value.

    If the future fails, the exception is re-raised inside the process.
    """

    __slots__ = ("future",)

    def __init__(self, future: SimFuture[Any]) -> None:
        self.future = future


class WaitAll(Syscall):
    """Suspend until every future in the collection resolves.

    Yields the list of results in input order. The first failure is
    re-raised inside the process.
    """

    __slots__ = ("futures",)

    def __init__(self, futures: Iterable[SimFuture[Any]]) -> None:
        self.futures = list(futures)


class Checkpoint(Syscall):
    """Yield control for one scheduling round without advancing the clock.

    This is an interruption point: pending interrupts are delivered here.
    """

    __slots__ = ()


ProcessBody = Generator[Syscall, Any, Any]


class Process:
    """A simulated process driving a generator of syscalls.

    Parameters
    ----------
    sim:
        The simulator providing virtual time.
    body:
        A generator yielding :class:`Syscall` values.
    name:
        Diagnostic name used in reprs and error messages.

    The process starts on the next scheduling round after construction.
    Completion (normal return, crash, or interruption that escapes the
    body) resolves :attr:`completion`.
    """

    def __init__(self, sim: Simulator, body: ProcessBody,
                 name: str = "process") -> None:
        if not hasattr(body, "send"):
            raise ProcessError(f"process body must be a generator, got {body!r}")
        self._sim = sim
        self._body = body
        self.name = name
        self.completion: SimFuture[Any] = SimFuture(sim)
        self._wait_handle: Handle | None = None
        self._pending_interrupt: list[object] = []
        self._waiting_on: SimFuture[Any] | None = None
        self._alive = True
        self._started = False
        sim.call_soon(self._step, None, None)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        state = "alive" if self._alive else "done"
        return f"<Process {self.name} {state}>"

    @property
    def alive(self) -> bool:
        return self._alive

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupted` into the process at its wait point.

        If the process is currently executing (between yields) the
        interrupt is delivered at its next suspension. Interrupting a
        finished process is a no-op.
        """
        if not self._alive:
            return
        self._pending_interrupt.append(cause)
        self._kick()

    def _kick(self) -> None:
        """Reschedule the step if the process is parked on a wait."""
        if self._wait_handle is not None:
            self._wait_handle.cancel()
            self._wait_handle = None
            self._sim.call_soon(self._step, None, None)
        elif self._waiting_on is not None:
            waited, self._waiting_on = self._waiting_on, None
            self._sim.call_soon(self._step_if_parked_on, waited)

    def _step_if_parked_on(self, waited: SimFuture[Any]) -> None:
        # The future callback may still fire later; _waiting_on being
        # cleared marks that this process no longer cares about it.
        self._step(None, None)

    def _step(self, value: Any, error: BaseException | None) -> None:
        if not self._alive:
            return
        self._started = True
        self._wait_handle = None
        self._waiting_on = None
        if self._pending_interrupt:
            cause = self._pending_interrupt.pop(0)
            error = Interrupted(cause)
            value = None
        try:
            if error is not None:
                syscall = self._body.throw(error)
            else:
                syscall = self._body.send(value)
        except StopIteration as stop:
            self._finish(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process crash is data
            self._finish(error=exc)
            return
        self._dispatch(syscall)

    def _dispatch(self, syscall: Syscall) -> None:
        if isinstance(syscall, Sleep):
            self._wait_handle = self._sim.call_after(
                syscall.delay, self._step, None, None)
        elif isinstance(syscall, Checkpoint):
            self._wait_handle = self._sim.call_soon(self._step, None, None)
        elif isinstance(syscall, Wait):
            self._park_on(syscall.future)
        elif isinstance(syscall, WaitAll):
            self._park_on_all(syscall.futures)
        else:
            self._finish(error=ProcessError(
                f"process {self.name!r} yielded unsupported value {syscall!r}"))

    def _park_on(self, future: SimFuture[Any]) -> None:
        self._waiting_on = future

        def resume(fut: SimFuture[Any]) -> None:
            if self._waiting_on is not fut:
                return  # interrupted away from this wait
            self._waiting_on = None
            if fut.failed or fut.cancelled:
                try:
                    fut.result()
                except BaseException as exc:  # noqa: BLE001
                    self._step(None, exc)
                return
            self._step(fut.result(), None)

        future.add_done_callback(resume)

    def _park_on_all(self, futures: list[SimFuture[Any]]) -> None:
        if not futures:
            self._wait_handle = self._sim.call_soon(self._step, [], None)
            return
        gate: SimFuture[list[Any]] = SimFuture(self._sim)
        remaining = [len(futures)]

        def one_done(fut: SimFuture[Any]) -> None:
            if gate.done:
                return
            if fut.failed or fut.cancelled:
                try:
                    fut.result()
                except BaseException as exc:  # noqa: BLE001
                    gate.fail(exc)
                return
            remaining[0] -= 1
            if remaining[0] == 0:
                gate.resolve([f.result() for f in futures])

        for fut in futures:
            fut.add_done_callback(one_done)
        self._park_on(gate)

    def _finish(self, value: Any = None,
                error: BaseException | None = None) -> None:
        self._alive = False
        self._body.close()
        if error is not None:
            self.completion.fail(error)
        else:
            self.completion.resolve(value)


def spawn(sim: Simulator, fn: Callable[..., ProcessBody], *args: Any,
          name: str | None = None, **kwargs: Any) -> Process:
    """Convenience: create a :class:`Process` from a generator function."""
    return Process(sim, fn(*args, **kwargs), name=name or fn.__name__)
