"""Synchronisation primitives for simulated code.

These mirror the familiar concurrency toolbox — futures, conditions,
semaphores, FIFO channels — but are driven entirely by the virtual clock of
a :class:`~repro.sim.scheduler.Simulator`. They are used both by simulated
kernel services (written as :class:`~repro.sim.process.Process` generators)
and by the thread driver in :mod:`repro.threads`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generic, TypeVar

from repro.errors import SimulationError
from repro.sim.scheduler import Simulator

T = TypeVar("T")

_PENDING = "pending"
_RESOLVED = "resolved"
_FAILED = "failed"
_CANCELLED = "cancelled"


class SimFuture(Generic[T]):
    """A one-shot container for a value produced later in virtual time.

    Callbacks added with :meth:`add_done_callback` run via ``call_soon`` so
    that resolution order never depends on Python stack depth.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._state = _PENDING
        self._value: T | None = None
        self._error: BaseException | None = None
        self._callbacks: list[Callable[[SimFuture[T]], None]] = []

    @property
    def done(self) -> bool:
        return self._state != _PENDING

    @property
    def cancelled(self) -> bool:
        return self._state == _CANCELLED

    @property
    def failed(self) -> bool:
        return self._state == _FAILED

    def resolve(self, value: T = None) -> None:
        """Complete the future successfully with ``value``."""
        self._complete(_RESOLVED, value=value)

    def fail(self, error: BaseException) -> None:
        """Complete the future with an exception."""
        if not isinstance(error, BaseException):
            raise SimulationError(f"fail() needs an exception, got {error!r}")
        self._complete(_FAILED, error=error)

    def cancel(self) -> bool:
        """Cancel the future if still pending. Returns True if cancelled."""
        if self.done:
            return False
        self._complete(_CANCELLED, error=SimulationError("future cancelled"))
        return True

    def result(self) -> T:
        """Return the value, raising if pending, failed, or cancelled."""
        if self._state == _PENDING:
            raise SimulationError("future is not resolved yet")
        if self._error is not None:
            raise self._error
        return self._value  # type: ignore[return-value]

    def add_done_callback(self, fn: Callable[["SimFuture[T]"], None]) -> None:
        """Run ``fn(self)`` once the future completes (soon, if already done)."""
        if self.done:
            self._sim.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def _complete(self, state: str, value: T | None = None,
                  error: BaseException | None = None) -> None:
        if self.done:
            raise SimulationError(f"future already {self._state}")
        self._state = state
        self._value = value
        self._error = error
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._sim.call_soon(fn, self)


class Condition:
    """A broadcast/signal wait-point over sim futures.

    ``wait()`` hands back a fresh :class:`SimFuture`; ``signal()`` resolves
    the oldest waiter, ``broadcast()`` resolves all of them.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._waiters: deque[SimFuture[Any]] = deque()

    @property
    def waiting(self) -> int:
        return sum(1 for w in self._waiters if not w.done)

    def wait(self) -> SimFuture[Any]:
        fut: SimFuture[Any] = SimFuture(self._sim)
        self._waiters.append(fut)
        return fut

    def signal(self, value: Any = None) -> bool:
        """Wake the oldest live waiter. Returns False if none was waiting."""
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done:
                fut.resolve(value)
                return True
        return False

    def broadcast(self, value: Any = None) -> int:
        """Wake every live waiter; returns how many were woken."""
        woken = 0
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done:
                fut.resolve(value)
                woken += 1
        return woken


class Semaphore:
    """A counting semaphore whose ``acquire`` returns a :class:`SimFuture`."""

    def __init__(self, sim: Simulator, value: int = 1) -> None:
        if value < 0:
            raise SimulationError(f"semaphore initial value {value} < 0")
        self._sim = sim
        self._value = value
        self._waiters: deque[SimFuture[None]] = deque()

    @property
    def value(self) -> int:
        return self._value

    def acquire(self) -> SimFuture[None]:
        fut: SimFuture[None] = SimFuture(self._sim)
        if self._value > 0:
            self._value -= 1
            fut.resolve(None)
        else:
            self._waiters.append(fut)
        return fut

    def try_acquire(self) -> bool:
        if self._value > 0:
            self._value -= 1
            return True
        return False

    def release(self) -> None:
        while self._waiters:
            fut = self._waiters.popleft()
            if not fut.done:
                fut.resolve(None)
                return
        self._value += 1


class Channel(Generic[T]):
    """An unbounded FIFO channel between simulated producers and consumers.

    ``get()`` returns a future resolved with the next item; items are
    delivered in FIFO order to getters in FIFO order.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._items: deque[T] = deque()
        self._getters: deque[SimFuture[T]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: T) -> None:
        while self._getters:
            fut = self._getters.popleft()
            if not fut.done:
                fut.resolve(item)
                return
        self._items.append(item)

    def get(self) -> SimFuture[T]:
        fut: SimFuture[T] = SimFuture(self._sim)
        if self._items:
            fut.resolve(self._items.popleft())
        else:
            self._getters.append(fut)
        return fut

    def drain(self) -> list[T]:
        """Remove and return all queued items without waiting."""
        items = list(self._items)
        self._items.clear()
        return items

    def reset(self) -> list[T]:
        """Drain all items AND forget all waiting getters.

        For consumer death (e.g. a node crash killing the thread parked
        in ``get()``): a dead consumer's future must not swallow the
        next ``put()``, which would silently lose the item.
        """
        items = self.drain()
        self._getters.clear()
        return items
