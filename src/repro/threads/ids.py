"""Thread and group identifiers.

"We assume that given the unique name of a thread, it is possible to find
the root node." (§7.1) — thread ids therefore *encode* the root node (the
node the thread was created on), which is where the path-following
locator starts walking.
"""

from __future__ import annotations

import itertools
import re
from dataclasses import dataclass

from repro.errors import ThreadError

_TID_RE = re.compile(r"^T(\d+)\.(\d+)$")
_GID_RE = re.compile(r"^G(\d+)\.(\d+)$")


@dataclass(frozen=True, order=True)
class ThreadId:
    """Globally unique thread name: root node + per-root sequence number."""

    root: int
    seq: int

    def __str__(self) -> str:
        return f"T{self.root}.{self.seq}"

    @classmethod
    def parse(cls, text: str) -> "ThreadId":
        match = _TID_RE.match(text)
        if match is None:
            raise ThreadError(f"malformed thread id {text!r}")
        return cls(root=int(match.group(1)), seq=int(match.group(2)))

    @property
    def multicast_group(self) -> str:
        """Name of this thread's multicast group (§7.1 third strategy)."""
        return f"thread:{self}"


@dataclass(frozen=True, order=True)
class GroupId:
    """Thread-group identifier (V-kernel style process groups, §5.3)."""

    root: int
    seq: int

    def __str__(self) -> str:
        return f"G{self.root}.{self.seq}"

    @classmethod
    def parse(cls, text: str) -> "GroupId":
        match = _GID_RE.match(text)
        if match is None:
            raise ThreadError(f"malformed group id {text!r}")
        return cls(root=int(match.group(1)), seq=int(match.group(2)))


class IdAllocator:
    """Per-node allocator for thread and group ids."""

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._tids = itertools.count(1)
        self._gids = itertools.count(1)

    def new_tid(self) -> ThreadId:
        return ThreadId(root=self.node_id, seq=next(self._tids))

    def new_gid(self) -> GroupId:
        return GroupId(root=self.node_id, seq=next(self._gids))
