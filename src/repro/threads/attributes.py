"""Thread attributes.

"Thread attributes contain information such as the connections to the I/O
channel that the thread is using, creator of the thread, consistency
labels for the thread, etc. Event information is a natural addition to
the attributes." (§3.1)

Attributes are the paper's central device: because the *same logical
thread* executes across objects and machines, state attached to the
thread — I/O connections, the event registry, handler chains, per-thread
memory, armed timers — is visible wherever it goes, and is inherited by
threads it spawns (§6.3: "Any subsequent thread spawned from the root
thread inherits the thread attributes (including the event registry and
the handler information).").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.events.handlers import HandlerChain, HandlerRegistration
from repro.objects.perthread import PerThreadMemory


class IoChannel:
    """A thread's connection to an I/O endpoint (an "X terminal window").

    The §3.1 example: output from any procedure the thread calls — local
    or in another object on another machine — lands on the same channel
    without explicit redirection, because the connection is a thread
    attribute.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.lines: list[tuple[float, str, str]] = []

    def write(self, time: float, tid: object, text: str) -> None:
        self.lines.append((time, str(tid), text))

    def text(self) -> str:
        return "\n".join(line for _, _, line in self.lines)

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<IoChannel {self.name} lines={len(self.lines)}>"


_timer_spec_ids = itertools.count(1)


@dataclass
class TimerSpec:
    """A timer registered in the thread's attribute list (§6.2).

    When the thread visits another node, "the thread attribute list is
    examined and the event registration information is recreated" — the
    invocation engine re-arms these specs on every node the thread
    enters and disarms them when it departs.
    """

    event: str
    interval: float
    recurring: bool = True
    user_data: Any = None
    spec_id: int = field(default_factory=lambda: next(_timer_spec_ids))


class ThreadAttributes:
    """Everything that travels with a logical thread."""

    def __init__(self, creator: object = None, group: object = None,
                 io_channel: IoChannel | None = None) -> None:
        self.creator = creator
        self.group = group
        self.io_channel = io_channel
        #: Consistency labels in the sense of [Chen 89]; opaque to us but
        #: carried and inherited.
        self.consistency_labels: dict[str, Any] = {}
        self.per_thread_memory = PerThreadMemory()
        #: event name -> LIFO chain of handler registrations (§4.2)
        self.handler_chains: dict[str, HandlerChain] = {}
        #: timers to (re-)arm wherever the thread executes (§6.2)
        self.timers: list[TimerSpec] = []

    # -- handler registry -------------------------------------------------

    def chain_for(self, event: str) -> HandlerChain:
        chain = self.handler_chains.get(event)
        if chain is None:
            chain = HandlerChain(event)
            self.handler_chains[event] = chain
        return chain

    def attach(self, registration: HandlerRegistration) -> None:
        self.chain_for(registration.event).push(registration)

    def detach_top(self, event: str) -> HandlerRegistration | None:
        chain = self.handler_chains.get(event)
        if chain is None or len(chain) == 0:
            return None
        return chain.pop()

    def detach(self, event: str, reg_id: int) -> bool:
        chain = self.handler_chains.get(event)
        return bool(chain and chain.remove(reg_id))

    def handlers_for(self, event: str) -> list[HandlerRegistration]:
        chain = self.handler_chains.get(event)
        return chain.in_order() if chain else []

    # -- timers ------------------------------------------------------------

    def add_timer(self, spec: TimerSpec) -> None:
        self.timers.append(spec)

    def remove_timer(self, spec_id: int) -> bool:
        for i, spec in enumerate(self.timers):
            if spec.spec_id == spec_id:
                del self.timers[i]
                return True
        return False

    # -- inheritance and migration ------------------------------------------

    def inherit(self) -> "ThreadAttributes":
        """Copy for a spawned child thread (§6.3 inheritance rule).

        Handler chains, per-thread memory, timers and labels are copied;
        the I/O channel is *shared* (the child writes to the same
        terminal), matching the paper's controlling-terminal example.
        """
        child = ThreadAttributes(creator=self.creator, group=self.group,
                                 io_channel=self.io_channel)
        child.consistency_labels = dict(self.consistency_labels)
        child.per_thread_memory = self.per_thread_memory.copy()
        child.handler_chains = {
            event: chain.copy() for event, chain in self.handler_chains.items()
        }
        child.timers = list(self.timers)
        return child

    @property
    def nominal_size(self) -> int:
        """Bytes charged when the attributes migrate with the thread."""
        chains = sum(len(c) for c in self.handler_chains.values())
        return (128 + 48 * chains + 24 * len(self.timers)
                + self.per_thread_memory.nominal_size)
