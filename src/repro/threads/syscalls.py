"""Syscalls yielded by user code running on distributed threads.

Entry points, handlers and per-thread procedures are generator functions;
each ``yield`` hands one of these request objects to the thread driver,
which performs the operation (possibly involving messages and virtual
latency) and resumes the generator with the result. Yield points are also
the instants at which pending events are delivered — the paper's
"the process is stopped at the point of delivery".

User code normally builds these through the :class:`~repro.threads.context.Ctx`
facade rather than instantiating them directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ProcessError
from repro.events.block import EventBlock
from repro.events.handlers import HandlerContext
from repro.objects.capability import Capability
from repro.sim.primitives import SimFuture
from repro.threads.attributes import TimerSpec


class ThreadSyscall:
    """Base class for thread-level syscalls."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(ThreadSyscall):
    """Burn ``seconds`` of virtual CPU time on the current node."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ProcessError(f"negative compute time {self.seconds!r}")


@dataclass(frozen=True)
class SleepFor(ThreadSyscall):
    """Block for ``seconds`` of virtual time (interruptible by events)."""

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds < 0:
            raise ProcessError(f"negative sleep {self.seconds!r}")


@dataclass(frozen=True)
class Invoke(ThreadSyscall):
    """Synchronously invoke an entry point of another object.

    Under RPC transport the logical thread migrates to the object's home
    node; under DSM transport the entry runs locally and the object's
    pages are faulted in. Yields the entry's return value.
    """

    cap: Capability
    entry: str
    args: tuple = ()
    #: internal: resolve the name through handler_fn (unscheduled
    #: invocation of a private handler method, §4.3)
    as_handler: bool = False
    #: internal: extra payload for handler invocations (the event block)
    handler_block: EventBlock | None = None


@dataclass(frozen=True)
class InvokeAsync(ThreadSyscall):
    """Spawn a new thread to invoke an entry point (asynchronous invocation).

    Yields an :class:`AsyncHandle`. If ``claimable`` the handle carries a
    future for the result; non-claimable invocations are fire-and-forget
    (the system "may not keep track" of them, §7.1).
    """

    cap: Capability
    entry: str
    args: tuple = ()
    claimable: bool = True


@dataclass(frozen=True)
class AsyncHandle:
    """Result of :class:`InvokeAsync`: the spawned thread and its future."""

    tid: Any
    result: SimFuture | None


@dataclass(frozen=True)
class WaitFor(ThreadSyscall):
    """Block until a :class:`SimFuture` resolves (interruptible)."""

    future: SimFuture


@dataclass(frozen=True)
class CreateObject(ThreadSyscall):
    """Create and place a new distributed object; yields its capability."""

    cls: type
    node: int | None = None
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    transport: str | None = None


@dataclass(frozen=True)
class AttachHandler(ThreadSyscall):
    """The ``attach_handler`` system call of §5.2.

    Yields the registration id (usable with :class:`DetachHandler`).
    """

    event: str
    context: HandlerContext
    #: ATTACHING/BUDDY: method name on the target object
    fn_name: str | None = None
    #: BUDDY: the buddy object's capability (ATTACHING uses the current one)
    target: Capability | None = None
    #: CURRENT: a callable installed into per-thread memory, or the name
    #: of an already-installed procedure
    procedure: Any = None
    #: Per-registration watchdog deadline overriding ``handler_deadline``
    deadline: float | None = None


@dataclass(frozen=True)
class DetachHandler(ThreadSyscall):
    """Remove a handler registration (top of chain, or a specific one)."""

    event: str
    reg_id: int | None = None


@dataclass(frozen=True)
class RegisterEvent(ThreadSyscall):
    """Register a user event name with the operating system (§3)."""

    name: str


@dataclass(frozen=True)
class Raise(ThreadSyscall):
    """The ``raise`` / ``raise_and_wait`` system call of §5.3.

    ``target`` is a ThreadId, GroupId or Capability/oid. Asynchronous
    raises yield immediately (with the number of recipients targeted);
    synchronous raises block until a handler resumes the raiser and yield
    the handler's value.
    """

    event: str
    target: Any
    user_data: Any = None
    synchronous: bool = False


@dataclass(frozen=True)
class ResumeRaiser(ThreadSyscall):
    """Explicitly resume the synchronously-blocked raiser of an event.

    Handlers yield this before doing further (possibly long) work; if a
    handler never does, the delivery engine resumes the raiser when the
    chain completes.
    """

    block: EventBlock
    value: Any = None


@dataclass(frozen=True)
class SetThreadTimer(ThreadSyscall):
    """Add a timer to the thread's attribute list (§6.2); yields spec id."""

    spec: TimerSpec


@dataclass(frozen=True)
class CancelThreadTimer(ThreadSyscall):
    """Remove an attribute timer; yields True if found."""

    spec_id: int


@dataclass(frozen=True)
class ReadField(ThreadSyscall):
    """Read a field of the current DSM-transport object (may page-fault)."""

    name: str


@dataclass(frozen=True)
class WriteField(ThreadSyscall):
    """Write a field of the current DSM-transport object (may page-fault)."""

    name: str
    value: Any


@dataclass(frozen=True)
class IoWrite(ThreadSyscall):
    """Write a line to the thread's I/O channel attribute (§3.1)."""

    text: str


@dataclass(frozen=True)
class InstallPage(ThreadSyscall):
    """Pager API (§6.4): supply data for a faulted page of a DSM object.

    With ``private_for`` the data becomes a weakly-consistent copy private
    to that node ("the server can supply a copy of the page"); otherwise
    the page is materialised globally.
    """

    oid: int
    page_id: int
    values: dict
    private_for: int | None = None


@dataclass(frozen=True)
class MergePages(ThreadSyscall):
    """Pager API (§6.4): "later merge the pages" — fold private copies
    back into the authoritative page. Yields the merged values."""

    oid: int
    page_id: int


@dataclass(frozen=True)
class NewGroup(ThreadSyscall):
    """Create a fresh thread group and move this thread into it."""


@dataclass(frozen=True)
class JoinGroup(ThreadSyscall):
    """Move this thread into an existing group ("threads belonging to an
    application can form a thread group", §5.3). Yields the group id."""

    gid: Any


@dataclass(frozen=True)
class LeaveGroup(ThreadSyscall):
    """Leave the current group (if any). Yields the old group id."""


@dataclass(frozen=True)
class Recv(ThreadSyscall):
    """Receive the next item from a sim channel (blocking, interruptible)."""

    channel: Any
