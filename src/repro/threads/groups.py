"""Thread groups.

"Threads belonging to an application can form a thread group and [an]
event posted to a thread group will be sent to all the members of the
group. This is based on the notion of process groups [Cheriton 85]."
(§5.3)

The registry is cluster-level: group membership changes are metadata
updates piggybacked on thread creation/termination, which the paper never
charges for. Event *delivery* to each member is fully charged (one locate
plus post per member).
"""

from __future__ import annotations

from repro.errors import GroupError
from repro.threads.ids import GroupId, ThreadId


class GroupRegistry:
    """Cluster-wide map of thread groups to member thread ids."""

    def __init__(self) -> None:
        self._members: dict[GroupId, set[ThreadId]] = {}
        #: memoised fan-out order per group — the delivery engine posts
        #: to members in sorted order on every multicast, so the sort is
        #: paid once per membership change instead of once per post
        self._sorted: dict[GroupId, tuple[ThreadId, ...]] = {}

    def create(self, gid: GroupId) -> None:
        if gid in self._members:
            raise GroupError(f"group {gid} already exists")
        self._members[gid] = set()

    def exists(self, gid: GroupId) -> bool:
        return gid in self._members

    def add(self, gid: GroupId, tid: ThreadId) -> None:
        members = self._members.get(gid)
        if members is None:
            raise GroupError(f"group {gid} does not exist")
        members.add(tid)
        self._sorted.pop(gid, None)

    def remove(self, gid: GroupId, tid: ThreadId) -> bool:
        """Drop a member; empty groups are garbage-collected."""
        members = self._members.get(gid)
        if members is None or tid not in members:
            return False
        members.discard(tid)
        self._sorted.pop(gid, None)
        if not members:
            del self._members[gid]
        return True

    def members(self, gid: GroupId) -> frozenset[ThreadId]:
        members = self._members.get(gid)
        if members is None:
            raise GroupError(f"group {gid} does not exist")
        return frozenset(members)

    def members_or_empty(self, gid: GroupId) -> frozenset[ThreadId]:
        return frozenset(self._members.get(gid, frozenset()))

    def sorted_members(self, gid: GroupId) -> tuple[ThreadId, ...]:
        """Members in fan-out (sorted) order; cached until membership
        changes. Empty tuple for unknown groups."""
        cached = self._sorted.get(gid)
        if cached is None:
            cached = tuple(sorted(self._members.get(gid, ())))
            self._sorted[gid] = cached
        return cached

    def groups(self) -> list[GroupId]:
        return sorted(self._members)
