"""Per-activation execution context handed to user code.

Every entry point, object handler and per-thread procedure receives a
:class:`Ctx` as its first argument. It has two faces:

* **syscall builders** — methods returning request objects to ``yield``
  (``result = yield ctx.invoke(cap, "work", 1)``);
* **immediate accessors** — cheap reads of thread/cluster state that need
  no kernel involvement (``ctx.tid``, ``ctx.now``, ``ctx.lookup(name)``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.events.block import EventBlock
from repro.events.handlers import HandlerContext
from repro.objects.capability import Capability
from repro.sim.primitives import SimFuture
from repro.threads import syscalls as sc
from repro.threads.attributes import ThreadAttributes, TimerSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.threads.thread import Activation, DThread


class Ctx:
    """Execution context bound to one activation of one thread."""

    def __init__(self, thread: "DThread", activation: "Activation") -> None:
        self._thread = thread
        self._activation = activation

    # ------------------------------------------------------------------
    # immediate accessors
    # ------------------------------------------------------------------

    @property
    def tid(self):
        """This thread's id (the suspended thread's id inside a
        surrogate-executed handler)."""
        return self._thread.impersonates or self._thread.tid

    @property
    def real_tid(self):
        """The executing thread's own id, surrogate or not."""
        return self._thread.tid

    @property
    def gid(self):
        """This thread's group id (or None)."""
        return self._thread.attributes.group

    @property
    def node(self) -> int:
        """Node this activation executes on."""
        return self._activation.node

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._thread.cluster.sim.now

    @property
    def current_object(self):
        """The object this activation runs in (None in bare procedures)."""
        return self._activation.obj

    @property
    def self_cap(self) -> Capability | None:
        obj = self._activation.obj
        return obj.cap if obj is not None else None

    @property
    def attributes(self) -> ThreadAttributes:
        """The thread's traveling attributes (visible everywhere, §3.1)."""
        return self._thread.attributes

    @property
    def event_block(self) -> EventBlock | None:
        """While handling an event: the block being handled, else None."""
        return self._activation.event_block

    def lookup(self, name: str) -> Any:
        """Name-service lookup (idealised, zero cost)."""
        return self._thread.cluster.names.lookup(name)

    def lookup_or_none(self, name: str) -> Any:
        return self._thread.cluster.names.lookup_or_none(name)

    # ------------------------------------------------------------------
    # syscall builders (yield the return value)
    # ------------------------------------------------------------------

    def compute(self, seconds: float) -> sc.Compute:
        return sc.Compute(seconds)

    def sleep(self, seconds: float) -> sc.SleepFor:
        return sc.SleepFor(seconds)

    def invoke(self, cap: Capability, entry: str, *args: Any) -> sc.Invoke:
        return sc.Invoke(cap=cap, entry=entry, args=args)

    def invoke_async(self, cap: Capability, entry: str, *args: Any,
                     claimable: bool = True) -> sc.InvokeAsync:
        return sc.InvokeAsync(cap=cap, entry=entry, args=args,
                              claimable=claimable)

    def wait(self, future: SimFuture) -> sc.WaitFor:
        return sc.WaitFor(future)

    def recv(self, channel: Any) -> sc.Recv:
        return sc.Recv(channel)

    def create(self, cls: type, *args: Any, node: int | None = None,
               transport: str | None = None, **kwargs: Any) -> sc.CreateObject:
        return sc.CreateObject(cls=cls, node=node, args=args, kwargs=kwargs,
                               transport=transport)

    def attach_handler(self, event: str,
                       handler: Any,
                       context: HandlerContext | None = None,
                       buddy: Capability | None = None,
                       deadline: float | None = None) -> sc.AttachHandler:
        """Build the §5.2 ``attach_handler`` call.

        ``handler`` may be:

        * a **method name** (string) on the current object — attaching-
          object context, or buddy context when ``buddy`` is given;
        * a **callable** — installed into per-thread memory and executed
          in the current object's context at delivery time
          (``OWN_CONTEXT``).

        ``context`` overrides the inferred context when both
        interpretations are possible. ``deadline`` sets a per-
        registration watchdog deadline overriding ``handler_deadline``.
        """
        if callable(handler) and not isinstance(handler, str):
            fn: Callable = handler
            return sc.AttachHandler(event=event,
                                    context=HandlerContext.CURRENT,
                                    procedure=fn, deadline=deadline)
        if buddy is not None:
            return sc.AttachHandler(event=event, context=HandlerContext.BUDDY,
                                    fn_name=str(handler), target=buddy,
                                    deadline=deadline)
        return sc.AttachHandler(
            event=event,
            context=context or HandlerContext.ATTACHING,
            fn_name=str(handler), deadline=deadline)

    def detach_handler(self, event: str,
                       reg_id: int | None = None) -> sc.DetachHandler:
        return sc.DetachHandler(event=event, reg_id=reg_id)

    def register_event(self, name: str) -> sc.RegisterEvent:
        return sc.RegisterEvent(name)

    def raise_event(self, event: str, target: Any,
                    user_data: Any = None) -> sc.Raise:
        """Asynchronous ``raise(e, tid|gtid|oid)`` (§5.3)."""
        return sc.Raise(event=event, target=target, user_data=user_data,
                        synchronous=False)

    def raise_and_wait(self, event: str, target: Any,
                       user_data: Any = None) -> sc.Raise:
        """Synchronous ``raise_and_wait(e, tid|gtid|oid)`` (§5.3)."""
        return sc.Raise(event=event, target=target, user_data=user_data,
                        synchronous=True)

    def resume_raiser(self, block: EventBlock,
                      value: Any = None) -> sc.ResumeRaiser:
        return sc.ResumeRaiser(block=block, value=value)

    def set_timer(self, interval: float, event: str = "TIMER",
                  recurring: bool = True,
                  user_data: Any = None) -> sc.SetThreadTimer:
        return sc.SetThreadTimer(TimerSpec(event=event, interval=interval,
                                           recurring=recurring,
                                           user_data=user_data))

    def cancel_timer(self, spec_id: int) -> sc.CancelThreadTimer:
        return sc.CancelThreadTimer(spec_id)

    def read(self, name: str) -> sc.ReadField:
        return sc.ReadField(name)

    def write(self, name: str, value: Any) -> sc.WriteField:
        return sc.WriteField(name, value)

    def install_page(self, oid: int, page_id: int, values: dict,
                     private_for: int | None = None) -> sc.InstallPage:
        return sc.InstallPage(oid=oid, page_id=page_id, values=values,
                              private_for=private_for)

    def merge_pages(self, oid: int, page_id: int) -> sc.MergePages:
        return sc.MergePages(oid=oid, page_id=page_id)

    def io_write(self, text: str) -> sc.IoWrite:
        return sc.IoWrite(text)

    def new_group(self) -> sc.NewGroup:
        return sc.NewGroup()

    def join_group(self, gid) -> sc.JoinGroup:
        return sc.JoinGroup(gid)

    def leave_group(self) -> sc.LeaveGroup:
        return sc.LeaveGroup()
