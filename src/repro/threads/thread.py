"""The distributed logical thread and its driver.

A :class:`DThread` is the paper's *logical thread*: one flow of control
that crosses object and machine boundaries via invocations (§2). Its call
stack is a list of :class:`Activation` records, each pinned to the node it
executes on; the innermost activation's node is the thread's *current
location* — the thing the §7.1 locators hunt for.

The driver resumes the innermost activation's generator with the result
of its last syscall, receives the next syscall, and dispatches it —
simple ones here, invocations to the cluster's invocation engine, event
operations to the event manager. Each resumption is an *interruption
point*: if event notices are pending, the thread is suspended and the
delivery engine runs the handler chain before user code continues
("if an event is delivered to an executing thread, the process is
stopped at the point of delivery", §3).
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Any

from repro.errors import (
    ProcessError,
    SimulationError,
    ThreadError,
    ThreadTerminated,
)
from repro.events.block import EventBlock, FrameInfo, ThreadSnapshot
from repro.sim.primitives import SimFuture
from repro.threads import syscalls as sc
from repro.threads.attributes import ThreadAttributes
from repro.threads.context import Ctx
from repro.threads.ids import ThreadId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.boot import Cluster
    from repro.objects.base import DistObject

# -- thread lifecycle states -------------------------------------------------

NEW = "new"
#: A driver step is scheduled or executing; the continuation is internal.
RUNNING = "running"
#: Waiting for an external completion (reply, sleep, page, resume, ...).
BLOCKED = "blocked"
TERMINATING = "terminating"
DONE = "done"
FAILED = "failed"
TERMINATED = "terminated"

_FINISHED = (DONE, FAILED, TERMINATED)

#: Thread kinds.
KIND_USER = "user"
#: Surrogate threads execute thread-based handlers on behalf of a
#: suspended thread, taking on its attributes (§6.1).
KIND_SURROGATE = "surrogate"
#: Kernel threads serve object-based events (§7's master handler thread).
KIND_KERNEL = "kernel"

_activation_ids = itertools.count(1)


class Activation:
    """One frame of a distributed thread's stack."""

    __slots__ = ("obj", "entry", "gen", "node", "steps", "event_block",
                 "is_remote", "caller_node", "act_id", "ctx")

    def __init__(self, obj: "DistObject | None", entry: str, gen: Any,
                 node: int, is_remote: bool = False,
                 caller_node: int | None = None,
                 event_block: EventBlock | None = None) -> None:
        self.obj = obj
        self.entry = entry
        self.gen = gen
        self.node = node
        self.steps = 0
        self.event_block = event_block
        self.is_remote = is_remote
        self.caller_node = caller_node
        self.act_id = next(_activation_ids)
        self.ctx: Ctx | None = None

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        where = f"oid={self.obj.oid}" if self.obj is not None else "proc"
        return f"<Activation {where}.{self.entry}@{self.node}>"


class DThread:
    """A logical thread spanning objects and nodes."""

    def __init__(self, cluster: "Cluster", tid: ThreadId,
                 attributes: ThreadAttributes,
                 kind: str = KIND_USER) -> None:
        self.cluster = cluster
        self.tid = tid
        self.attributes = attributes
        self.kind = kind
        #: for surrogates: the suspended thread this one acts for (its
        #: tid is what user code sees via ctx.tid)
        self.impersonates = None
        self.state = NEW
        self.frames: list[Activation] = []
        self.completion: SimFuture[Any] = SimFuture(cluster.sim)
        #: pending event notices queued for this thread (FIFO; delivery
        #: pops from the left, so a deque keeps each pop O(1))
        self.pending_notices: deque[Any] = deque()
        #: true while the delivery engine owns the thread
        self.suspended_by_event = False
        #: continuation that arrived while suspended
        self._stash: tuple[Any, BaseException | None] | None = None
        #: description of the external completion we are blocked on
        self._wait: dict[str, Any] | None = None
        #: epoch guard: stale completions from a cancelled wait are dropped
        self._wait_epoch = 0
        #: epoch guard for scheduled driver steps (bumped on abort/terminate)
        self._step_epoch = 0
        #: timers armed on the current node: spec_id -> (node, timer_id)
        self.armed_timers: dict[int, tuple[int, int]] = {}
        #: event currently being delivered to this thread (None otherwise)
        self.delivering_event: str | None = None
        #: the block whose handler chain is running (surfaced as a
        #: dead-target notice if the thread dies mid-delivery)
        self.delivering_block: Any = None
        #: block ids already accepted, bounded FIFO (suppresses network
        #: duplicates so handlers run exactly once)
        self._seen_blocks: set[int] = set()
        self._seen_order: deque[int] = deque()
        #: exit info for diagnostics
        self.exit_reason: str | None = None

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        return f"<DThread {self.tid} {self.state} depth={len(self.frames)}>"

    @property
    def sim(self):
        return self.cluster.sim

    @property
    def alive(self) -> bool:
        return self.state not in _FINISHED

    @property
    def current_node(self) -> int:
        """Node of the innermost activation (root node when empty)."""
        if self.frames:
            return self.frames[-1].node
        return self.tid.root

    @property
    def current_object(self) -> "DistObject | None":
        if self.frames:
            return self.frames[-1].obj
        return None

    @property
    def wait_kind(self) -> str | None:
        return self._wait["kind"] if self._wait else None

    @property
    def dying(self) -> bool:
        """True when termination is underway or unavoidable.

        Besides the TERMINATING state this covers a queued or currently-
        delivering TERMINATE/QUIT: resource grants (locks, …) handed to
        such a thread would be consumed by a corpse — its cleanup chain
        has already run or is running past the resource's handler.
        """
        if not self.alive or self.state == TERMINATING:
            return True
        fatal = ("TERMINATE", "QUIT")
        if self.delivering_event in fatal:
            return True
        return any(block.event in fatal for block in self.pending_notices)

    def snapshot(self) -> ThreadSnapshot:
        """The "registers" put into event blocks (§4.1)."""
        frames = tuple(
            FrameInfo(oid=f.obj.oid if f.obj is not None else -1,
                      entry=f.entry, node=f.node, steps=f.steps)
            for f in self.frames)
        return ThreadSnapshot(tid=self.tid, state=self.state,
                              node=self.current_node, frames=frames)

    # ------------------------------------------------------------------
    # frame management (used by the invocation engine)
    # ------------------------------------------------------------------

    def push_frame(self, activation: Activation) -> None:
        activation.ctx = Ctx(self, activation)
        self.frames.append(activation)

    def pop_frame(self) -> Activation:
        if not self.frames:
            raise ThreadError(f"{self.tid}: pop from empty frame stack")
        return self.frames.pop()

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def schedule_step(self, value: Any = None,
                      error: BaseException | None = None) -> None:
        """Arrange for the driver to resume the innermost frame."""
        self.state = RUNNING
        self.sim.call_soon(self._step, value, error, self._step_epoch)

    def schedule_step_after(self, delay: float, value: Any = None,
                            error: BaseException | None = None) -> None:
        """Resume the innermost frame after ``delay`` of virtual time."""
        self.state = RUNNING
        self.sim.call_after(delay, self._step, value, error, self._step_epoch)

    def cancel_pending_steps(self) -> None:
        """Invalidate any scheduled driver steps (used by abort/terminate)."""
        self._step_epoch += 1

    def resume_with(self, value: Any = None,
                    error: BaseException | None = None,
                    epoch: int | None = None) -> None:
        """External completion path (replies, sleeps, resumes, pages).

        ``epoch`` (when provided) must match the wait epoch the completion
        was issued for; stale completions of cancelled waits are dropped.
        """
        if not self.alive:
            return
        if epoch is not None and epoch != self._wait_epoch:
            return
        self._wait = None
        if self.suspended_by_event or self.state == TERMINATING:
            self._set_stash(value, error)
            return
        self.schedule_step(value, error)

    def _set_stash(self, value: Any, error: BaseException | None) -> None:
        if self._stash is not None:
            raise SimulationError(
                f"{self.tid}: second continuation while suspended")
        self._stash = (value, error)

    def take_stash(self) -> tuple[Any, BaseException | None] | None:
        stash, self._stash = self._stash, None
        return stash

    def block(self, kind: str, cancel: Any = None) -> int:
        """Record that the thread now waits for an external completion.

        Returns the wait epoch to tag the eventual completion with.
        """
        self.state = BLOCKED
        self._wait_epoch += 1
        self._wait = {"kind": kind, "cancel": cancel}
        return self._wait_epoch

    def cancel_wait(self) -> None:
        """Abandon the current wait (used by termination)."""
        if self._wait is None:
            return
        cancel = self._wait.get("cancel")
        self._wait = None
        self._wait_epoch += 1
        if cancel is not None:
            cancel()

    def _step(self, value: Any, error: BaseException | None,
              step_epoch: int | None = None) -> None:
        if step_epoch is not None and step_epoch != self._step_epoch:
            return
        if not self.alive or self.state == TERMINATING:
            return
        if self.suspended_by_event:
            self._set_stash(value, error)
            return
        if self.pending_notices:
            self._set_stash(value, error)
            self.cluster.events.start_delivery(self)
            return
        if not self.frames:
            # The first invocation failed before any activation existed
            # (unknown object/entry, bad arity): the error is the
            # thread's outcome.
            self.cluster.invoker.thread_result_with_no_frames(self, value,
                                                              error)
            return
        frame = self.frames[-1]
        try:
            if error is not None:
                syscall = frame.gen.throw(error)
            else:
                syscall = frame.gen.send(value)
        except StopIteration as stop:
            self.cluster.invoker.frame_returned(self, stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - user code may fail
            self.cluster.events.on_frame_exception(self, frame, exc)
            return
        frame.steps += 1
        self._dispatch(frame, syscall)

    # ------------------------------------------------------------------
    # syscall dispatch
    # ------------------------------------------------------------------

    def _dispatch(self, frame: Activation, syscall: Any) -> None:
        cluster = self.cluster
        if isinstance(syscall, sc.Compute):
            # CPU burn: continuation stays internal, state stays RUNNING;
            # events queued meanwhile are delivered at the next yield.
            self.schedule_step_after(syscall.seconds)
        elif isinstance(syscall, sc.SleepFor):
            epoch = self.block("sleep")
            handle = self.sim.call_after(
                syscall.seconds, self.resume_with, None, None, epoch)
            self._wait["cancel"] = handle.cancel
        elif isinstance(syscall, sc.WaitFor):
            self._wait_on_future(syscall.future)
        elif isinstance(syscall, sc.Recv):
            self._wait_on_future(syscall.channel.get())
        elif isinstance(syscall, sc.Invoke):
            cluster.invoker.invoke(self, syscall)
        elif isinstance(syscall, sc.InvokeAsync):
            cluster.invoker.invoke_async(self, syscall)
        elif isinstance(syscall, sc.CreateObject):
            cluster.invoker.create_object_from_thread(self, syscall)
        elif isinstance(syscall, sc.AttachHandler):
            cluster.events.attach_from_thread(self, frame, syscall)
        elif isinstance(syscall, sc.DetachHandler):
            detached = (self.attributes.detach(syscall.event, syscall.reg_id)
                        if syscall.reg_id is not None
                        else self.attributes.detach_top(syscall.event)
                        is not None)
            self.schedule_step(detached, None)
        elif isinstance(syscall, sc.RegisterEvent):
            self._register_event(syscall.name)
        elif isinstance(syscall, sc.Raise):
            cluster.events.raise_from_thread(self, syscall)
        elif isinstance(syscall, sc.ResumeRaiser):
            cluster.events.resume_raiser(syscall.block, syscall.value)
            self.schedule_step(None, None)
        elif isinstance(syscall, sc.SetThreadTimer):
            cluster.events.add_thread_timer(self, syscall.spec)
            self.schedule_step(syscall.spec.spec_id, None)
        elif isinstance(syscall, sc.CancelThreadTimer):
            removed = cluster.events.remove_thread_timer(self, syscall.spec_id)
            self.schedule_step(removed, None)
        elif isinstance(syscall, sc.ReadField):
            cluster.dsm.field_access(self, frame, syscall.name, None, False)
        elif isinstance(syscall, sc.WriteField):
            cluster.dsm.field_access(self, frame, syscall.name,
                                     syscall.value, True)
        elif isinstance(syscall, sc.InstallPage):
            self._pager_call(cluster.dsm.install_page, syscall.oid,
                             syscall.page_id, syscall.values,
                             syscall.private_for)
        elif isinstance(syscall, sc.MergePages):
            self._pager_call(cluster.dsm.merge_pages, syscall.oid,
                             syscall.page_id)
        elif isinstance(syscall, sc.IoWrite):
            self._io_write(syscall.text)
        elif isinstance(syscall, sc.NewGroup):
            self._new_group()
        elif isinstance(syscall, sc.JoinGroup):
            self._join_group(syscall.gid)
        elif isinstance(syscall, sc.LeaveGroup):
            self._leave_group()
        else:
            self.schedule_step(None, ProcessError(
                f"{self.tid} yielded unsupported value {syscall!r}"))

    def _wait_on_future(self, future: SimFuture[Any]) -> None:
        epoch = self.block("future")

        def done(fut: SimFuture[Any]) -> None:
            if fut.failed or fut.cancelled:
                try:
                    fut.result()
                except BaseException as exc:  # noqa: BLE001
                    self.resume_with(None, exc, epoch)
                return
            self.resume_with(fut.result(), None, epoch)

        future.add_done_callback(done)

    def _pager_call(self, fn: Any, *args: Any) -> None:
        try:
            result = fn(*args)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self.schedule_step(None, exc)
            return
        self.schedule_step(result, None)

    def _register_event(self, name: str) -> None:
        try:
            self.cluster.names.register_event(name, registrar=self.tid)
        except BaseException as exc:  # noqa: BLE001
            self.schedule_step(None, exc)
            return
        self.schedule_step(None, None)

    def _io_write(self, text: str) -> None:
        channel = self.attributes.io_channel
        if channel is not None:
            channel.write(self.sim.now, self.tid, text)
        self.schedule_step(None, None)

    def _new_group(self) -> None:
        cluster = self.cluster
        kernel = cluster.kernels[self.current_node]
        gid = kernel.id_allocator.new_gid()
        cluster.groups.create(gid)
        old = self.attributes.group
        if old is not None:
            cluster.groups.remove(old, self.tid)
        cluster.groups.add(gid, self.tid)
        self.attributes.group = gid
        self.schedule_step(gid, None)

    def _join_group(self, gid: Any) -> None:
        cluster = self.cluster
        try:
            cluster.groups.members(gid)  # validates existence
            old = self.attributes.group
            if old is not None:
                cluster.groups.remove(old, self.tid)
            cluster.groups.add(gid, self.tid)
            self.attributes.group = gid
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            self.schedule_step(None, exc)
            return
        self.schedule_step(gid, None)

    def _leave_group(self) -> None:
        old = self.attributes.group
        if old is not None:
            self.cluster.groups.remove(old, self.tid)
            self.attributes.group = None
        self.schedule_step(old, None)

    # ------------------------------------------------------------------
    # event integration
    # ------------------------------------------------------------------

    def accept_block(self, block_id: int, window: int = 256) -> bool:
        """Record a block id; False if this thread already accepted it.

        The channel layer deduplicates per-link, but a retried locate can
        deliver the same block along a different path (e.g. a hint chase
        and a broadcast fallback both landing). This per-thread window is
        the last line of the exactly-once-execution guarantee.
        """
        if block_id in self._seen_blocks:
            return False
        self._seen_blocks.add(block_id)
        self._seen_order.append(block_id)
        while len(self._seen_order) > window:
            self._seen_blocks.discard(self._seen_order.popleft())
        return True

    def notice_arrived(self) -> None:
        """The event manager queued a notice; begin delivery if possible."""
        if not self.alive or self.state == TERMINATING:
            return
        if self.suspended_by_event:
            return  # current delivery will drain the queue
        if self.state == BLOCKED:
            # Suspended at its wait point immediately.
            self.cluster.events.start_delivery(self)
        # RUNNING / NEW: the next _step checks pending_notices.

    def finish(self, value: Any = None, error: BaseException | None = None,
               state: str = DONE) -> None:
        """Mark the thread finished and resolve its completion future."""
        if not self.alive:
            return
        self.state = state
        self.exit_reason = repr(error) if error is not None else "returned"
        if error is not None:
            self.completion.fail(error)
        else:
            self.completion.resolve(value)

    def unwind_close(self, frame: Activation) -> BaseException | None:
        """Throw ThreadTerminated into one frame during termination.

        User ``finally`` blocks run; a frame that *catches* the
        termination and keeps yielding is forcibly closed (cleanup work
        belongs in TERMINATE handlers, not in entry-point ``except``
        clauses). Returns the exception the frame escaped with, if any
        interesting one.
        """
        try:
            frame.gen.throw(ThreadTerminated(f"{self.tid} terminated"))
        except (StopIteration, ThreadTerminated):
            return None
        except BaseException as exc:  # noqa: BLE001 - cleanup crash
            return exc
        # The generator swallowed the termination and yielded again.
        frame.gen.close()
        return None
