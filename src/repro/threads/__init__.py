"""Distributed logical threads: ids, attributes, groups, the driver."""

from repro.threads.attributes import IoChannel, ThreadAttributes, TimerSpec
from repro.threads.context import Ctx
from repro.threads.groups import GroupRegistry
from repro.threads.ids import GroupId, IdAllocator, ThreadId
from repro.threads.thread import DThread

__all__ = [
    "Ctx",
    "DThread",
    "GroupId",
    "GroupRegistry",
    "IdAllocator",
    "IoChannel",
    "ThreadAttributes",
    "ThreadId",
    "TimerSpec",
]
