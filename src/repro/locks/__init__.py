"""Distributed lock management with TERMINATE-chained cleanup (§4.2)."""

from repro.locks.cleanup import CLEANUP_EVENTS, chain_cleanup, chain_unlock, unchain
from repro.locks.manager import LockManager

__all__ = ["CLEANUP_EVENTS", "LockManager", "chain_cleanup",
           "chain_unlock", "unchain"]
