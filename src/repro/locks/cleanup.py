"""Cleanup chaining helpers (§4.2).

``chain_unlock`` is the paper's "unlock routine … chained to the thread's
TERMINATE handler": a per-thread-memory procedure, closed over the lock
manager capability and the lock name, attached to the TERMINATE and QUIT
chains of the acquiring thread. When the thread is terminated by either
event the procedure releases the lock — from wherever the thread happens
to be — and *propagates*, letting the rest of the chain (other locks,
application handlers, the kernel default) run.

The chaining happens *before* the thread can block waiting for the lock,
closing the window in which a terminated waiter-turned-holder would leak
it; a cleanup release for a lock the thread never actually held is a
benign no-op.
"""

from __future__ import annotations

from repro.events import names as event_names
from repro.events.handlers import Decision

#: Events whose delivery should trigger lock cleanup. QUIT is included so
#: the §6.3 group-termination protocol also releases locks.
CLEANUP_EVENTS = (event_names.TERMINATE, event_names.QUIT)


def chain_unlock(ctx, manager_cap, name: str):
    """Generator helper: chain a release of ``name`` to termination events.

    Use inside an entry point (typically the lock manager's ``acquire``),
    *before* blocking for the grant::

        chained = yield from chain_unlock(ctx, manager.cap, "accounts")

    Returns ``[(event, reg_id), …]`` so a failed acquisition can
    :func:`unchain` the registrations again.
    """

    def unlock_on_termination(hctx, block):
        # Runs on a surrogate impersonating the dying thread; release
        # proceeds through the ordinary entry (holder check passes; a
        # never-granted or already-released lock is a no-op).
        yield hctx.invoke(manager_cap, "release", name, True)
        return Decision.PROPAGATE

    unlock_on_termination.__name__ = f"unlock:{name}"
    chained = []
    for event in CLEANUP_EVENTS:
        reg_id = yield ctx.attach_handler(event, unlock_on_termination)
        chained.append((event, reg_id))
    return chained


def unchain(ctx, chained):
    """Detach registrations produced by :func:`chain_unlock`."""
    for event, reg_id in chained:
        yield ctx.detach_handler(event, reg_id)


def chain_cleanup(ctx, procedure, events: tuple[str, ...] = CLEANUP_EVENTS):
    """Chain an arbitrary cleanup procedure to termination events.

    ``procedure(hctx, block)`` must be a generator; it should return
    ``Decision.PROPAGATE`` so deeper cleanup handlers and the terminating
    default still run. Returns ``[(event, reg_id), …]``.
    """
    chained = []
    for event in events:
        reg_id = yield ctx.attach_handler(event, procedure)
        chained.append((event, reg_id))
    return chained
