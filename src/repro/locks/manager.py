"""Distributed lock manager with event-chained cleanup.

"Chaining of handlers is very useful in distributed lock management.
Every time a thread locks data in an object, the unlock routine for that
data is chained to the thread's TERMINATE handler. If the threads receive
a TERMINATE signal, all locked data are unlocked, regardless of their
location and scope." (§4.2)

:class:`LockManager` is a distributed object; threads invoke ``acquire``/
``release`` on it (from any node). Each successful acquire chains a
cleanup procedure onto the acquiring thread's TERMINATE and QUIT handler
chains; the procedure releases exactly that lock and *propagates*, so the
rest of the chain (other locks, the application's own handlers, finally
the kernel default that performs the termination) still runs.
"""

from __future__ import annotations

from typing import Any

from repro.errors import LockNotHeldError
from repro.locks.cleanup import chain_unlock, unchain
from repro.objects.base import DistObject, entry
from repro.sim.primitives import SimFuture


class _Lock:
    """State of one named lock inside a manager."""

    __slots__ = ("name", "holder", "count", "waiters")

    def __init__(self, name: str) -> None:
        self.name = name
        self.holder: Any = None
        self.count = 0
        #: (tid, executing DThread, grant future)
        self.waiters: list[tuple[Any, Any, SimFuture]] = []


class LockManager(DistObject):
    """A central lock service for distributed applications.

    Locks are named, reentrant, FIFO-granted. Holders are identified by
    thread id — cleanup handlers run on surrogates that impersonate the
    dying thread, so they release through the ordinary ``release`` path.
    """

    def __init__(self):
        super().__init__()
        self._locks: dict[str, _Lock] = {}
        #: statistics for experiment E4
        self.acquires = 0
        self.releases = 0
        self.cleanup_releases = 0

    def _lock(self, name: str) -> _Lock:
        lock = self._locks.get(name)
        if lock is None:
            lock = _Lock(name)
            self._locks[name] = lock
        return lock

    # ------------------------------------------------------------------
    # entries
    # ------------------------------------------------------------------

    @entry
    def acquire(self, ctx, name: str, chain_cleanup: bool = True):
        """Acquire ``name``, blocking until granted.

        With ``chain_cleanup`` (the default, and the §4.2 behaviour), a
        release procedure is chained to the thread's TERMINATE/QUIT
        handlers.
        """
        lock = self._lock(name)
        tid = ctx.tid
        if lock.holder == tid:
            lock.count += 1
            self.acquires += 1
            return True
        # Chain the unlock BEFORE we can block: a waiter terminated while
        # queued (or between grant and return) is still cleaned up.
        if chain_cleanup:
            yield from chain_unlock(ctx, self.cap, name)
        if lock.holder is not None:
            fut: SimFuture = SimFuture(self._sim(ctx))
            lock.waiters.append((tid, ctx._thread, fut))
            yield ctx.wait(fut)
        lock.holder = tid
        lock.count = 1
        self.acquires += 1
        return True

    @entry
    def try_acquire(self, ctx, name: str, chain_cleanup: bool = True):
        """Acquire ``name`` if free; returns False instead of waiting."""
        lock = self._lock(name)
        tid = ctx.tid
        yield ctx.compute(0)
        if lock.holder == tid:
            lock.count += 1
            self.acquires += 1
            return True
        if lock.holder is not None:
            return False
        if chain_cleanup:
            chained = yield from chain_unlock(ctx, self.cap, name)
            # the lock may have been taken while we were chaining
            if lock.holder is not None and lock.holder != tid:
                yield from unchain(ctx, chained)
                return False
        lock.holder = tid
        lock.count = 1
        self.acquires += 1
        return True

    @entry
    def release(self, ctx, name: str, cleanup: bool = False):
        """Release ``name``; the caller (or impersonated thread) must hold
        it. ``cleanup`` marks releases performed by chained handlers."""
        lock = self._locks.get(name)
        tid = ctx.tid
        yield ctx.compute(0)
        if lock is None or lock.holder != tid:
            if cleanup:
                return False  # already released explicitly: benign
            raise LockNotHeldError(
                f"thread {tid} does not hold lock {name!r}")
        if cleanup:
            # Termination cleanup unwinds reentrancy entirely: the holder
            # is dying, partial release would leak the lock.
            lock.count = 0
        else:
            lock.count -= 1
        if lock.count > 0:
            return True
        self.releases += 1
        if cleanup:
            self.cleanup_releases += 1
        self._grant_next(lock)
        return True

    @entry
    def holder_of(self, ctx, name: str):
        yield ctx.compute(0)
        lock = self._locks.get(name)
        return lock.holder if lock is not None else None

    @entry
    def held_locks(self, ctx):
        yield ctx.compute(0)
        return sorted(name for name, lock in self._locks.items()
                      if lock.holder is not None)

    @entry
    def reap(self, ctx):
        """Release locks whose holders are no longer alive.

        A safety net for threads that died without receiving TERMINATE
        (crashes); the paper's cleanup covers only signalled termination.
        """
        yield ctx.compute(0)
        cluster = self._cluster(ctx)
        reaped = []
        for name, lock in self._locks.items():
            if lock.holder is not None and \
                    lock.holder not in cluster.live_threads:
                reaped.append(name)
                lock.count = 0
                self.releases += 1
                self._grant_next(lock)
        return reaped

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _grant_next(self, lock: _Lock) -> None:
        lock.holder = None
        lock.count = 0
        while lock.waiters:
            tid, thread, fut = lock.waiters.pop(0)
            if fut.done or thread.dying:
                continue
            lock.holder = tid
            lock.count = 1
            fut.resolve(True)
            return

    @staticmethod
    def _sim(ctx):
        return ctx._thread.cluster.sim

    @staticmethod
    def _cluster(ctx):
        return ctx._thread.cluster
