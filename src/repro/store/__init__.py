"""Durable persistence subsystem: write-ahead event journal, outbox
redelivery, and checkpointed recovery.

The paper's objects are passive and *persistent* (§2) and object-based
handlers stay armed "while the object persists" (§5.1). This package
makes that real for the reproduction: a per-node append-only journal
(the simulated durable medium that survives ``Kernel.crash``), a
transactional outbox that re-dispatches unacknowledged posts through the
reliable channel on recovery, and a checkpoint/truncation protocol that
bounds replay length. Opt in with ``ClusterConfig(durable_delivery=True)``.
"""

from repro.store.checkpoint import (
    CheckpointManager,
    restore_object,
    snapshot_object,
)
from repro.store.journal import (
    ClusterStore,
    JournalRecord,
    NodeJournal,
    REC_ACK,
    REC_APPLIED,
    REC_CHECKPOINT,
    REC_POST,
    REC_REG,
    REC_UNREG,
)
from repro.store.manager import MSG_STORE_ACK, NodeStore
from repro.store.outbox import (
    DELIVERED,
    IN_FLIGHT,
    NOTICED,
    PARKED,
    Outbox,
    OutboxEntry,
)

__all__ = [
    "CheckpointManager",
    "ClusterStore",
    "DELIVERED",
    "IN_FLIGHT",
    "JournalRecord",
    "MSG_STORE_ACK",
    "NodeJournal",
    "NodeStore",
    "NOTICED",
    "Outbox",
    "OutboxEntry",
    "PARKED",
    "REC_ACK",
    "REC_APPLIED",
    "REC_CHECKPOINT",
    "REC_POST",
    "REC_REG",
    "REC_UNREG",
    "restore_object",
    "snapshot_object",
]
