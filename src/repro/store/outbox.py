"""Transactional outbox: journaled posts pending handler-side ack.

Classic outbox-pattern redelivery adapted to the event fabric: every
durable post is journaled at its origin *before* the first send and
stays pending until the executing side acknowledges handler completion
(``store.ack``) or the raiser receives the §7.2 notice. Pending entries
are re-dispatched through the ReliableChannel when a node recovers (its
in-flight sends died with it, and posts queued on a crashed receiver
were lost from its volatile queues) and by a self-quenching flush timer
after a give-up. Receiver-side dedup (the journaled ``applied`` set plus
the per-thread block window) makes redelivery exactly-once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.store.journal import NodeJournal, REC_ACK, REC_POST

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.events.block import EventBlock

#: Entry lifecycle. IN_FLIGHT entries ride the reliable channel's
#: retransmission; PARKED ones exhausted it (or were voided by a crash)
#: and wait for the flush timer or a recovery announcement.
IN_FLIGHT = "in-flight"
PARKED = "parked"
DELIVERED = "delivered"
NOTICED = "noticed"
QUARANTINED = "quarantined"


@dataclass(slots=True)
class OutboxEntry:
    """One journaled post awaiting its handler-side acknowledgement.

    ``slots=True``: every checkpoint copies the whole pending set, so
    the per-instance dict and the generic ``dataclasses.replace`` were
    measurable on the durable path — copies go through :meth:`clone`.
    """

    entry_id: tuple[int, int]       #: (origin node, per-origin sequence)
    block: "EventBlock"
    kind: str                       #: "object" or "thread"
    dst: int | None                 #: home node for object posts
    status: str = IN_FLIGHT
    created_at: float = 0.0
    attempts: int = 1
    redeliveries: int = 0
    lsn: int = field(default=0, repr=False)

    @property
    def resolved(self) -> bool:
        return self.status in (DELIVERED, NOTICED, QUARANTINED)

    def clone(self) -> "OutboxEntry":
        """Field-for-field shallow copy (checkpoint/restore isolation).

        ``dataclasses.replace`` re-runs ``__init__`` through kwargs
        plumbing; this straight-line copy is ~4x cheaper and the
        checkpoint path takes one per pending entry.
        """
        entry = object.__new__(OutboxEntry)
        entry.entry_id = self.entry_id
        entry.block = self.block
        entry.kind = self.kind
        entry.dst = self.dst
        entry.status = self.status
        entry.created_at = self.created_at
        entry.attempts = self.attempts
        entry.redeliveries = self.redeliveries
        entry.lsn = self.lsn
        return entry


class Outbox:
    """Origin-side pending index over one node's journal.

    The journal is the durable truth; this index is the in-memory view a
    real implementation would keep alongside it. It is rebuilt from the
    journal by recovery replay (:meth:`restore` + :meth:`apply_record`).
    """

    def __init__(self, journal: NodeJournal) -> None:
        self.journal = journal
        self._next_seq = 0
        self._pending: dict[tuple[int, int], OutboxEntry] = {}
        self.recorded = 0
        self.delivered = 0
        self.noticed = 0
        self.quarantined = 0
        self.redelivered = 0
        #: posts parked straight from admission control (never sent yet)
        self.deferred = 0
        #: flush-tick re-dispatches skipped because the destination was
        #: suspected by the failure detector (futile-retransmit guard)
        self.flush_skips = 0

    def __len__(self) -> int:
        return len(self._pending)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def record(self, block: "EventBlock", kind: str, dst: int | None,
               now: float) -> OutboxEntry:
        """Journal a new post (write-ahead: call before the first send)."""
        self._next_seq += 1
        entry_id = (self.journal.node_id, self._next_seq)
        entry = OutboxEntry(entry_id=entry_id, block=block, kind=kind,
                            dst=dst, created_at=now)
        entry.lsn = self.journal.append(
            REC_POST, entry_id=entry_id, kind=kind, dst=dst,
            event=block.event, block=block).lsn
        self._pending[entry_id] = entry
        self.recorded += 1
        return entry

    def record_batch(self, posts: list[tuple["EventBlock", str, int | None]],
                     now: float) -> list[OutboxEntry]:
        """Journal ``(block, kind, dst)`` posts as **one commit unit**.

        Group-commit for fan-out: a group-target post journals one
        ``post`` record per member block, but the whole fan-out is a
        single commit (:meth:`NodeJournal.append_batch`). Entry ids and
        LSNs are assigned exactly as consecutive :meth:`record` calls
        would assign them, so recovery replay is indistinguishable.
        """
        entries = []
        ops = []
        for block, kind, dst in posts:
            self._next_seq += 1
            entry_id = (self.journal.node_id, self._next_seq)
            entries.append(OutboxEntry(entry_id=entry_id, block=block,
                                       kind=kind, dst=dst, created_at=now))
            ops.append((REC_POST, {"entry_id": entry_id, "kind": kind,
                                   "dst": dst, "event": block.event,
                                   "block": block}))
        for entry, record in zip(entries, self.journal.append_batch(ops)):
            entry.lsn = record.lsn
            self._pending[entry.entry_id] = entry
            self.recorded += 1
        return entries

    def resolve(self, entry_id: tuple[int, int], status: str) -> bool:
        """Journal the ack and retire the entry; False if not pending."""
        entry = self._pending.pop(entry_id, None)
        if entry is None:
            return False
        entry.status = status
        self.journal.append(REC_ACK, entry_id=entry_id, status=status)
        if status == DELIVERED:
            self.delivered += 1
        elif status == QUARANTINED:
            self.quarantined += 1
        else:
            self.noticed += 1
        return True

    def park(self, entry_id: tuple[int, int]) -> bool:
        """The reliable send gave up; hold the entry for redelivery."""
        entry = self._pending.get(entry_id)
        if entry is None:
            return False
        entry.status = PARKED
        return True

    def mark_dispatched(self, entry: OutboxEntry) -> None:
        """The entry was re-handed to the channel.

        Only redelivery paths call this — the first send happens right
        after :meth:`record` — so every call counts as a redelivery,
        whether the entry was parked (give-up) or still nominally
        in-flight (flushed to a recovering node that lost it).
        """
        entry.redeliveries += 1
        self.redelivered += 1
        entry.status = IN_FLIGHT
        entry.attempts += 1

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def get(self, entry_id: tuple[int, int]) -> OutboxEntry | None:
        return self._pending.get(entry_id)

    def pending(self) -> list[OutboxEntry]:
        """All unresolved entries, in journal order."""
        return [self._pending[k] for k in sorted(self._pending)]

    def parked(self) -> list[OutboxEntry]:
        return [e for e in self.pending() if e.status == PARKED]

    def pending_for(self, dst: int) -> list[OutboxEntry]:
        """Unresolved entries addressed to ``dst`` (crash-voided or not:
        a recovered destination gets everything re-dispatched; dedup on
        the receiver keeps that safe)."""
        return [e for e in self.pending() if e.dst == dst]

    # ------------------------------------------------------------------
    # recovery replay
    # ------------------------------------------------------------------

    def restore(self, entries: list[OutboxEntry]) -> None:
        """Reset the index to a checkpoint's pending set."""
        self._pending = {e.entry_id: e for e in entries}
        for entry in entries:
            self._next_seq = max(self._next_seq, entry.entry_id[1])

    def apply_record(self, record: Any) -> None:
        """Roll one journal record forward during replay."""
        if record.rtype == REC_POST:
            entry_id = record.data["entry_id"]
            entry = OutboxEntry(entry_id=entry_id,
                                block=record.data["block"],
                                kind=record.data["kind"],
                                dst=record.data["dst"], status=PARKED,
                                lsn=record.lsn)
            self._pending[entry_id] = entry
            self._next_seq = max(self._next_seq, entry_id[1])
        elif record.rtype == REC_ACK:
            self._pending.pop(record.data["entry_id"], None)

    def park_all(self) -> None:
        """A crash voided every in-flight send: hold them for recovery."""
        for entry in self._pending.values():
            entry.status = PARKED

    def stats(self) -> dict[str, int]:
        stats = {"recorded": self.recorded, "delivered": self.delivered,
                 "noticed": self.noticed,
                 "redelivered": self.redelivered,
                 "pending": len(self._pending)}
        if self.quarantined:
            # Key present only when quarantines happened: stats dicts
            # (and digests built from them) are unchanged for runs that
            # never hit the dead-letter path.
            stats["quarantined"] = self.quarantined
        # Same nonzero gating for the overload-control counters: runs
        # that never shed/defer/skip keep the exact pre-change shape.
        parked = sum(1 for e in self._pending.values()
                     if e.status == PARKED)
        if parked:
            stats["parked"] = parked
        if self.deferred:
            stats["deferred"] = self.deferred
        if self.flush_skips:
            stats["flush_skips"] = self.flush_skips
        return stats
