"""Per-node append-only write-ahead journals (the durable medium).

The paper's objects are *passive and persistent* (§2) and object-based
handlers stay armed "while the object persists" (§5) — but everything a
kernel holds in memory is volatile and dies with the node. This module
provides the simulated durable medium underneath the
:mod:`repro.store` subsystem: one append-only journal per node, owned by
the cluster-level :class:`ClusterStore` so that
:meth:`repro.kernel.node.Kernel.crash` cannot touch it. Recovery replays
the journal to rebuild the node's durable state (outbox, applied-post
dedup set, object-handler registry, object snapshots).

Record types
------------
``post``
    An event post journaled at its origin before the first send (the
    write-ahead rule); stays pending until an ``ack`` resolves it.
``ack``
    Origin-side resolution of a ``post``: the handler side acknowledged
    execution (``status="delivered"``) or the raiser got the §7.2 notice
    (``status="noticed"``).
``applied``
    Receiver-side execution marker, journaled atomically with the start
    of the handler run so redelivered duplicates are suppressed.
``reg`` / ``unreg``
    Object-based handler (de)registration in the persistent registry.
``checkpoint``
    A state snapshot (outbox, applied set, registry, object states);
    everything before it is truncated, bounding replay length.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import KernelError

REC_POST = "post"
REC_ACK = "ack"
REC_APPLIED = "applied"
REC_REG = "reg"
REC_UNREG = "unreg"
REC_CHECKPOINT = "checkpoint"

#: Simulated on-medium record sizes in bytes (fixed per type so byte
#: accounting is deterministic without serialising simulation objects).
RECORD_SIZES = {
    REC_POST: 160,
    REC_ACK: 48,
    REC_APPLIED: 48,
    REC_REG: 64,
    REC_UNREG: 48,
    REC_CHECKPOINT: 512,
}


@dataclass(frozen=True)
class JournalRecord:
    """One appended record: a log sequence number, a type, and data."""

    lsn: int
    rtype: str
    data: dict[str, Any] = field(default_factory=dict)
    size: int = 0


class NodeJournal:
    """Append-only write-ahead log for one node.

    Appends are totally ordered by LSN. The journal survives
    :meth:`Kernel.crash` by construction (it lives in the cluster-level
    store, not in kernel memory); truncation is only ever performed by
    the checkpoint protocol, which first writes a ``checkpoint`` record
    covering the dropped prefix.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self._records: list[JournalRecord] = []
        self._next_lsn = 1
        #: LSN of the newest ``checkpoint`` record, or None.
        self._checkpoint_lsn: int | None = None
        self.appends = 0
        self.bytes_appended = 0
        self.truncations = 0
        self.records_truncated = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    def append(self, rtype: str, **data: Any) -> JournalRecord:
        """Durably append one record; returns it with its LSN assigned."""
        if rtype not in RECORD_SIZES:
            raise KernelError(f"unknown journal record type {rtype!r}")
        record = JournalRecord(lsn=self._next_lsn, rtype=rtype, data=data,
                               size=RECORD_SIZES[rtype])
        self._next_lsn += 1
        self._records.append(record)
        self.appends += 1
        self.bytes_appended += record.size
        if rtype == REC_CHECKPOINT:
            self._checkpoint_lsn = record.lsn
        return record

    # ------------------------------------------------------------------
    # recovery scan
    # ------------------------------------------------------------------

    def latest_checkpoint(self) -> JournalRecord | None:
        """The newest ``checkpoint`` record still in the log, or None."""
        if self._checkpoint_lsn is None:
            return None
        for record in reversed(self._records):
            if record.lsn == self._checkpoint_lsn:
                return record
        return None  # pragma: no cover - checkpoint is never truncated away

    def tail(self) -> list[JournalRecord]:
        """Records after the newest checkpoint (the replay suffix)."""
        if self._checkpoint_lsn is None:
            return list(self._records)
        return [r for r in self._records if r.lsn > self._checkpoint_lsn]

    def replay(self) -> tuple[dict[str, Any] | None, list[JournalRecord]]:
        """(latest checkpoint state or None, records to replay after it)."""
        checkpoint = self.latest_checkpoint()
        state = checkpoint.data["state"] if checkpoint is not None else None
        return state, self.tail()

    # ------------------------------------------------------------------
    # truncation (checkpoint protocol only)
    # ------------------------------------------------------------------

    def truncate_before(self, lsn: int) -> int:
        """Drop every record with ``lsn`` strictly below the given one.

        Returns how many records were dropped. Called by the checkpoint
        manager right after it appended the covering checkpoint record.
        """
        keep = [r for r in self._records if r.lsn >= lsn]
        dropped = len(self._records) - len(keep)
        if dropped:
            self._records = keep
            self.truncations += 1
            self.records_truncated += dropped
        return dropped

    def stats(self) -> dict[str, int]:
        return {"appends": self.appends,
                "bytes_appended": self.bytes_appended,
                "retained": len(self._records),
                "truncations": self.truncations,
                "records_truncated": self.records_truncated}


class ClusterStore:
    """The cluster's durable media: one :class:`NodeJournal` per node.

    Owned by the :class:`~repro.kernel.boot.Cluster`, never by a kernel,
    so a node crash cannot lose it — exactly like a disk that survives
    the machine rebooting.
    """

    def __init__(self) -> None:
        self._journals: dict[int, NodeJournal] = {}

    def journal(self, node_id: int) -> NodeJournal:
        journal = self._journals.get(node_id)
        if journal is None:
            journal = self._journals[node_id] = NodeJournal(node_id)
        return journal

    def journals(self) -> dict[int, NodeJournal]:
        return dict(self._journals)

    def stats(self) -> dict[str, int]:
        """Cluster-wide sums of the per-journal counters."""
        totals: dict[str, int] = {}
        for journal in self._journals.values():
            for key, value in journal.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
