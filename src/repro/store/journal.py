"""Per-node append-only write-ahead journals (the durable medium).

The paper's objects are *passive and persistent* (§2) and object-based
handlers stay armed "while the object persists" (§5) — but everything a
kernel holds in memory is volatile and dies with the node. This module
provides the simulated durable medium underneath the
:mod:`repro.store` subsystem: one append-only journal per node, owned by
the cluster-level :class:`ClusterStore` so that
:meth:`repro.kernel.node.Kernel.crash` cannot touch it. Recovery replays
the journal to rebuild the node's durable state (outbox, applied-post
dedup set, object-handler registry, object snapshots).

Record types
------------
``post``
    An event post journaled at its origin before the first send (the
    write-ahead rule); stays pending until an ``ack`` resolves it.
``ack``
    Origin-side resolution of a ``post``: the handler side acknowledged
    execution (``status="delivered"``) or the raiser got the §7.2 notice
    (``status="noticed"``).
``applied``
    Receiver-side execution marker, journaled atomically with the start
    of the handler run so redelivered duplicates are suppressed.
``reg`` / ``unreg``
    Object-based handler (de)registration in the persistent registry.
``dead`` / ``dead-requeue``
    Dead-letter quarantine: a poison or undeliverable block entered the
    node's :class:`~repro.events.supervise.DeadLetterQueue` (``dead``)
    or was taken back out for requeue (``dead-requeue``). Replayed on
    recovery so quarantined blocks survive the node.
``checkpoint``
    A state snapshot (outbox, applied set, registry, object states);
    everything before it is truncated, bounding replay length.
"""

from __future__ import annotations

import sys
from collections import deque
from itertools import islice
from typing import Any, Iterator

from repro.errors import KernelError

REC_POST = "post"
REC_ACK = "ack"
REC_APPLIED = "applied"
REC_UNAPPLIED = "unapplied"
REC_REG = "reg"
REC_UNREG = "unreg"
REC_DEAD = "dead"
REC_DEAD_REQUEUE = "dead-requeue"
REC_CHECKPOINT = "checkpoint"

#: Simulated on-medium record sizes in bytes (fixed per type so byte
#: accounting is deterministic without serialising simulation objects).
RECORD_SIZES = {
    REC_POST: 160,
    REC_ACK: 48,
    REC_APPLIED: 48,
    REC_UNAPPLIED: 48,
    REC_REG: 64,
    REC_UNREG: 48,
    REC_DEAD: 160,
    REC_DEAD_REQUEUE: 48,
    REC_CHECKPOINT: 512,
}

#: ``rtype -> (canonical interned rtype, size)``: one dict probe in the
#: append hot path both validates the type and hands back the interned
#: string to store, so downstream ``record.rtype == REC_POST`` checks
#: hit CPython's pointer-equality fast path.
_RTYPE_INFO = {name: (sys.intern(name), size)
               for name, size in RECORD_SIZES.items()}

#: pooled record slots a journal keeps per node (fed by truncation)
_POOL_CAP = 512


class JournalRecord:
    """One appended record: a log sequence number, a type, and data.

    A ``__slots__`` class rather than a frozen dataclass: the durable
    path mints one of these per journaled operation (~3 per post), so
    the dataclass ``__init__`` indirection and per-instance dict were
    measurable churn — the named hotspot in BENCH_soak.json's durable
    row. Instances are also recycled through a per-journal free list
    fed by checkpoint truncation (truncated records are unreachable by
    contract: replay only ever reads the latest checkpoint and its
    tail).
    """

    __slots__ = ("lsn", "rtype", "data", "size")

    def __init__(self, lsn: int, rtype: str,
                 data: dict[str, Any] | None = None, size: int = 0) -> None:
        self.lsn = lsn
        self.rtype = rtype
        self.data = {} if data is None else data
        self.size = size

    def __repr__(self) -> str:
        return (f"JournalRecord(lsn={self.lsn!r}, rtype={self.rtype!r}, "
                f"data={self.data!r}, size={self.size!r})")


class NodeJournal:
    """Append-only write-ahead log for one node.

    Appends are totally ordered by LSN. The journal survives
    :meth:`Kernel.crash` by construction (it lives in the cluster-level
    store, not in kernel memory); truncation is only ever performed by
    the checkpoint protocol, which first writes a ``checkpoint`` record
    covering the dropped prefix.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        # Append-only with prefix truncation: a deque gives O(1) appends
        # AND O(1)-amortised popleft truncation (the old list rebuild
        # made every checkpoint O(retained), hot under small
        # checkpoint_interval).
        self._records: deque[JournalRecord] = deque()
        self._next_lsn = 1
        #: the newest ``checkpoint`` record, indexed at append time so
        #: recovery never scans for it
        self._checkpoint_rec: JournalRecord | None = None
        #: records appended after the newest checkpoint, maintained at
        #: append time so :meth:`tail` never scans the retained log
        self._tail_len = 0
        #: free list of recycled record slabs (fed by truncation)
        self._pool: list[JournalRecord] = []
        self.appends = 0
        self.bytes_appended = 0
        #: commit units: one per :meth:`append`, one per whole
        #: :meth:`append_batch` — the group-commit win is this counter
        #: growing slower than ``appends``
        self.commits = 0
        self.truncations = 0
        self.records_truncated = 0

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JournalRecord]:
        return iter(self._records)

    def _stamp(self, rtype: str, data: dict[str, Any]) -> JournalRecord:
        info = _RTYPE_INFO.get(rtype)
        if info is None:
            raise KernelError(f"unknown journal record type {rtype!r}")
        rtype, size = info
        pool = self._pool
        if pool:
            # pooled slab: overwrite every field (nothing survives)
            record = pool.pop()
            record.lsn = self._next_lsn
            record.rtype = rtype
            record.data = data
            record.size = size
        else:
            record = JournalRecord(self._next_lsn, rtype, data, size)
        self._next_lsn += 1
        self._records.append(record)
        self.appends += 1
        self.bytes_appended += size
        if rtype is REC_CHECKPOINT or rtype == REC_CHECKPOINT:
            self._checkpoint_rec = record
            self._tail_len = 0
        else:
            self._tail_len += 1
        return record

    def append(self, rtype: str, **data: Any) -> JournalRecord:
        """Durably append one record; returns it with its LSN assigned."""
        record = self._stamp(rtype, data)
        self.commits += 1
        return record

    def append_batch(
            self, ops: list[tuple[str, dict[str, Any]]]) -> list[JournalRecord]:
        """Append ``(rtype, data)`` records as **one commit unit**.

        Group-commit: the records get consecutive LSNs and identical
        durability (all-or-nothing on the simulated medium), but the
        whole batch costs a single commit — the analogue of one fsync
        for a batch of writes. An empty batch is a no-op, not a commit.
        """
        if not ops:
            return []
        stamp = self._stamp
        records = [stamp(rtype, data) for rtype, data in ops]
        self.commits += 1
        return records

    # ------------------------------------------------------------------
    # recovery scan
    # ------------------------------------------------------------------

    def latest_checkpoint(self) -> JournalRecord | None:
        """The newest ``checkpoint`` record still in the log, or None."""
        return self._checkpoint_rec

    def tail(self) -> list[JournalRecord]:
        """Records after the newest checkpoint (the replay suffix).

        Indexed at append time (``_tail_len``): appends are LSN-ordered,
        so the suffix is exactly the newest ``_tail_len`` records —
        O(tail), not the old O(retained) list comprehension over the
        whole log.
        """
        if self._checkpoint_rec is None:
            return list(self._records)
        count = self._tail_len
        if not count:
            return []
        suffix = list(islice(reversed(self._records), count))
        suffix.reverse()
        return suffix

    def replay(self) -> tuple[dict[str, Any] | None, list[JournalRecord]]:
        """(latest checkpoint state or None, records to replay after it)."""
        checkpoint = self.latest_checkpoint()
        state = checkpoint.data["state"] if checkpoint is not None else None
        return state, self.tail()

    # ------------------------------------------------------------------
    # truncation (checkpoint protocol only)
    # ------------------------------------------------------------------

    def truncate_before(self, lsn: int) -> int:
        """Drop every record with ``lsn`` strictly below the given one.

        Returns how many records were dropped. Called by the checkpoint
        manager right after it appended the covering checkpoint record.
        LSNs are appended in order, so the drop set is a prefix: popleft
        until the head survives — O(dropped) amortised, not O(retained)
        like the old list rebuild.
        """
        dropped = 0
        records = self._records
        pool = self._pool
        free = _POOL_CAP - len(pool)
        while records and records[0].lsn < lsn:
            record = records.popleft()
            dropped += 1
            if free > 0:
                free -= 1
                # recycle the slab; drop its payload reference so a
                # truncated checkpoint's state snapshot is freed now
                record.data = None
                pool.append(record)
        if dropped:
            self.truncations += 1
            self.records_truncated += dropped
        if (self._checkpoint_rec is not None
                and self._checkpoint_rec.lsn < lsn):
            # Defensive: the protocol never truncates past its own
            # checkpoint record, but don't hand out a dropped one.
            self._checkpoint_rec = None  # pragma: no cover
        return dropped

    def stats(self) -> dict[str, int]:
        return {"appends": self.appends,
                "commits": self.commits,
                "bytes_appended": self.bytes_appended,
                "retained": len(self._records),
                "truncations": self.truncations,
                "records_truncated": self.records_truncated}


class ClusterStore:
    """The cluster's durable media: one :class:`NodeJournal` per node.

    Owned by the :class:`~repro.kernel.boot.Cluster`, never by a kernel,
    so a node crash cannot lose it — exactly like a disk that survives
    the machine rebooting.
    """

    def __init__(self) -> None:
        self._journals: dict[int, NodeJournal] = {}

    def journal(self, node_id: int) -> NodeJournal:
        journal = self._journals.get(node_id)
        if journal is None:
            journal = self._journals[node_id] = NodeJournal(node_id)
        return journal

    def journals(self) -> dict[int, NodeJournal]:
        return dict(self._journals)

    def stats(self) -> dict[str, int]:
        """Cluster-wide sums of the per-journal counters."""
        totals: dict[str, int] = {}
        for journal in self._journals.values():
            for key, value in journal.stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals
