"""Checkpoint/truncation protocol: bound replay length and recovery time.

A checkpoint snapshots the node's durable state — pending outbox
entries, the applied-post dedup set, the persistent object-handler
registry, and per-object state snapshots — into a single journal record,
then truncates the log prefix it covers. Recovery loads the newest
checkpoint and replays only the records after it, so recovery time
scales with the checkpoint interval instead of with history length
(``bench_durability.py`` sweeps exactly that trade-off: tighter
intervals buy shorter replay at the price of more checkpoint bytes).
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

from repro.store.journal import NodeJournal, REC_CHECKPOINT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.objects.base import DistObject


def snapshot_object(obj: "DistObject") -> dict[str, Any]:
    """Copy an object's identity and user-visible state for a checkpoint.

    Private machinery (placement, DSM segment) is reconstructed on
    restore; only public attributes — the object's persistent state in
    the §2 sense — are deep-copied onto the simulated durable medium.
    """
    state = {name: copy.deepcopy(value)
             for name, value in vars(obj).items()
             if not name.startswith("_")}
    return {"cls": type(obj), "oid": obj.oid, "home": obj.home,
            "transport": obj.transport, "state": state}


def restore_object(snapshot: dict[str, Any]) -> "DistObject":
    """Rebuild a :class:`DistObject` instance from a checkpoint snapshot.

    Used when recovery finds an object recorded in the checkpoint but
    missing from memory (simulated media loss); ``__init__`` is bypassed
    because the snapshot already carries the constructed state.
    """
    from repro.objects.base import DistObject

    cls = snapshot["cls"]
    obj = cls.__new__(cls)
    DistObject.__init__(obj)
    obj._oid = snapshot["oid"]
    obj._home = snapshot["home"]
    obj._transport = snapshot["transport"]
    for name, value in snapshot["state"].items():
        setattr(obj, name, copy.deepcopy(value))
    return obj


class CheckpointManager:
    """Decides when to checkpoint and performs the write + truncation.

    ``interval`` counts journal appends between automatic checkpoints
    (None disables automatic checkpointing; explicit :meth:`take` calls
    still work). Checkpoint records themselves do not count toward the
    interval, so ``interval=N`` means one checkpoint per N payload
    records regardless of how large the state snapshot is.
    """

    def __init__(self, journal: NodeJournal,
                 interval: int | None = None) -> None:
        self.journal = journal
        self.interval = interval
        self._since_checkpoint = 0
        self.taken = 0

    def note_append(self, n: int = 1) -> bool:
        """Count ``n`` payload appends; True when a checkpoint is due.

        Group-committed batches pass their record count so the interval
        keeps measuring journal growth, not commit units.
        """
        self._since_checkpoint += n
        return (self.interval is not None
                and self._since_checkpoint >= self.interval)

    def take(self, state: dict[str, Any]) -> int:
        """Write a checkpoint covering ``state``; truncate the prefix.

        Returns the number of truncated records.
        """
        record = self.journal.append(REC_CHECKPOINT, state=state)
        dropped = self.journal.truncate_before(record.lsn)
        self._since_checkpoint = 0
        self.taken += 1
        return dropped

    def stats(self) -> dict[str, int]:
        return {"checkpoints": self.taken,
                "since_checkpoint": self._since_checkpoint}
