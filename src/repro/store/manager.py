"""Per-node durability manager: the store subsystem's kernel-facing API.

One :class:`NodeStore` per kernel wires the write-ahead journal, the
outbox and the checkpoint protocol into the delivery path:

* **origin side** — posts are journaled before the first send
  (:meth:`journal_post`); a ``store.ack`` from the executing node or a
  §7.2 notice resolves them; give-ups park them for the self-quenching
  flush timer; a node recovery re-dispatches everything still pending.
* **receiver side** — durable posts are deduplicated against the
  journaled ``applied`` set (:meth:`accept_post`), marked applied
  atomically with the start of the handler run (:meth:`mark_applied`),
  and acknowledged to the origin after the handler completes.
* **recovery** — :meth:`recover` loads the newest checkpoint, replays
  the journal tail (outbox, applied set, object-handler registry,
  missing objects), and reports the replay length so the kernel can
  charge recovery time before re-dispatching.

Everything is inert while ``config.durable_delivery`` is off: no journal
appends, no timers, no extra messages — the fault-free experiments keep
their exact message counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.net.message import Message
from repro.store.checkpoint import (
    CheckpointManager,
    restore_object,
    snapshot_object,
)
from repro.store.journal import (
    NodeJournal,
    REC_ACK,
    REC_APPLIED,
    REC_DEAD,
    REC_DEAD_REQUEUE,
    REC_POST,
    REC_REG,
    REC_UNAPPLIED,
    REC_UNREG,
)
from repro.store.outbox import (
    DELIVERED,
    NOTICED,
    Outbox,
    OutboxEntry,
    QUARANTINED,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.events.block import EventBlock
    from repro.kernel.node import Kernel

MSG_STORE_ACK = "store.ack"


class AppliedSnapshot:
    """Checkpoint-time view of the applied-post dedup set.

    Checkpoints used to freeze the whole set (``frozenset(applied)``).
    The applied set only ever grows over a run, so on a long durable
    run the copy at every checkpoint made checkpointing quadratic in
    total posts — the dominant cost left on the durable path. Each
    snapshot now chains to the previous checkpoint's and records only
    the entries marked (``added``) or retracted (``removed``) since —
    O(delta) per checkpoint. The full set is materialized only on the
    rare path that reads a checkpoint back (recovery replay). Snapshots
    are immutable once taken, so the history-isolation contract of the
    old frozenset copy is preserved.
    """

    __slots__ = ("base", "added", "removed")

    def __init__(self, base: "AppliedSnapshot | None",
                 added: frozenset, removed: frozenset) -> None:
        self.base = base
        self.added = added
        self.removed = removed

    def materialize(self) -> set:
        """Union of the whole chain, oldest delta first."""
        chain = []
        node: AppliedSnapshot | None = self
        while node is not None:
            chain.append(node)
            node = node.base
        result: set = set()
        for node in reversed(chain):
            result.update(node.added)
            if node.removed:
                result.difference_update(node.removed)
        return result

    def __iter__(self):
        # ``set(state["applied"])`` in recovery works unchanged.
        return iter(self.materialize())

    def __len__(self) -> int:
        return len(self.materialize())


class NodeStore:
    """Durability services for one node (see module docstring)."""

    def __init__(self, kernel: "Kernel", journal: NodeJournal) -> None:
        self.kernel = kernel
        self.sim = kernel.sim
        self.journal = journal
        self.outbox = Outbox(journal)
        self.checkpoints = CheckpointManager(
            journal, kernel.config.checkpoint_interval)
        #: receiver-side dedup: durable posts already executed here
        #: (journaled; this set is the in-memory cache of those records)
        self.applied: set[tuple[int, int]] = set()
        #: applied-set churn since the last checkpoint, feeding the
        #: incremental :class:`AppliedSnapshot` chain
        self._applied_base: AppliedSnapshot | None = None
        self._applied_added: set[tuple[int, int]] = set()
        self._applied_removed: set[tuple[int, int]] = set()
        #: receiver-side, volatile: durable posts sitting in the object
        #: event queue right now (suppresses concurrent duplicates)
        self._enqueued: set[tuple[int, int]] = set()
        self._flush_timer: int | None = None
        #: one row per recovery replay, reported by bench_durability
        self.recovery_log: list[dict[str, Any]] = []

    @property
    def enabled(self) -> bool:
        return self.kernel.config.durable_delivery

    # ==================================================================
    # origin side (outbox)
    # ==================================================================

    def journal_post(self, block: "EventBlock", kind: str,
                     dst: int | None = None) -> OutboxEntry:
        """Write-ahead: journal the post before its first send."""
        entry = self.outbox.record(block, kind, dst, self.sim.now)
        block.durable_id = entry.entry_id
        self._after_append()
        return entry

    def journal_post_batch(
            self, posts: list[tuple["EventBlock", str, int | None]],
    ) -> list[OutboxEntry]:
        """Write-ahead a fan-out of posts as one group commit.

        Falls back to per-post :meth:`journal_post` when
        ``config.journal_group_commit`` is off — identical records and
        LSNs either way, only the commit count differs.
        """
        if not self.kernel.config.journal_group_commit:
            return [self.journal_post(block, kind, dst)
                    for block, kind, dst in posts]
        entries = self.outbox.record_batch(posts, self.sim.now)
        for (block, _, _), entry in zip(posts, entries):
            block.durable_id = entry.entry_id
        self._after_append(len(entries))
        return entries

    def resolve(self, entry_id: tuple[int, int], status: str) -> bool:
        """Handler-side ack (``delivered``) or §7.2 notice (``noticed``)."""
        if self.outbox.resolve(entry_id, status):
            self._after_append()
            return True
        return False

    def on_give_up(self, entry_id: tuple[int, int]) -> None:
        """The reliable channel exhausted its budget: park for redelivery."""
        if self.outbox.park(entry_id):
            self._arm_flush()

    def defer(self, entry_id: tuple[int, int]) -> None:
        """Admission control shed a durable post: park it *without* a
        first send. The journal already guarantees it; the flush timer
        (or the target's recovery announcement) delivers it once the
        overload passes."""
        if self.outbox.park(entry_id):
            self.outbox.deferred += 1
            self._arm_flush()

    def on_store_ack(self, message: Message) -> None:
        """Kernel dispatch entry for :data:`MSG_STORE_ACK`."""
        self.resolve(message.payload["entry_id"],
                     message.payload.get("status", DELIVERED))

    # ==================================================================
    # receiver side (applied-set dedup + acknowledgement)
    # ==================================================================

    def accept_post(self, entry_id: tuple[int, int]) -> bool:
        """Should an arriving durable post be executed here?

        False for duplicates: already executed (re-ack, in case the
        first ack was lost) or currently queued for execution.
        """
        if entry_id in self.applied:
            self._send_ack(entry_id)
            return False
        if entry_id in self._enqueued:
            return False
        self._enqueued.add(entry_id)
        return True

    def mark_applied(self, entry_id: tuple[int, int]) -> None:
        """Journal the execution marker.

        Must be called atomically with the start of the handler run (no
        yield between them): a crash before it means redelivery re-runs
        the handler, a crash after it means redelivery is suppressed —
        either way the run counts exactly once.
        """
        if entry_id in self.applied:
            return
        self.applied.add(entry_id)
        self._applied_added.add(entry_id)
        self._applied_removed.discard(entry_id)
        self._enqueued.discard(entry_id)
        self.journal.append(REC_APPLIED, entry_id=entry_id)
        self._after_append()

    def unmark_applied(self, entry_id: tuple[int, int]) -> None:
        """Retract the execution marker: the handler run *failed* and the
        supervision policy is about to retry it locally.

        Journaled, so a crash during the retry backoff makes the origin's
        redelivery re-run the handler instead of being suppressed — the
        failed run completed no effects to double. ``_enqueued`` keeps
        suppressing concurrent duplicates while the retry is pending.
        """
        if entry_id not in self.applied:
            return
        self.applied.discard(entry_id)
        self._applied_removed.add(entry_id)
        self._applied_added.discard(entry_id)
        self._enqueued.add(entry_id)
        self.journal.append(REC_UNAPPLIED, entry_id=entry_id)
        self._after_append()

    def post_executed(self, entry_id: tuple[int, int]) -> None:
        """The handler run completed: acknowledge to the origin."""
        self._enqueued.discard(entry_id)
        self._send_ack(entry_id)

    def post_quarantined(self, entry_id: tuple[int, int]) -> None:
        """The post was dead-lettered here: ack so the origin stops
        redelivering, resolved as ``quarantined`` rather than
        ``delivered``.

        The applied marker is journaled (if not already, e.g. by the
        failed run's own :meth:`mark_applied`): if this node crashes
        before the origin processes the ack, the recovery redelivery
        must be suppressed — the post's outcome is quarantine, not a
        fresh execution.
        """
        if entry_id not in self.applied:
            self.applied.add(entry_id)
            self._applied_added.add(entry_id)
            self._applied_removed.discard(entry_id)
            self.journal.append(REC_APPLIED, entry_id=entry_id)
            self._after_append()
        self._enqueued.discard(entry_id)
        self._send_ack(entry_id, QUARANTINED)

    def _send_ack(self, entry_id: tuple[int, int],
                  status: str = DELIVERED) -> None:
        origin = entry_id[0]
        if origin == self.kernel.node_id:
            self.resolve(entry_id, status)
            return
        self.kernel.transmit(Message(
            src=self.kernel.node_id, dst=origin, mtype=MSG_STORE_ACK,
            size=48, payload={"entry_id": entry_id, "status": status}))
        # A lost ack is self-healing: the origin redelivers, the applied
        # set suppresses re-execution, and the duplicate is re-acked.

    # ==================================================================
    # persistent object-handler registry (journal hooks)
    # ==================================================================

    def journal_registration(self, oid: int, event: str,
                             fn_name: str) -> None:
        self.journal.append(REC_REG, oid=oid, event=event, fn_name=fn_name)
        self._after_append()

    def journal_unregistration(self, oid: int, event: str) -> None:
        self.journal.append(REC_UNREG, oid=oid, event=event)
        self._after_append()

    # ==================================================================
    # dead-letter quarantine (journal hooks)
    # ==================================================================

    def journal_dead_letter(self, dead) -> None:
        """Durably record a block entering the dead-letter queue."""
        self.journal.append(REC_DEAD, dl_id=dead.dl_id, block=dead.block,
                            reason=dead.reason, error=dead.error,
                            failures=dead.failures, at=dead.at)
        self._after_append()

    def journal_dead_requeue(self, dl_id: int) -> None:
        """Durably record a dead letter leaving the queue (requeued)."""
        self.journal.append(REC_DEAD_REQUEUE, dl_id=dl_id)
        self._after_append()

    # ==================================================================
    # checkpointing
    # ==================================================================

    def _after_append(self, n: int = 1) -> None:
        if self.enabled and self.checkpoints.note_append(n):
            self.checkpoint()

    def checkpoint(self) -> int:
        """Snapshot durable state, journal it, truncate the prefix."""
        dropped = self.checkpoints.take(self._collect_state())
        self.kernel.tracer.emit("store", "checkpoint",
                                node=self.kernel.node_id, dropped=dropped)
        return dropped

    def _collect_state(self) -> dict[str, Any]:
        manager = self.kernel.objects
        # Chain a delta snapshot off the previous checkpoint's and reset
        # the trackers: the caller (checkpoint) always journals this
        # state, so the new snapshot becomes the next chain base.
        applied = AppliedSnapshot(self._applied_base,
                                  frozenset(self._applied_added),
                                  frozenset(self._applied_removed))
        self._applied_base = applied
        self._applied_added.clear()
        self._applied_removed.clear()
        return {
            # entries are copied so later mutation cannot rewrite history
            "pending": [entry.clone() for entry in self.outbox.pending()],
            "applied": applied,
            "registrations": manager.handlers.entries(),
            "objects": {oid: snapshot_object(manager.get(oid))
                        for oid in manager.oids()},
            "dead_letters": self.kernel.dead_letters.snapshot(),
        }

    # ==================================================================
    # crash / recovery
    # ==================================================================

    def on_crash(self) -> None:
        """Memory is gone; the journal (the durable medium) survives."""
        if self._flush_timer is not None:
            self.kernel.timers.cancel(self._flush_timer)
            self._flush_timer = None
        self._enqueued.clear()
        self.applied.clear()
        self._applied_base = None
        self._applied_added.clear()
        self._applied_removed.clear()
        self.outbox.restore([])

    def recover(self) -> tuple[int, float]:
        """Replay the journal; returns (records replayed, time to charge).

        Rebuilds the outbox pending index, the applied set, and the
        object-handler registry; objects recorded in the checkpoint but
        missing from memory are reconstructed from their snapshots.
        """
        if not self.enabled:
            return 0, 0.0
        manager = self.kernel.objects
        state, tail = self.journal.replay()
        restored_objects = 0
        if state is not None:
            self.applied = set(state["applied"])
            self.outbox.restore([entry.clone()
                                 for entry in state["pending"]])
            manager.handlers.restore(state["registrations"])
            self.kernel.dead_letters.restore(state.get("dead_letters", ()))
            for oid, snapshot in state["objects"].items():
                if manager.get(oid) is None:
                    manager.adopt(restore_object(snapshot))
                    restored_objects += 1
        for record in tail:
            if record.rtype in (REC_POST, REC_ACK):
                self.outbox.apply_record(record)
            elif record.rtype == REC_APPLIED:
                self.applied.add(record.data["entry_id"])
            elif record.rtype == REC_UNAPPLIED:
                self.applied.discard(record.data["entry_id"])
            elif record.rtype == REC_REG:
                manager.handlers.register(record.data["oid"],
                                          record.data["event"],
                                          record.data["fn_name"])
            elif record.rtype == REC_UNREG:
                manager.handlers.unregister(record.data["oid"],
                                            record.data["event"])
            elif record.rtype == REC_DEAD:
                self.kernel.dead_letters.replay_add(record.data)
            elif record.rtype == REC_DEAD_REQUEUE:
                self.kernel.dead_letters.replay_remove(
                    record.data["dl_id"])
        self.outbox.park_all()
        # Re-baseline the snapshot chain: the tail replay mutated the
        # applied set outside the delta trackers, so the next checkpoint
        # must capture the full recovered set (O(n) once per recovery).
        self._applied_base = None
        self._applied_added = set(self.applied)
        self._applied_removed = set()
        replayed = len(tail) + (1 if state is not None else 0)
        recovery_time = replayed * self.kernel.config.replay_cost
        self.recovery_log.append({
            "at": self.sim.now, "replayed": replayed,
            "recovery_time": recovery_time,
            "restored_objects": restored_objects,
            "pending_redelivery": len(self.outbox),
            "registrations": len(manager.handlers),
        })
        return replayed, recovery_time

    def schedule_redelivery(self, delay: float) -> None:
        """After the charged replay time: re-dispatch everything pending
        from this node and tell the cluster so peers flush entries
        addressed here."""

        def redeliver() -> None:
            if self.kernel.crashed:
                return  # crashed again before replay time elapsed
            for entry in self.outbox.pending():
                self._dispatch(entry)
            self.kernel.cluster.node_recovered(self.kernel.node_id)

        if delay > 0:
            self.sim.call_after(delay, redeliver)
        else:
            self.sim.call_soon(redeliver)

    # ==================================================================
    # redelivery (flush timer + recovery announcements)
    # ==================================================================

    def flush_to(self, dst: int) -> int:
        """A peer recovered: re-dispatch every pending entry bound for it
        (in-flight ones included — anything queued there died with it)."""
        entries = self.outbox.pending_for(dst)
        for entry in entries:
            self._dispatch(entry)
        return len(entries)

    def _dispatch(self, entry: OutboxEntry) -> None:
        self.outbox.mark_dispatched(entry)
        self.kernel.events.redeliver_entry(self.kernel.node_id, entry)

    def _arm_flush(self) -> None:
        interval = self.kernel.config.outbox_flush_interval
        if not self.enabled or interval is None or self.kernel.crashed:
            return
        if self._flush_timer is None:
            self._flush_timer = self.kernel.timers.set(
                interval, self._flush_tick)

    def _flush_tick(self) -> None:
        self._flush_timer = None
        if self.kernel.crashed:
            return
        skipped = False
        failure = self.kernel.failure
        for entry in self.outbox.parked():
            # Futile-retransmit guard: re-dispatching toward a peer the
            # failure detector currently suspects would burn the full
            # max_retransmits budget against a dead node every flush
            # period. Skip it and re-arm; the recovery announcement (or
            # the suspicion clearing before the next tick) delivers.
            if entry.dst is not None and failure.is_suspected(entry.dst):
                self.outbox.flush_skips += 1
                skipped = True
                continue
            self._dispatch(entry)
        if skipped:
            self._arm_flush()
        # Otherwise no immediate re-arm: a later give-up parks and
        # re-arms; this keeps the simulation quiescent once everything
        # resolves.

    # ==================================================================
    # reporting
    # ==================================================================

    def stats(self) -> dict[str, int]:
        return {**self.journal.stats(), **self.outbox.stats(),
                "checkpoints": self.checkpoints.taken,
                "applied": len(self.applied),
                "recoveries": len(self.recovery_log)}


__all__ = ["MSG_STORE_ACK", "NodeStore", "DELIVERED", "NOTICED",
           "QUARANTINED"]
