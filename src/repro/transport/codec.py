"""Compact wire codec for cross-process message envelopes.

The sharded backend used to ship every cross-shard
:class:`~repro.net.message.Message` as one ``pickle.dumps`` call, and
the TCP backend framed pickles behind a JSON header. Pickle is general
but pays for that generality on every envelope: module-path strings,
memo tables, and the full reduce protocol for what is almost always
the same handful of shapes. This codec replaces it with a struct-packed
envelope encoder plus a **shape registry** for the payload types that
actually cross the wire (capabilities, thread/group ids, event blocks,
thread snapshots), falling back to pickle *per value* for anything it
does not recognise — so arbitrary user payloads still travel, they just
skip the fast path.

Determinism contract (the part that lets the sharded backend default to
this codec): decoding reconstructs objects with ``__new__`` + attribute
assignment, exactly like unpickling, so the receiving process's
module-level id counters (``Message.msg_id``, ``EventBlock.block_id``)
are **not** advanced and every id survives the hop verbatim. A decoded
envelope is indistinguishable from an unpickled one, which is why
same-seed sharded digests are bit-identical with the codec on or off
(asserted by the differential tests and the E15 bench).

Wire format, all integers as zigzag varints and floats as IEEE-754
doubles (bit-exact — virtual timestamps must survive the hop)::

    message   := VERSION flags src dst mtype payload size msg_id
                 [rel_node rel_seq] [ack] [gossip]
    batch     := VERSION count { deliver_at seq dst message }*
    value     := tag <tag-specific body>

Unknown version bytes or value tags raise :class:`CodecError` (a
:class:`~repro.errors.NetworkError`), so a frame from a different codec
revision fails loudly instead of mis-decoding.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any

from repro.errors import NetworkError

__all__ = [
    "CodecError", "encode_message", "decode_message",
    "encode_batch", "decode_batch",
]

#: bump on any incompatible wire-format change
VERSION = 1

_DOUBLE = struct.Struct(">d")


class CodecError(NetworkError):
    """A frame could not be encoded/decoded by this codec revision."""


# ----------------------------------------------------------------------
# varints (zigzag so negative ids — e.g. the -1 reply src — stay small)
# ----------------------------------------------------------------------

def _append_uvarint(out: bytearray, value: int) -> None:
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _append_varint(out: bytearray, value: int) -> None:
    # zigzag works for arbitrary-precision ints: no 64-bit clamp
    _append_uvarint(out, (value << 1) if value >= 0 else ((-value << 1) - 1))


def _read_uvarint(buf: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        try:
            byte = buf[pos]
        except IndexError:
            raise CodecError("truncated varint") from None
        pos += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, pos
        shift += 7


def _read_varint(buf: bytes, pos: int) -> tuple[int, int]:
    raw, pos = _read_uvarint(buf, pos)
    return (raw >> 1) ^ -(raw & 1), pos


# ----------------------------------------------------------------------
# value encoding
# ----------------------------------------------------------------------

_T_NONE = 0
_T_TRUE = 1
_T_FALSE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6
_T_TUPLE = 7
_T_LIST = 8
_T_DICT = 9
_T_CAPABILITY = 10
_T_THREAD_ID = 11
_T_GROUP_ID = 12
_T_FRAME_INFO = 13
_T_SNAPSHOT = 14
_T_EVENT_BLOCK = 15
_T_PICKLE = 16

#: message types observed on the fabric, in registry order — the wire
#: carries ``index + 1`` (0 = inline string follows). Append only;
#: reordering is a VERSION bump.
MTYPE_REGISTRY = (
    "event.post-object", "event.resume", "rel.ack", "store.ack",
    "rpc.request", "rpc.reply", "invoke.request", "invoke.reply",
    "locate.bcast", "locate.bcast-reply", "locate.path",
    "locate.mcast", "locate.mcast-reply", "locate.cached",
    "thread.complete", "thread.unwind", "fd.beat",
    "dsm.installed", "dsm.inval", "dsm.page", "dsm.yield",
    "swim.ping", "swim.ack", "swim.ping-req", "swim.gossip",
)
_MTYPE_TAG = {name: i + 1 for i, name in enumerate(MTYPE_REGISTRY)}


def _append_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    _append_uvarint(out, len(raw))
    out += raw


def _read_str(buf: bytes, pos: int) -> tuple[str, int]:
    length, pos = _read_uvarint(buf, pos)
    end = pos + length
    if end > len(buf):
        raise CodecError("truncated string")
    return buf[pos:end].decode("utf-8"), end


def _append_value(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif type(value) is int:
        out.append(_T_INT)
        _append_varint(out, value)
    elif type(value) is float:
        out.append(_T_FLOAT)
        out += _DOUBLE.pack(value)
    elif type(value) is str:
        out.append(_T_STR)
        _append_str(out, value)
    elif type(value) is bytes:
        out.append(_T_BYTES)
        _append_uvarint(out, len(value))
        out += value
    elif type(value) is tuple:
        out.append(_T_TUPLE)
        _append_uvarint(out, len(value))
        for item in value:
            _append_value(out, item)
    elif type(value) is list:
        out.append(_T_LIST)
        _append_uvarint(out, len(value))
        for item in value:
            _append_value(out, item)
    elif type(value) is dict:
        out.append(_T_DICT)
        _append_uvarint(out, len(value))
        for key, item in value.items():
            _append_value(out, key)
            _append_value(out, item)
    else:
        _append_shape(out, value)


def _append_shape(out: bytearray, value: Any) -> None:
    """Registry of common payload shapes; pickle for everything else.

    ``type() is`` checks, not isinstance: a subclass may carry extra
    state the shape encoding would drop, so subclasses take the pickle
    fallback and lose nothing.
    """
    from repro.events.block import EventBlock, FrameInfo, ThreadSnapshot
    from repro.objects.capability import Capability
    from repro.threads.ids import GroupId, ThreadId
    kind = type(value)
    if kind is Capability:
        out.append(_T_CAPABILITY)
        _append_varint(out, value.oid)
        _append_varint(out, value.home)
        _append_str(out, value.transport)
        _append_str(out, value.cls_name)
    elif kind is ThreadId:
        out.append(_T_THREAD_ID)
        _append_varint(out, value.root)
        _append_varint(out, value.seq)
    elif kind is GroupId:
        out.append(_T_GROUP_ID)
        _append_varint(out, value.root)
        _append_varint(out, value.seq)
    elif kind is FrameInfo:
        out.append(_T_FRAME_INFO)
        _append_varint(out, value.oid)
        _append_str(out, value.entry)
        _append_varint(out, value.node)
        _append_varint(out, value.steps)
    elif kind is ThreadSnapshot:
        out.append(_T_SNAPSHOT)
        _append_value(out, value.tid)
        _append_str(out, value.state)
        _append_value(out, value.node)
        _append_value(out, value.frames)
    elif kind is EventBlock:
        out.append(_T_EVENT_BLOCK)
        for slot in EventBlock.__slots__:
            _append_value(out, getattr(value, slot))
    else:
        raw = pickle.dumps(value)
        out.append(_T_PICKLE)
        _append_uvarint(out, len(raw))
        out += raw


def _read_value(buf: bytes, pos: int) -> tuple[Any, int]:
    try:
        tag = buf[pos]
    except IndexError:
        raise CodecError("truncated value") from None
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        return _read_varint(buf, pos)
    if tag == _T_FLOAT:
        end = pos + _DOUBLE.size
        if end > len(buf):
            raise CodecError("truncated float")
        return _DOUBLE.unpack_from(buf, pos)[0], end
    if tag == _T_STR:
        return _read_str(buf, pos)
    if tag == _T_BYTES:
        length, pos = _read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated bytes")
        return buf[pos:end], end
    if tag == _T_TUPLE or tag == _T_LIST:
        count, pos = _read_uvarint(buf, pos)
        items = []
        for _ in range(count):
            item, pos = _read_value(buf, pos)
            items.append(item)
        return (tuple(items) if tag == _T_TUPLE else items), pos
    if tag == _T_DICT:
        count, pos = _read_uvarint(buf, pos)
        data = {}
        for _ in range(count):
            key, pos = _read_value(buf, pos)
            item, pos = _read_value(buf, pos)
            data[key] = item
        return data, pos
    return _read_shape(tag, buf, pos)


def _read_shape(tag: int, buf: bytes, pos: int) -> tuple[Any, int]:
    from repro.events.block import EventBlock, FrameInfo, ThreadSnapshot
    from repro.objects.capability import Capability
    from repro.threads.ids import GroupId, ThreadId
    if tag == _T_CAPABILITY:
        oid, pos = _read_varint(buf, pos)
        home, pos = _read_varint(buf, pos)
        transport, pos = _read_str(buf, pos)
        cls_name, pos = _read_str(buf, pos)
        return Capability(oid=oid, home=home, transport=transport,
                          cls_name=cls_name), pos
    if tag == _T_THREAD_ID or tag == _T_GROUP_ID:
        root, pos = _read_varint(buf, pos)
        seq, pos = _read_varint(buf, pos)
        cls = ThreadId if tag == _T_THREAD_ID else GroupId
        return cls(root=root, seq=seq), pos
    if tag == _T_FRAME_INFO:
        oid, pos = _read_varint(buf, pos)
        entry, pos = _read_str(buf, pos)
        node, pos = _read_varint(buf, pos)
        steps, pos = _read_varint(buf, pos)
        return FrameInfo(oid=oid, entry=entry, node=node, steps=steps), pos
    if tag == _T_SNAPSHOT:
        tid, pos = _read_value(buf, pos)
        state, pos = _read_str(buf, pos)
        node, pos = _read_value(buf, pos)
        frames, pos = _read_value(buf, pos)
        return ThreadSnapshot(tid=tid, state=state, node=node,
                              frames=frames), pos
    if tag == _T_EVENT_BLOCK:
        # __new__ + setattr, like unpickling: the receiver's module
        # counter must not tick and block_id arrives verbatim
        block = EventBlock.__new__(EventBlock)
        for slot in EventBlock.__slots__:
            value, pos = _read_value(buf, pos)
            setattr(block, slot, value)
        return block, pos
    if tag == _T_PICKLE:
        length, pos = _read_uvarint(buf, pos)
        end = pos + length
        if end > len(buf):
            raise CodecError("truncated pickle fallback")
        return pickle.loads(buf[pos:end]), end
    raise CodecError(f"unknown value tag {tag} (codec version {VERSION})")


# ----------------------------------------------------------------------
# message envelopes
# ----------------------------------------------------------------------

_F_DST_STR = 1
_F_REL = 2
_F_ACK = 4
# Piggybacked SWIM gossip (PR 10). Optional-field flags keep knobs-off
# frames byte-identical to earlier builds, so VERSION stays 1.
_F_GOSSIP = 8


def _append_message(out: bytearray, message: Any) -> None:
    flags = 0
    if type(message.dst) is not int:
        flags |= _F_DST_STR
    if message.rel is not None:
        flags |= _F_REL
    if message.ack is not None:
        flags |= _F_ACK
    if message.gossip is not None:
        flags |= _F_GOSSIP
    out.append(flags)
    _append_varint(out, message.src)
    if flags & _F_DST_STR:
        _append_str(out, message.dst)
    else:
        _append_varint(out, message.dst)
    tag = _MTYPE_TAG.get(message.mtype, 0)
    _append_uvarint(out, tag)
    if not tag:
        _append_str(out, message.mtype)
    _append_value(out, message.payload)
    _append_varint(out, message.size)
    _append_varint(out, message.msg_id)
    if flags & _F_REL:
        _append_varint(out, message.rel[0])
        _append_varint(out, message.rel[1])
    if flags & _F_ACK:
        _append_varint(out, message.ack)
    if flags & _F_GOSSIP:
        _append_value(out, message.gossip)


def _read_message(buf: bytes, pos: int) -> tuple[Any, int]:
    from repro.net.message import Message
    try:
        flags = buf[pos]
    except IndexError:
        raise CodecError("truncated envelope") from None
    pos += 1
    src, pos = _read_varint(buf, pos)
    if flags & _F_DST_STR:
        dst, pos = _read_str(buf, pos)
    else:
        dst, pos = _read_varint(buf, pos)
    tag, pos = _read_uvarint(buf, pos)
    if tag:
        if tag > len(MTYPE_REGISTRY):
            raise CodecError(
                f"unknown mtype tag {tag} (codec version {VERSION})")
        mtype = MTYPE_REGISTRY[tag - 1]
    else:
        mtype, pos = _read_str(buf, pos)
    payload, pos = _read_value(buf, pos)
    size, pos = _read_varint(buf, pos)
    msg_id, pos = _read_varint(buf, pos)
    rel = ack = gossip = None
    if flags & _F_REL:
        rel_node, pos = _read_varint(buf, pos)
        rel_seq, pos = _read_varint(buf, pos)
        rel = (rel_node, rel_seq)
    if flags & _F_ACK:
        ack, pos = _read_varint(buf, pos)
    if flags & _F_GOSSIP:
        gossip, pos = _read_value(buf, pos)
    message = Message.__new__(Message)
    message.src = src
    message.dst = dst
    message.mtype = mtype
    message.payload = payload
    message.size = size
    message.msg_id = msg_id
    message.rel = rel
    message.ack = ack
    message.gossip = gossip
    return message, pos


def encode_message(message: Any) -> bytes:
    """One envelope to bytes (self-delimiting)."""
    out = bytearray()
    out.append(VERSION)
    _append_message(out, message)
    return bytes(out)


def decode_message(buf: bytes) -> Any:
    """Inverse of :func:`encode_message`."""
    if not buf:
        raise CodecError("empty frame")
    if buf[0] != VERSION:
        raise CodecError(f"unknown codec version {buf[0]} "
                         f"(this build speaks {VERSION})")
    message, _pos = _read_message(buf, 1)
    return message


# ----------------------------------------------------------------------
# window batches (the sharded barrier's unit of transfer)
# ----------------------------------------------------------------------

def encode_batch(records: list[tuple[float, int, Any, int]]) -> bytes:
    """Pack ``(deliver_at, seq, message, dst)`` records into one blob.

    One blob per (destination shard, window) replaces one pickle per
    message on the barrier pipes; the parent routes blobs by counting,
    never decoding.
    """
    out = bytearray()
    out.append(VERSION)
    _append_uvarint(out, len(records))
    for deliver_at, seq, message, dst in records:
        out += _DOUBLE.pack(deliver_at)
        _append_uvarint(out, seq)
        _append_varint(out, dst)
        _append_message(out, message)
    return bytes(out)


def decode_batch(blob: bytes) -> list[tuple[float, int, Any, int]]:
    """Inverse of :func:`encode_batch`."""
    if not blob:
        raise CodecError("empty batch")
    if blob[0] != VERSION:
        raise CodecError(f"unknown codec version {blob[0]} "
                         f"(this build speaks {VERSION})")
    count, pos = _read_uvarint(blob, 1)
    records = []
    for _ in range(count):
        end = pos + _DOUBLE.size
        if end > len(blob):
            raise CodecError("truncated batch record")
        deliver_at = _DOUBLE.unpack_from(blob, pos)[0]
        seq, pos = _read_uvarint(blob, end)
        dst, pos = _read_varint(blob, pos)
        message, pos = _read_message(blob, pos)
        records.append((deliver_at, seq, message, dst))
    return records
