"""Pluggable transport backends behind the cluster's message fabric.

The :class:`~repro.transport.base.Transport` port separates the event
kernel's semantics from the communication medium (the modularity AMECOS
argues for): the same reliable/durable/supervised stack runs on

* :class:`~repro.transport.simlocal.SimTransport` — the deterministic
  single-process simulator (reference; bit-identical same-seed digests);
* :class:`~repro.transport.sharded.ShardSimTransport` plus
  :func:`~repro.transport.sharded.run_sharded` — nodes partitioned
  across worker processes under conservative time-window
  synchronization (lookahead = min link latency);
* :class:`~repro.transport.tcp.AsyncioTransport` — real TCP sockets,
  length-prefixed frames, wall-clock timers.

Select with ``ClusterConfig(transport="sim" | "sharded" | "tcp")``.
The sharded and tcp modules are imported lazily by the factory so the
deterministic test path never pays for asyncio or multiprocessing.
"""

from repro.transport.base import (
    TRANSPORT_BACKEND_NAMES,
    Transport,
    make_transport,
)
from repro.transport.simlocal import SimTransport

__all__ = [
    "TRANSPORT_BACKEND_NAMES",
    "SimTransport",
    "Transport",
    "make_transport",
]
