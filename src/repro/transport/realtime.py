"""Wall-clock scheduler over an asyncio loop (the tcp backend's clock).

Every subsystem in the library schedules against the ``Simulator``
surface — ``now`` / ``call_at`` / ``call_after`` / ``call_soon`` /
``run`` / ``pending`` / ``stats``.  :class:`RealtimeScheduler`
implements that surface with real time: timers are
``loop.call_later`` entries, ``now`` is seconds of wall-clock since the
scheduler was built, and :meth:`run` actually *blocks* the calling
thread while the asyncio loop turns.

Semantics kept from the simulator:

* ``run(until=t)`` returns once ``now`` reaches ``t`` (so existing
  drive loops like ``cluster.run(until=cluster.now + 0.25)`` behave as
  "run for a quarter second");
* ``run()`` with no deadline returns when the scheduler is **idle** —
  no live timers and every registered idle hook (the transport's
  "no frames in flight" check) agrees;
* callbacks fire in non-decreasing time, ties in scheduling order
  (asyncio's ``call_later`` guarantees FIFO per instant);
* a callback exception aborts the run and re-raises from :meth:`run`,
  like the simulator's synchronous propagation, instead of vanishing
  into the loop's exception handler.

What is *not* kept — determinism.  Wall-clock runs are not seed
reproducible; that is the whole point of having the sim backends.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import Any, Callable

from repro.errors import SimulationError

SCHEDULER_REALTIME = "realtime"


class RealtimeHandle:
    """Cancellation handle mirroring :class:`repro.sim.scheduler.Handle`."""

    __slots__ = ("when", "seq", "_timer", "_scheduler", "_done")

    def __init__(self, when: float, seq: int,
                 scheduler: "RealtimeScheduler") -> None:
        self.when = when
        self.seq = seq
        self._timer: asyncio.TimerHandle | None = None
        self._scheduler = scheduler
        self._done = False

    def cancel(self) -> None:
        if self._done:
            return
        self._done = True
        if self._timer is not None:
            self._timer.cancel()
        self._scheduler._pending -= 1

    @property
    def cancelled(self) -> bool:
        return self._done

    def __repr__(self) -> str:  # pragma: no cover - diagnostic only
        state = "done/cancelled" if self._done else "pending"
        return f"RealtimeHandle(when={self.when!r}, seq={self.seq}, {state})"


class RealtimeScheduler:
    """The ``Simulator`` surface on wall-clock time.

    Parameters
    ----------
    poll:
        Idle/deadline check period in seconds while :meth:`run` drives
        the loop.  Timers themselves are native asyncio timers and do
        not wait for a poll tick; only run-loop *exit* is polled.
    """

    backend = SCHEDULER_REALTIME

    def __init__(self, poll: float = 0.005) -> None:
        self._loop = asyncio.new_event_loop()
        self._t0 = self._loop.time()
        self._seq = itertools.count()
        self._pending = 0
        self._events = 0
        self._error: BaseException | None = None
        self._poll = poll
        #: zero-arg callables that must all return True for ``run()``
        #: (no deadline) to consider the system idle
        self._idle_hooks: list[Callable[[], bool]] = []
        self._closed = False

    # -- Simulator surface ---------------------------------------------

    @property
    def now(self) -> float:
        """Seconds of wall-clock since the scheduler was created."""
        return self._loop.time() - self._t0

    @property
    def events_processed(self) -> int:
        return self._events

    @property
    def pending(self) -> int:
        return self._pending

    @property
    def compactions(self) -> int:
        return 0  # no lazy-cancellation queue to compact

    def stats(self) -> dict[str, Any]:
        return {
            "backend": self.backend,
            "now": self.now,
            "pending": self._pending,
            "events_processed": self._events,
            "cancelled": 0,
            "compactions": 0,
        }

    def call_at(self, when: float, fn: Callable[..., Any],
                *args: Any) -> RealtimeHandle:
        return self._schedule(max(0.0, when - self.now), when, fn, args)

    def call_after(self, delay: float, fn: Callable[..., Any],
                   *args: Any) -> RealtimeHandle:
        delay = max(0.0, delay)
        return self._schedule(delay, self.now + delay, fn, args)

    def call_soon(self, fn: Callable[..., Any],
                  *args: Any) -> RealtimeHandle:
        return self._schedule(0.0, self.now, fn, args)

    def _schedule(self, delay: float, when: float, fn: Callable[..., Any],
                  args: tuple) -> RealtimeHandle:
        if self._closed:
            raise SimulationError("scheduler is closed")
        handle = RealtimeHandle(when, next(self._seq), self)
        self._pending += 1

        def fire() -> None:
            handle._done = True
            self._pending -= 1
            self._events += 1
            try:
                fn(*args)
            except BaseException as exc:  # noqa: BLE001 - re-raised in run
                if self._error is None:
                    self._error = exc

        handle._timer = self._loop.call_later(delay, fire)
        return handle

    def run(self, until: float | None = None,
            max_events: int | None = 2_000_000) -> None:
        """Drive the loop until ``until`` wall-seconds of scheduler time,
        or (with no deadline) until timers and idle hooks drain."""
        if self._closed:
            raise SimulationError("scheduler is closed")

        async def drive() -> None:
            while True:
                if self._error is not None:
                    return
                if max_events is not None and self._events >= max_events:
                    return
                if until is not None:
                    remaining = until - self.now
                    if remaining <= 0:
                        return
                    await asyncio.sleep(min(self._poll, remaining))
                    continue
                if self._pending == 0 and all(
                        hook() for hook in self._idle_hooks):
                    return
                await asyncio.sleep(self._poll)

        self._loop.run_until_complete(drive())
        if self._error is not None:
            error, self._error = self._error, None
            raise error

    # -- realtime extras ------------------------------------------------

    def add_idle_hook(self, hook: Callable[[], bool]) -> None:
        """Register an extra idleness condition (frames in flight)."""
        self._idle_hooks.append(hook)

    def run_coroutine(self, coro: Any) -> Any:
        """Run one coroutine to completion (transport setup/teardown)."""
        return self._loop.run_until_complete(coro)

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._loop.close()
