"""The transport port: the narrow seam between the cluster and its wire.

The paper's event kernel assumes a message fabric but says nothing about
how it is realized (§2 simply posits "a message-based kernel").  This
module pins that assumption down to a small, explicit protocol —
:class:`Transport` — so the same kernel/event/durability stack can run
on different communication media:

* :class:`~repro.transport.simlocal.SimTransport` — the deterministic
  single-process simulator (the reference; bit-identical to the
  pre-port behaviour);
* :class:`~repro.transport.sharded.ShardSimTransport` — one shard of a
  conservatively-synchronized multi-process simulation (scale-out runs
  of 100+ nodes);
* :class:`~repro.transport.tcp.AsyncioTransport` — real TCP sockets on
  an asyncio event loop with wall-clock timers.

The port is deliberately narrow.  A transport owns exactly three
things:

1. **the endpoint registry** — ``attach``/``detach`` a per-node
   delivery callback, look endpoints up, and remember every node id
   ever seen (a known-but-detached node is a crashed machine whose
   traffic the wire swallows; an unknown id is a programming error);
2. **timed message movement** — :meth:`Transport.post` accepts one
   already-routed envelope plus the latency the fabric charged for it
   and delivers it to the destination endpoint that much later (virtual
   time on the simulators, wall-clock on TCP), through a single
   delivery hook the :class:`~repro.net.fabric.Fabric` installs so
   stats/tracing/fault bookkeeping stay in one place;
3. **the clock** — :attr:`Transport.scheduler` exposes the
   ``Simulator``-shaped surface (``now``/``call_at``/``call_after``/
   ``call_soon``/``run``/``pending``/``stats``) every other subsystem
   schedules against.  On the sim backends this *is* the deterministic
   :class:`~repro.sim.scheduler.Simulator`; on TCP it is a
   :class:`~repro.transport.realtime.RealtimeScheduler` over the
   asyncio loop.

Everything else — latency models, fault injection, multicast groups,
traffic stats, reliability, durability, supervision — stays above the
port and is therefore identical across backends.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import NetworkError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.net.message import Message

#: delivery callback a node registers for its endpoint
DeliveryFn = Callable[["Message"], None]
#: hook the fabric installs: ``(message, dst)`` at delivery time
DeliveryHook = Callable[["Message", int], None]

#: transport backend names (`ClusterConfig.transport`)
TRANSPORT_SIM = "sim"
TRANSPORT_SHARDED = "sharded"
TRANSPORT_TCP = "tcp"
TRANSPORT_BACKEND_NAMES = (TRANSPORT_SIM, TRANSPORT_SHARDED, TRANSPORT_TCP)


class Transport(ABC):
    """Abstract message medium behind the fabric.

    Concrete transports provide a scheduler (the cluster's clock), an
    endpoint registry, and timed point-to-point delivery.  Fan-out,
    latency choice, fault injection and statistics belong to the
    :class:`~repro.net.fabric.Fabric` sitting above the port.
    """

    #: Simulator-shaped clock/timer surface (set by subclasses)
    scheduler: Any

    def __init__(self) -> None:
        self._endpoints: dict[int, DeliveryFn] = {}
        #: every node id ever attached (or declared via :meth:`add_known`)
        self._known: set[int] = set()
        self._hook: DeliveryHook | None = None

    # -- endpoint registry ---------------------------------------------

    def attach(self, node_id: int, deliver: DeliveryFn) -> None:
        """Register a node's delivery callback."""
        if node_id in self._endpoints:
            raise NetworkError(f"node {node_id} already attached")
        self._endpoints[node_id] = deliver
        self._known.add(node_id)

    def detach(self, node_id: int) -> None:
        self._endpoints.pop(node_id, None)

    def endpoint(self, node_id: int) -> DeliveryFn | None:
        return self._endpoints.get(node_id)

    def add_known(self, node_id: int) -> None:
        """Declare a node id as existing without attaching an endpoint
        (a peer hosted by another shard or process)."""
        self._known.add(node_id)

    def known(self, node_id: int) -> bool:
        return node_id in self._known

    def routable(self, node_id: int) -> bool:
        """Whether a message to ``node_id`` can move right now.

        Locally attached by default.  The sharded backend also routes
        ids owned by other shards — whether the remote node is alive is
        decided at the owning shard, exactly as a real wire cannot know
        the far end crashed.
        """
        return node_id in self._endpoints

    @property
    def node_ids(self) -> list[int]:
        """Locally attached node ids, sorted."""
        return sorted(self._endpoints)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._endpoints

    # -- delivery -------------------------------------------------------

    def set_delivery_hook(self, hook: DeliveryHook) -> None:
        """Install the fabric's delivery entry point.

        Every arriving envelope is handed to ``hook(message, dst)``; the
        hook does the stats/trace bookkeeping and invokes the endpoint
        (or records the drop when the node detached in flight).
        """
        self._hook = hook

    @abstractmethod
    def post(self, message: "Message", dst: int, delay: float) -> None:
        """Deliver ``message`` to ``dst``'s endpoint after ``delay``
        seconds (virtual or wall-clock, per backend)."""

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Bring the medium up (bind sockets, spawn workers).  The
        in-process simulator needs nothing, so the default is a no-op."""

    def close(self) -> None:
        """Release external resources.  No-op by default."""

    def stats(self) -> dict[str, Any]:
        """Backend counters, one uniform schema."""
        return {"backend": self.backend_name(), "attached": len(self._endpoints)}

    @classmethod
    def backend_name(cls) -> str:
        return getattr(cls, "BACKEND", cls.__name__)


def make_transport(config: Any) -> Transport:
    """Build the transport named by ``config.transport``.

    The import dance is deliberate: the TCP backend pulls in asyncio and
    the sharded backend pulls in multiprocessing, neither of which the
    deterministic test suite should pay for.
    """
    name = getattr(config, "transport", TRANSPORT_SIM)
    if name == TRANSPORT_SIM:
        from repro.sim.scheduler import make_simulator
        from repro.transport.simlocal import SimTransport
        return SimTransport(make_simulator(
            config.scheduler, wheel_tick=config.wheel_tick,
            wheel_slots=config.wheel_slots))
    if name == TRANSPORT_SHARDED:
        from repro.sim.scheduler import make_simulator
        from repro.transport.sharded import ShardSimTransport
        if config.shard_index is None:
            raise NetworkError(
                "transport='sharded' builds one shard of a multi-process "
                "run and needs shard_index; drive whole clusters through "
                "repro.transport.sharded.run_sharded(...)")
        return ShardSimTransport(
            make_simulator(config.scheduler, wheel_tick=config.wheel_tick,
                           wheel_slots=config.wheel_slots),
            local_nodes=config.local_node_ids(),
            all_nodes=range(config.n_nodes),
            lookahead=config.effective_shard_window())
    if name == TRANSPORT_TCP:
        from repro.transport.tcp import AsyncioTransport
        return AsyncioTransport(host=config.tcp_host,
                                base_port=config.tcp_base_port,
                                wire_codec=config.wire_codec)
    raise NetworkError(
        f"unknown transport backend {name!r}; "
        f"choose from {TRANSPORT_BACKEND_NAMES}")
