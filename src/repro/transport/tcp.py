"""Real TCP transport: loopback sockets, length-prefixed frames.

The proof that nothing above the port secretly depends on the
simulator: ``ClusterConfig(transport="tcp")`` runs the *stock*
kernel/event/reliable/durable/supervision stack over actual sockets
with wall-clock timers.  One asyncio loop (owned by the cluster's
:class:`~repro.transport.realtime.RealtimeScheduler`) hosts one
listening socket per node; a message posted to node ``d`` rides a real
TCP connection to ``d``'s server and re-enters the fabric's delivery
hook on arrival.

Wire format — length-prefixed frames::

    4-byte big-endian frame length
    1-byte format:     0 = codec | 1 = pickle | 2 = token
    uvarint dst node
    body:              codec-encoded or pickled Message | OOB token

Envelopes normally travel through the compact wire codec
(:mod:`repro.transport.codec` — the same format the sharded backend
batches over its pipes), a real serialization boundary: the receiver
gets a deep copy.  A message the codec cannot express (which implies
pickle inside the codec failed too) falls back to plain pickle, and a
message whose user payload refuses to pickle entirely falls back to an
out-of-band token table — the frame carries a token, the object stays
in process.  That last fallback is what makes this a *loopback
cluster* backend: all nodes live in one process and real distribution
across machines would require every payload to serialize.  The smoke
bench and example keep payloads plain, so their frames are honest
bytes.  ``wire_codec=False`` (the ``ClusterConfig.wire_codec`` knob)
restores the always-pickle framing.

Known limits, stated plainly: wall-clock runs are not seed
reproducible (use the sim backends for determinism), and fault
injection that depends on virtual time (``FaultPlan`` windows) ticks
in real seconds here.
"""

from __future__ import annotations

import itertools
import pickle
import struct
from typing import TYPE_CHECKING, Any

from repro.errors import NetworkError
from repro.transport import codec
from repro.transport.base import Transport
from repro.transport.codec import _append_uvarint, _read_uvarint
from repro.transport.realtime import RealtimeScheduler

if TYPE_CHECKING:  # pragma: no cover - typing only
    import asyncio

    from repro.net.message import Message

#: frame length prefix: 4-byte unsigned big-endian
_LEN = struct.Struct(">I")

#: frame body formats (first byte after the length prefix)
_FMT_CODEC = 0
_FMT_PICKLE = 1
_FMT_TOKEN = 2


class _FrameReceiver:
    """asyncio.Protocol reassembling length-prefixed frames."""

    def __init__(self, owner: "AsyncioTransport") -> None:
        self._owner = owner
        self._buf = bytearray()

    # asyncio.Protocol interface (duck-typed; BaseProtocol methods that
    # we do not need are omitted and asyncio tolerates that only on
    # subclasses, so provide the full minimal set explicitly)
    def connection_made(self, transport: Any) -> None:
        self._transport = transport

    def connection_lost(self, exc: Exception | None) -> None:
        pass

    def pause_writing(self) -> None:  # pragma: no cover - backpressure
        pass

    def resume_writing(self) -> None:  # pragma: no cover - backpressure
        pass

    def eof_received(self) -> bool:
        return False

    def data_received(self, data: bytes) -> None:
        buf = self._buf
        buf += data
        while len(buf) >= _LEN.size:
            (length,) = _LEN.unpack_from(buf)
            end = _LEN.size + length
            if len(buf) < end:
                break
            frame = bytes(buf[_LEN.size:end])
            del buf[:end]
            self._owner._on_frame(frame)


class AsyncioTransport(Transport):
    """TCP loopback transport on an asyncio loop.

    Parameters
    ----------
    host:
        Interface to bind per-node servers on (default loopback).
    base_port:
        ``0`` (default) binds ephemeral ports and records the actual
        address per node; a non-zero base gives node ``i`` port
        ``base_port + i``.
    poll:
        Run-loop exit poll period handed to the scheduler.
    wire_codec:
        Encode envelopes with the compact wire codec (default); False
        restores the always-pickle framing.
    """

    BACKEND = "tcp"

    def __init__(self, host: str = "127.0.0.1", base_port: int = 0,
                 poll: float = 0.005, wire_codec: bool = True) -> None:
        super().__init__()
        self._wire_codec = wire_codec
        self.scheduler = RealtimeScheduler(poll=poll)
        self.scheduler.add_idle_hook(lambda: self._in_flight == 0)
        self._host = host
        self._base_port = base_port
        self._servers: dict[int, "asyncio.AbstractServer"] = {}
        #: node -> (host, port) actually bound
        self.addresses: dict[int, tuple[str, int]] = {}
        #: node -> client connection (one per destination)
        self._conns: dict[int, Any] = {}
        self._in_flight = 0
        self._posted = 0
        self._frames_sent = 0
        self._frames_received = 0
        self._bytes_sent = 0
        #: unpicklable payload fallback: token -> live message
        self._oob: dict[int, "Message"] = {}
        self._oob_sent = 0
        self._token = itertools.count(1)
        self._started = False

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Bind one server per attached node, then dial each of them."""
        if self._started:
            return
        loop = self.scheduler.loop

        async def bring_up() -> None:
            for node in sorted(self._endpoints):
                port = (0 if self._base_port == 0
                        else self._base_port + node)
                server = await loop.create_server(
                    lambda: _FrameReceiver(self), self._host, port)
                self._servers[node] = server
                sockname = server.sockets[0].getsockname()
                self.addresses[node] = (sockname[0], sockname[1])
            for node in sorted(self._endpoints):
                host, port = self.addresses[node]
                conn, _protocol = await loop.create_connection(
                    lambda: _FrameReceiver(self), host, port)
                self._conns[node] = conn

        loop.run_until_complete(bring_up())
        self._started = True

    def close(self) -> None:
        if self.scheduler._closed:
            return
        loop = self.scheduler.loop
        for conn in self._conns.values():
            conn.close()
        self._conns.clear()

        async def shut_down() -> None:
            for server in self._servers.values():
                server.close()
                await server.wait_closed()

        loop.run_until_complete(shut_down())
        self._servers.clear()
        self._oob.clear()
        self.scheduler.close()

    # -- timed movement -------------------------------------------------

    def post(self, message: "Message", dst: int, delay: float) -> None:
        self._posted += 1
        self._in_flight += 1
        self.scheduler.call_after(delay, self._transmit, message, dst)

    def _transmit(self, message: "Message", dst: int) -> None:
        conn = self._conns.get(dst)
        if conn is None or conn.is_closing():
            # The wire to a gone destination swallows the frame, like a
            # crashed machine's NIC; local crash semantics are handled
            # above the port by the fabric/kernel.
            self._in_flight -= 1
            return
        body = None
        fmt = _FMT_PICKLE
        if self._wire_codec:
            try:
                body = codec.encode_message(message)
                fmt = _FMT_CODEC
            except Exception:  # noqa: BLE001 - unencodable payload
                body = None
        if body is None:
            try:
                body = pickle.dumps(message)
                fmt = _FMT_PICKLE
            except Exception:  # noqa: BLE001 - unpicklable user payload
                token = next(self._token)
                self._oob[token] = message
                self._oob_sent += 1
                body = str(token).encode("ascii")
                fmt = _FMT_TOKEN
        head = bytearray((fmt,))
        _append_uvarint(head, dst)
        payload = bytes(head) + body
        conn.write(_LEN.pack(len(payload)) + payload)
        self._frames_sent += 1
        self._bytes_sent += _LEN.size + len(payload)

    # -- receive path ---------------------------------------------------

    def _on_frame(self, frame: bytes) -> None:
        fmt = frame[0]
        dst, pos = _read_uvarint(frame, 1)
        body = frame[pos:]
        if fmt == _FMT_CODEC:
            message = codec.decode_message(body)
        elif fmt == _FMT_PICKLE:
            message = pickle.loads(body)
        elif fmt == _FMT_TOKEN:
            message = self._oob.pop(int(body))
        else:
            raise NetworkError(f"unknown tcp frame format {fmt}")
        self._frames_received += 1
        # hop back onto the scheduler so delivery order/stats match the
        # timer path and the idle hook sees the decrement
        self.scheduler.call_soon(self._deliver, message, dst)

    def _deliver(self, message: "Message", dst: int) -> None:
        try:
            if self._hook is None:  # pragma: no cover - wiring guard
                raise NetworkError("no delivery hook installed")
            self._hook(message, dst)
        finally:
            self._in_flight -= 1

    # -- stats ----------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        data = super().stats()
        data.update(
            posted=self._posted,
            frames_sent=self._frames_sent,
            frames_received=self._frames_received,
            bytes_sent=self._bytes_sent,
            in_flight=self._in_flight,
            oob_tokens=self._oob_sent,
        )
        return data
