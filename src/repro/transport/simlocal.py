"""Deterministic single-process transport (the reference backend).

:class:`SimTransport` realizes the :class:`~repro.transport.base.Transport`
port over the in-process discrete-event :class:`~repro.sim.scheduler.
Simulator`: delivery after ``delay`` is exactly one ``call_after`` on the
shared virtual clock, so the port refactor costs nothing — same-seed runs
are bit-identical to the pre-port tree (the transport-smoke CI job holds
the chaos/durable/fastpath digests to the frozen reference values).
"""

from __future__ import annotations

from typing import Any

from repro.transport.base import Transport

if False:  # pragma: no cover - typing only
    from repro.net.message import Message
    from repro.sim.scheduler import Simulator


class SimTransport(Transport):
    """In-process virtual-time transport over one deterministic simulator.

    Parameters
    ----------
    scheduler:
        The :class:`~repro.sim.scheduler.Simulator` (heap or wheel
        backend) providing virtual time.  The cluster, the kernels and
        the transport all share this one instance, exactly as before the
        port existed.
    """

    BACKEND = "sim"

    def __init__(self, scheduler: "Simulator") -> None:
        super().__init__()
        self.scheduler = scheduler
        self._posted = 0

    def post(self, message: "Message", dst: int, delay: float) -> None:
        self._posted += 1
        self.scheduler.call_after(delay, self._dispatch, message, dst)

    def _dispatch(self, message: "Message", dst: int) -> None:
        # The hook (Fabric._deliver) owns stats/tracing and handles the
        # detached-in-flight case; a hook is always installed by the
        # time messages move.
        self._hook(message, dst)

    def stats(self) -> dict[str, Any]:
        data = super().stats()
        data["posted"] = self._posted
        return data
