"""Sharded multi-process simulation: conservative time-window PDES.

The single-process simulator caps every run at one core.  This backend
partitions the cluster's nodes into contiguous shards, runs one full
kernel/event/durability stack per shard in its own worker process, and
synchronizes the shards' virtual clocks with the classic **conservative
time-window** protocol:

* the *lookahead* ``L`` is the minimum cross-shard link latency — a
  message sent at virtual time ``t`` cannot affect another shard before
  ``t + L``;
* all shards advance in lockstep windows of width ``W <= L``.  Within a
  window each shard simulates independently (in parallel, on its own
  core); any message addressed to a node owned by another shard is
  buffered with its computed delivery time ``t_send + latency >=
  window_end``;
* at the window barrier, the parent collects every shard's outbound
  buffer, routes each message to the owning shard, and delivers the
  batch before the next window runs.  Arrivals are injected in sorted
  ``(deliver_time, source_shard, send_seq)`` order, so the destination
  simulator allocates sequence numbers deterministically — same-seed
  sharded runs are bit-identical, just like the single-process ones.

Messages cross the process boundary as pickled
:class:`~repro.net.message.Message` envelopes over multiprocessing
pipes (the parent is the hub).  Everything *above* the transport is the
stock stack: reliable channels retransmit across shards, durable posts
ack back to their origin shard, supervision quarantines remotely —
none of those layers can tell the difference.

Known v1 limits (documented, asserted where cheap): fabric
``broadcast``/``multicast`` fan out over the *local* shard's endpoint
registry only, and recovery announcements (:meth:`Cluster.
node_recovered`) reach local peers only — run membership-style
protocols on the single-process backends for now.

Whole runs are driven by :func:`run_sharded`; ``ClusterConfig(
transport="sharded", shard_index=i)`` is what each worker builds
internally.
"""

from __future__ import annotations

import itertools
import pickle
import time
import traceback
from dataclasses import dataclass, field, fields, replace
from importlib import import_module
from typing import Any, Callable

from repro.errors import NetworkError
from repro.kernel.config import ClusterConfig, shard_bounds
from repro.transport.simlocal import SimTransport

if False:  # pragma: no cover - typing only
    from repro.net.message import Message
    from repro.sim.scheduler import Simulator


class ShardSimTransport(SimTransport):
    """One shard's transport: local deliveries on the shard simulator,
    cross-shard deliveries buffered for the window barrier.

    Parameters
    ----------
    scheduler:
        The shard's deterministic simulator.
    local_nodes:
        Global node ids this shard hosts.
    all_nodes:
        Every node id in the whole run (remote ids become routable).
    lookahead:
        Conservative window width; every buffered cross-shard message
        must be deliverable no earlier than the end of the window that
        sent it (checked at the barrier).
    """

    BACKEND = "sharded"

    def __init__(self, scheduler: "Simulator", local_nodes: Any,
                 all_nodes: Any, lookahead: float) -> None:
        super().__init__(scheduler)
        self._local = set(local_nodes)
        self._remote = set(all_nodes) - self._local
        for node_id in self._remote:
            self.add_known(node_id)
        self.lookahead = float(lookahead)
        #: buffered (deliver_at, send_seq, message, dst) for the barrier
        self._outbound: list[tuple[float, int, "Message", int]] = []
        self._out_seq = itertools.count()
        self.cross_sent = 0
        self.cross_received = 0

    def routable(self, node_id: int) -> bool:
        # A remote id is always routable: whether the far node is alive
        # is the owning shard's knowledge, exactly as a real wire cannot
        # see the far end crash. Local ids follow the endpoint registry.
        return node_id in self._endpoints or node_id in self._remote

    def post(self, message: "Message", dst: int, delay: float) -> None:
        if dst in self._remote:
            self.cross_sent += 1
            deliver_at = self.scheduler.now + delay
            self._outbound.append(
                (deliver_at, next(self._out_seq), message, dst))
            return
        super().post(message, dst, delay)

    # -- barrier protocol (driven by the worker loop) -------------------

    def take_outbound(self, window_end: float) -> list[tuple]:
        """Drain the cross-shard buffer, enforcing the lookahead bound."""
        out = self._outbound
        self._outbound = []
        for deliver_at, _seq, message, dst in out:
            if deliver_at < window_end - 1e-12:
                raise NetworkError(
                    f"conservative-window violation: message "
                    f"{message.mtype!r} to node {dst} computed delivery "
                    f"{deliver_at!r} inside the sending window (end "
                    f"{window_end!r}); cross-shard latency must be >= "
                    f"the lookahead ({self.lookahead!r}s)")
        return out

    def inject(self, message: "Message", dst: int, deliver_at: float) -> None:
        """Schedule an arrival merged in at the window barrier."""
        self.cross_received += 1
        self.scheduler.call_at(deliver_at, self._dispatch, message, dst)

    def stats(self) -> dict[str, Any]:
        data = super().stats()
        data["cross_sent"] = self.cross_sent
        data["cross_received"] = self.cross_received
        return data


# ----------------------------------------------------------------------
# scenario plumbing
# ----------------------------------------------------------------------

#: a scenario is addressed as "package.module:function"; the function is
#: called once per worker with a ShardContext after the shard cluster is
#: built, and returns a zero-argument ``finish() -> dict`` callable that
#: runs after the last window
ScenarioFn = Callable[["ShardContext"], Callable[[], dict]]


@dataclass
class ShardContext:
    """Everything a scenario needs to set up one shard's share."""

    cluster: Any
    shard_index: int
    shard_count: int
    n_nodes: int
    local_nodes: range
    args: dict = field(default_factory=dict)

    def owner_shard(self, node_id: int) -> int:
        """Which shard hosts a global node id."""
        for shard in range(self.shard_count):
            lo, hi = shard_bounds(self.n_nodes, self.shard_count, shard)
            if lo <= node_id < hi:
                return shard
        raise NetworkError(f"node {node_id} outside the cluster")


def resolve_scenario(path: str) -> ScenarioFn:
    """Import ``"pkg.module:function"`` (workers re-import on spawn)."""
    module_name, _, fn_name = path.partition(":")
    if not fn_name:
        raise NetworkError(
            f"scenario must be 'module:function', got {path!r}")
    fn = getattr(import_module(module_name), fn_name, None)
    if fn is None:
        raise NetworkError(f"no scenario {fn_name!r} in {module_name}")
    return fn


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _config_kwargs(config: ClusterConfig) -> dict:
    """A picklable kwargs dict rebuilding this config in a worker."""
    return {f.name: getattr(config, f.name) for f in fields(config)}


def _shard_worker(conn: Any, config_kwargs: dict, shard_index: int,
                  scenario_path: str, scenario_args: dict) -> None:
    """Worker main: build one shard's cluster, obey barrier commands."""
    try:
        from repro.kernel.boot import Cluster
        config = ClusterConfig(**{**config_kwargs,
                                  "shard_index": shard_index})
        cluster = Cluster(config)
        transport: ShardSimTransport = cluster.transport
        ctx = ShardContext(cluster=cluster, shard_index=shard_index,
                           shard_count=config.shard_count,
                           n_nodes=config.n_nodes,
                           local_nodes=config.local_node_ids(),
                           args=dict(scenario_args))
        finish = resolve_scenario(scenario_path)(ctx)
        while True:
            cmd = conn.recv()
            tag = cmd[0]
            if tag == "win":
                _, window_end, inbound = cmd
                # Arrivals come pre-sorted by (deliver_time, src shard,
                # send seq): injection order decides the destination
                # simulator's sequence numbers, hence determinism.
                for deliver_at, blob, dst in inbound:
                    transport.inject(pickle.loads(blob), dst, deliver_at)
                cluster.run(until=window_end)
                outbound = [
                    (deliver_at, seq, pickle.dumps(message), dst)
                    for deliver_at, seq, message, dst
                    in transport.take_outbound(window_end)]
                conn.send(("done", outbound, cluster.sim.pending))
            elif tag == "finish":
                conn.send(("result", finish(), transport.stats(),
                           cluster.message_stats()))
            elif tag == "exit":
                return
            else:  # pragma: no cover - protocol guard
                raise NetworkError(f"unknown shard command {tag!r}")
    except Exception:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

@dataclass
class ShardedReport:
    """Outcome of one sharded run."""

    #: per-shard dicts returned by the scenarios' ``finish``
    shard_results: list[dict]
    #: per-shard transport counters (cross_sent / cross_received / ...)
    transport_stats: list[dict]
    #: per-shard fabric traffic snapshots
    message_stats: list[dict]
    windows: int
    virtual_time: float
    wall_time: float

    @property
    def cross_shard_messages(self) -> int:
        return sum(s.get("cross_sent", 0) for s in self.transport_stats)


def run_sharded(config: ClusterConfig, scenario: str,
                scenario_args: dict | None = None,
                until: float | None = None,
                max_windows: int = 1_000_000) -> ShardedReport:
    """Run one conservatively-synchronized sharded simulation.

    Parameters
    ----------
    config:
        Cluster configuration with ``transport="sharded"`` and
        ``shard_count`` set (``shard_index`` must be None — the runner
        assigns one per worker).
    scenario:
        ``"module:function"`` path to the per-shard scenario.
    scenario_args:
        Plain-data kwargs handed to every shard's context.
    until:
        Stop after this much virtual time; None = run until every shard
        is idle and no messages are in flight.
    max_windows:
        Safety valve against livelock (a window is one lookahead).
    """
    import multiprocessing as mp

    if config.transport != "sharded":
        raise NetworkError("run_sharded needs config.transport='sharded'")
    if config.shard_index is not None:
        raise NetworkError("leave shard_index unset; the runner assigns it")
    window = config.effective_shard_window()
    shard_count = config.shard_count
    kwargs = _config_kwargs(config)
    ctx = mp.get_context("spawn")
    conns, workers = [], []
    started = time.perf_counter()
    try:
        for shard in range(shard_count):
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_shard_worker,
                args=(child_conn, kwargs, shard, scenario,
                      dict(scenario_args or {})),
                daemon=True)
            worker.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(worker)

        owner_of = {}
        for shard in range(shard_count):
            lo, hi = shard_bounds(config.n_nodes, shard_count, shard)
            for node_id in range(lo, hi):
                owner_of[node_id] = shard

        inbound: list[list] = [[] for _ in range(shard_count)]
        windows = 0
        virtual_time = 0.0
        while True:
            windows += 1
            if windows > max_windows:
                raise NetworkError(
                    f"sharded run exceeded max_windows={max_windows} "
                    f"(livelock, or raise the cap for long runs)")
            window_end = windows * window
            for shard, conn in enumerate(conns):
                batch = sorted(inbound[shard],
                               key=lambda rec: (rec[0], rec[1], rec[2]))
                conn.send(("win", window_end,
                           [(t, blob, dst) for t, _s, _q, blob, dst
                            in batch]))
            inbound = [[] for _ in range(shard_count)]
            in_flight = 0
            pending_total = 0
            for shard, conn in enumerate(conns):
                reply = conn.recv()
                if reply[0] == "error":
                    raise NetworkError(
                        f"shard {shard} failed:\n{reply[1]}")
                _tag, outbound, pending = reply
                pending_total += pending
                for deliver_at, seq, blob, dst in outbound:
                    inbound[owner_of[dst]].append(
                        (deliver_at, shard, seq, blob, dst))
                    in_flight += 1
            virtual_time = window_end
            if until is not None and window_end >= until:
                break
            if until is None and in_flight == 0 and pending_total == 0:
                break

        shard_results, transport_stats, message_stats = [], [], []
        for shard, conn in enumerate(conns):
            conn.send(("finish",))
            reply = conn.recv()
            if reply[0] == "error":
                raise NetworkError(f"shard {shard} failed:\n{reply[1]}")
            _tag, result, tstats, mstats = reply
            shard_results.append(result)
            transport_stats.append(tstats)
            message_stats.append(mstats)
        for conn in conns:
            conn.send(("exit",))
        for worker in workers:
            worker.join(timeout=30)
        return ShardedReport(shard_results=shard_results,
                             transport_stats=transport_stats,
                             message_stats=message_stats,
                             windows=windows, virtual_time=virtual_time,
                             wall_time=time.perf_counter() - started)
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)


def sharded_config(base: ClusterConfig, n_nodes: int,
                   shard_count: int) -> ClusterConfig:
    """Convenience: re-target a config at a sharded run."""
    return replace(base, transport="sharded", n_nodes=n_nodes,
                   shard_count=shard_count, shard_index=None)
