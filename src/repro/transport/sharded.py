"""Sharded multi-process simulation: conservative time-window PDES.

The single-process simulator caps every run at one core.  This backend
partitions the cluster's nodes into contiguous shards, runs one full
kernel/event/durability stack per shard in its own worker process, and
synchronizes the shards' virtual clocks with the classic **conservative
time-window** protocol:

* the *lookahead* ``L`` is the minimum cross-shard link latency — a
  message sent at virtual time ``t`` cannot affect another shard before
  ``t + L``;
* all shards advance in lockstep windows of width ``W <= L``.  Within a
  window each shard simulates independently (in parallel, on its own
  core); any message addressed to a node owned by another shard is
  buffered with its computed delivery time ``t_send + latency >=
  window_end``;
* at the window barrier, the parent collects every shard's outbound
  buffer, routes each message to the owning shard, and delivers the
  batch before the next window runs.  Arrivals are injected in sorted
  ``(deliver_time, source_shard, send_seq)`` order, so the destination
  simulator allocates sequence numbers deterministically — same-seed
  sharded runs are bit-identical, just like the single-process ones.

Messages cross the process boundary over multiprocessing pipes (the
parent is the hub), encoded by the compact wire codec
(:mod:`repro.transport.codec`, ``wire_codec=True``) or per-message
pickle.  With ``shard_window_batching`` (default on) a whole window's
traffic to one destination shard travels as **one** encoded blob that
the parent routes without decoding; the destination worker merges all
source blobs in ``(deliver_time, source_shard, send_seq)`` order, so
injection order — hence every digest — is identical to the per-message
protocol.  With ``shard_quiescent_skip`` (default on) barrier rounds
for provably-empty windows are elided: when nothing is in flight the
parent jumps the window counter to the earliest shard-reported
next-event time, which is conservative because an idle shard cannot
originate traffic before its next pending callback.  Everything
*above* the transport is the stock stack: reliable channels retransmit
across shards, durable posts ack back to their origin shard,
supervision quarantines remotely — none of those layers can tell the
difference.

Known v1 limits (documented, asserted where cheap): fabric
``broadcast``/``multicast`` fan out over the *local* shard's endpoint
registry only, and recovery announcements (:meth:`Cluster.
node_recovered`) reach local peers only — run membership-style
protocols on the single-process backends for now.

Whole runs are driven by :func:`run_sharded`; ``ClusterConfig(
transport="sharded", shard_index=i)`` is what each worker builds
internally.
"""

from __future__ import annotations

import itertools
import pickle
import time
import traceback
from dataclasses import dataclass, field, fields, replace
from importlib import import_module
from typing import Any, Callable

from repro.errors import NetworkError
from repro.kernel.config import ClusterConfig, shard_owner_map
from repro.transport import codec
from repro.transport.simlocal import SimTransport

if False:  # pragma: no cover - typing only
    from repro.net.message import Message
    from repro.sim.scheduler import Simulator


class ShardSimTransport(SimTransport):
    """One shard's transport: local deliveries on the shard simulator,
    cross-shard deliveries buffered for the window barrier.

    Parameters
    ----------
    scheduler:
        The shard's deterministic simulator.
    local_nodes:
        Global node ids this shard hosts.
    all_nodes:
        Every node id in the whole run (remote ids become routable).
    lookahead:
        Conservative window width; every buffered cross-shard message
        must be deliverable no earlier than the end of the window that
        sent it (checked at the barrier).
    """

    BACKEND = "sharded"

    def __init__(self, scheduler: "Simulator", local_nodes: Any,
                 all_nodes: Any, lookahead: float) -> None:
        super().__init__(scheduler)
        self._local = set(local_nodes)
        self._remote = set(all_nodes) - self._local
        for node_id in self._remote:
            self.add_known(node_id)
        self.lookahead = float(lookahead)
        #: buffered (deliver_at, send_seq, message, dst) for the barrier
        self._outbound: list[tuple[float, int, "Message", int]] = []
        self._out_seq = itertools.count()
        self.cross_sent = 0
        self.cross_received = 0

    def routable(self, node_id: int) -> bool:
        # A remote id is always routable: whether the far node is alive
        # is the owning shard's knowledge, exactly as a real wire cannot
        # see the far end crash. Local ids follow the endpoint registry.
        return node_id in self._endpoints or node_id in self._remote

    def post(self, message: "Message", dst: int, delay: float) -> None:
        if dst in self._remote:
            self.cross_sent += 1
            deliver_at = self.scheduler.now + delay
            self._outbound.append(
                (deliver_at, next(self._out_seq), message, dst))
            return
        super().post(message, dst, delay)

    # -- barrier protocol (driven by the worker loop) -------------------

    def take_outbound(self, window_end: float) -> list[tuple]:
        """Drain the cross-shard buffer, enforcing the lookahead bound."""
        out = self._outbound
        self._outbound = []
        for deliver_at, _seq, message, dst in out:
            if deliver_at < window_end - 1e-12:
                raise NetworkError(
                    f"conservative-window violation: message "
                    f"{message.mtype!r} to node {dst} computed delivery "
                    f"{deliver_at!r} inside the sending window (end "
                    f"{window_end!r}); cross-shard latency must be >= "
                    f"the lookahead ({self.lookahead!r}s)")
        return out

    def inject(self, message: "Message", dst: int, deliver_at: float) -> None:
        """Schedule an arrival merged in at the window barrier."""
        self.cross_received += 1
        self.scheduler.call_at(deliver_at, self._dispatch, message, dst)

    def stats(self) -> dict[str, Any]:
        data = super().stats()
        data["cross_sent"] = self.cross_sent
        data["cross_received"] = self.cross_received
        return data


# ----------------------------------------------------------------------
# scenario plumbing
# ----------------------------------------------------------------------

#: a scenario is addressed as "package.module:function"; the function is
#: called once per worker with a ShardContext after the shard cluster is
#: built, and returns a zero-argument ``finish() -> dict`` callable that
#: runs after the last window
ScenarioFn = Callable[["ShardContext"], Callable[[], dict]]


@dataclass
class ShardContext:
    """Everything a scenario needs to set up one shard's share."""

    cluster: Any
    shard_index: int
    shard_count: int
    n_nodes: int
    local_nodes: range
    args: dict = field(default_factory=dict)
    #: lazily-built ``node -> shard`` map shared with the runner's
    #: routing table (the old per-call linear scan over shard bounds
    #: was a measurable cost for scenarios that route every post)
    _owner_map: dict | None = field(default=None, repr=False)

    def owner_shard(self, node_id: int) -> int:
        """Which shard hosts a global node id."""
        owner = self._owner_map
        if owner is None:
            owner = self._owner_map = shard_owner_map(
                self.n_nodes, self.shard_count)
        try:
            return owner[node_id]
        except KeyError:
            raise NetworkError(
                f"node {node_id} outside the cluster") from None


def resolve_scenario(path: str) -> ScenarioFn:
    """Import ``"pkg.module:function"`` (workers re-import on spawn)."""
    module_name, _, fn_name = path.partition(":")
    if not fn_name:
        raise NetworkError(
            f"scenario must be 'module:function', got {path!r}")
    fn = getattr(import_module(module_name), fn_name, None)
    if fn is None:
        raise NetworkError(f"no scenario {fn_name!r} in {module_name}")
    return fn


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _config_kwargs(config: ClusterConfig) -> dict:
    """A picklable kwargs dict rebuilding this config in a worker."""
    return {f.name: getattr(config, f.name) for f in fields(config)}


def _start_method(config: ClusterConfig) -> str:
    """Worker start method: the knob, else fork where the OS offers it.

    ``spawn`` re-imports the interpreter per worker (~0.2 s each, the
    dominant cost of small sharded runs); ``fork`` inherits the loaded
    modules.  :func:`_reset_process_counters` makes the two
    bit-identical.
    """
    if config.shard_start_method is not None:
        return config.shard_start_method
    import multiprocessing as mp
    return "fork" if "fork" in mp.get_all_start_methods() else "spawn"


def _reset_process_counters() -> None:
    """Reset every module-level id counter to its import-time state.

    A forked worker inherits the parent's already-advanced counters
    (message ids, oids, block ids, ...), which would shift every id the
    shard allocates and break both the per-shard digests and
    :func:`repro.bench.scale.sink_cap`'s oid arithmetic.  Resetting
    them reproduces exactly what a spawned (freshly imported) worker
    sees; under spawn this is a no-op by construction.
    """
    # import_module, not ``import a.b as c``: repro/__init__ rebinds the
    # ``events`` attribute (``names as events``), breaking getattr-chain
    # binding for repro.events.* submodules
    counters = {
        "repro.net.message": "_msg_ids",
        "repro.objects.base": "_oids",
        "repro.events.handlers": "_reg_ids",
        "repro.events.block": "_block_ids",
        "repro.events.delivery": "_proc_names",
        "repro.threads.attributes": "_timer_spec_ids",
        "repro.threads.thread": "_activation_ids",
        "repro.dsm.manager": "_segment_ids",
        "repro.baselines.unix_signals": "_pids",
        "repro.baselines.mach_exceptions": "_task_ids",
    }
    for module_name, counter in counters.items():
        setattr(import_module(module_name), counter, itertools.count(1))


def _encode_records(records: list, wire_codec: bool) -> bytes:
    return (codec.encode_batch(records) if wire_codec
            else pickle.dumps(records))


def _decode_records(blob: bytes, wire_codec: bool) -> list:
    return (codec.decode_batch(blob) if wire_codec
            else pickle.loads(blob))


def _shard_worker(conn: Any, config_kwargs: dict, shard_index: int,
                  scenario_path: str, scenario_args: dict) -> None:
    """Worker main: build one shard's cluster, obey barrier commands."""
    try:
        _reset_process_counters()
        from repro.kernel.boot import Cluster
        config = ClusterConfig(**{**config_kwargs,
                                  "shard_index": shard_index})
        cluster = Cluster(config)
        transport: ShardSimTransport = cluster.transport
        ctx = ShardContext(cluster=cluster, shard_index=shard_index,
                           shard_count=config.shard_count,
                           n_nodes=config.n_nodes,
                           local_nodes=config.local_node_ids(),
                           args=dict(scenario_args))
        finish = resolve_scenario(scenario_path)(ctx)
        batching = config.shard_window_batching
        wire = config.wire_codec
        owner_of = shard_owner_map(config.n_nodes, config.shard_count)
        sim = cluster.sim
        while True:
            cmd = conn.recv()
            tag = cmd[0]
            if tag == "win" and batching:
                _, window_end, blobs = cmd
                # One blob per source shard; merge every source's
                # records in (deliver_time, src shard, send seq) order —
                # injection order decides the destination simulator's
                # sequence numbers, hence determinism, and is identical
                # to the per-message protocol's pre-sorted stream.
                merged = []
                for src_shard, blob in blobs:
                    for deliver_at, seq, message, dst in _decode_records(
                            blob, wire):
                        merged.append(
                            (deliver_at, src_shard, seq, message, dst))
                merged.sort(key=lambda rec: (rec[0], rec[1], rec[2]))
                for deliver_at, _s, _q, message, dst in merged:
                    transport.inject(message, dst, deliver_at)
                cluster.run(until=window_end)
                by_dst_shard: dict[int, list] = {}
                for record in transport.take_outbound(window_end):
                    by_dst_shard.setdefault(
                        owner_of[record[3]], []).append(record)
                outbound = {
                    dst_shard: (len(records),
                                _encode_records(records, wire))
                    for dst_shard, records in by_dst_shard.items()}
                conn.send(("done", outbound, sim.pending,
                           sim.peek_next()))
            elif tag == "win":
                _, window_end, inbound = cmd
                # Legacy per-message protocol: arrivals come pre-sorted
                # by (deliver_time, src shard, send seq).
                for deliver_at, blob, dst in inbound:
                    message = (codec.decode_message(blob) if wire
                               else pickle.loads(blob))
                    transport.inject(message, dst, deliver_at)
                cluster.run(until=window_end)
                outbound = [
                    (deliver_at, seq,
                     codec.encode_message(message) if wire
                     else pickle.dumps(message), dst)
                    for deliver_at, seq, message, dst
                    in transport.take_outbound(window_end)]
                conn.send(("done", outbound, sim.pending,
                           sim.peek_next()))
            elif tag == "finish":
                conn.send(("result", finish(), transport.stats(),
                           cluster.message_stats()))
            elif tag == "exit":
                return
            else:  # pragma: no cover - protocol guard
                raise NetworkError(f"unknown shard command {tag!r}")
    except Exception:  # noqa: BLE001 - forwarded to the parent
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:  # pragma: no cover - pipe already gone
            pass
    finally:
        conn.close()


# ----------------------------------------------------------------------
# parent side
# ----------------------------------------------------------------------

@dataclass
class ShardedReport:
    """Outcome of one sharded run."""

    #: per-shard dicts returned by the scenarios' ``finish``
    shard_results: list[dict]
    #: per-shard transport counters (cross_sent / cross_received / ...)
    transport_stats: list[dict]
    #: per-shard fabric traffic snapshots
    message_stats: list[dict]
    windows: int
    virtual_time: float
    wall_time: float

    @property
    def cross_shard_messages(self) -> int:
        return sum(s.get("cross_sent", 0) for s in self.transport_stats)


def run_sharded(config: ClusterConfig, scenario: str,
                scenario_args: dict | None = None,
                until: float | None = None,
                max_windows: int = 1_000_000) -> ShardedReport:
    """Run one conservatively-synchronized sharded simulation.

    Parameters
    ----------
    config:
        Cluster configuration with ``transport="sharded"`` and
        ``shard_count`` set (``shard_index`` must be None — the runner
        assigns one per worker).
    scenario:
        ``"module:function"`` path to the per-shard scenario.
    scenario_args:
        Plain-data kwargs handed to every shard's context.
    until:
        Stop after this much virtual time; None = run until every shard
        is idle and no messages are in flight.
    max_windows:
        Safety valve against livelock (a window is one lookahead).
    """
    import math
    import multiprocessing as mp

    if config.transport != "sharded":
        raise NetworkError("run_sharded needs config.transport='sharded'")
    if config.shard_index is not None:
        raise NetworkError("leave shard_index unset; the runner assigns it")
    window = config.effective_shard_window()
    shard_count = config.shard_count
    batching = config.shard_window_batching
    skip = config.shard_quiescent_skip
    kwargs = _config_kwargs(config)
    ctx = mp.get_context(_start_method(config))
    conns, workers = [], []
    started = time.perf_counter()

    def dead_worker(shard: int) -> NetworkError:
        workers[shard].join(timeout=5)
        return NetworkError(
            f"shard {shard} worker died without reporting "
            f"(exitcode {workers[shard].exitcode})")

    def send(shard: int, payload: tuple) -> None:
        """One command, or a clear error naming the shard that died."""
        try:
            conns[shard].send(payload)
        except OSError:
            # BrokenPipeError when the worker died before the barrier
            # round reached it; whether the parent notices on send or
            # on the following recv is a race
            raise dead_worker(shard) from None

    def recv(shard: int) -> tuple:
        """One reply, or a clear error naming the shard that failed."""
        try:
            reply = conns[shard].recv()
        except (EOFError, OSError):
            # EOFError for a cleanly-closed pipe, ConnectionResetError
            # (an OSError) when the worker was killed mid-write
            raise dead_worker(shard) from None
        if reply[0] == "error":
            raise NetworkError(f"shard {shard} failed:\n{reply[1]}")
        return reply

    try:
        for shard in range(shard_count):
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_shard_worker,
                args=(child_conn, kwargs, shard, scenario,
                      dict(scenario_args or {})),
                daemon=True)
            worker.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(worker)

        owner_of = shard_owner_map(config.n_nodes, shard_count)
        final_index = (None if until is None
                       else math.ceil(until / window - 1e-12))

        #: per destination shard: (src_shard, blob) batched, or
        #: (deliver_at, src_shard, seq, blob, dst) per-message
        inbound: list[list] = [[] for _ in range(shard_count)]
        windows = 0
        window_index = 0
        virtual_time = 0.0
        while True:
            windows += 1
            if windows > max_windows:
                raise NetworkError(
                    f"sharded run exceeded max_windows={max_windows} "
                    f"(livelock, or raise the cap for long runs)")
            window_index += 1
            window_end = window_index * window
            if batching:
                for shard in range(shard_count):
                    send(shard, ("win", window_end, inbound[shard]))
            else:
                for shard in range(shard_count):
                    batch = sorted(inbound[shard],
                                   key=lambda rec: (rec[0], rec[1], rec[2]))
                    send(shard, ("win", window_end,
                                 [(t, blob, dst) for t, _s, _q, blob, dst
                                  in batch]))
            inbound = [[] for _ in range(shard_count)]
            in_flight = 0
            pending_total = 0
            next_times = []
            for shard in range(shard_count):
                _tag, outbound, pending, next_time = recv(shard)
                pending_total += pending
                if next_time is not None:
                    next_times.append(next_time)
                if batching:
                    for dst_shard, (count, blob) in outbound.items():
                        inbound[dst_shard].append((shard, blob))
                        in_flight += count
                else:
                    for deliver_at, seq, blob, dst in outbound:
                        inbound[owner_of[dst]].append(
                            (deliver_at, shard, seq, blob, dst))
                        in_flight += 1
            virtual_time = window_end
            if until is not None and window_end >= until:
                break
            if until is None and in_flight == 0 and pending_total == 0:
                break
            if skip and in_flight == 0:
                # Quiescent skip-ahead: with nothing in flight, no shard
                # can execute (or send) anything before the earliest
                # pending callback at min(next_times) = E.  Jumping to
                # window k = ceil(E / W) keeps the lookahead invariant:
                # every event the jump target window runs is at time
                # > (k-1)*W, so its cross-shard sends deliver after
                # k*W.  Barrier rounds for the skipped windows carried
                # provably zero traffic — executions and digests are
                # bit-identical, only round-trip count changes.
                if next_times:
                    target = math.ceil(min(next_times) / window - 1e-12)
                    if target > window_index + 1:
                        window_index = target - 1
                elif final_index is not None:
                    # no pending work anywhere: only the `until` bound
                    # is left to reach
                    window_index = max(window_index, final_index - 1)
                if final_index is not None and window_index >= final_index:
                    window_index = final_index - 1

        shard_results, transport_stats, message_stats = [], [], []
        for shard in range(shard_count):
            send(shard, ("finish",))
            _tag, result, tstats, mstats = recv(shard)
            shard_results.append(result)
            transport_stats.append(tstats)
            message_stats.append(mstats)
        for shard in range(shard_count):
            send(shard, ("exit",))
        for shard, worker in enumerate(workers):
            worker.join(timeout=30)
            if worker.exitcode is None:
                raise NetworkError(
                    f"shard {shard} worker did not exit within 30s "
                    f"after the run completed")
            if worker.exitcode != 0:
                raise NetworkError(
                    f"shard {shard} worker exited with code "
                    f"{worker.exitcode} after reporting its results")
        return ShardedReport(shard_results=shard_results,
                             transport_stats=transport_stats,
                             message_stats=message_stats,
                             windows=windows, virtual_time=virtual_time,
                             wall_time=time.perf_counter() - started)
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=5)


def sharded_config(base: ClusterConfig, n_nodes: int,
                   shard_count: int) -> ClusterConfig:
    """Convenience: re-target a config at a sharded run."""
    return replace(base, transport="sharded", n_nodes=n_nodes,
                   shard_count=shard_count, shard_index=None)
