"""Thread-location strategies (§7.1).

"When an event is posted to a thread, the system must track down the
thread." The paper proposes three strategies, all implemented here behind
one interface:

* :class:`BroadcastLocator` — "broadcast the event request. When the
  machine that has the thread active gets the request, it can block the
  thread [and] run the handler … However, this is communication intensive
  and wasteful." Every node receives the posted event; non-holders reply
  not-found so the origin can detect dead threads.
* :class:`PathLocator` — "follow the path of the thread starting from its
  root node … using information in the system's thread-control blocks.
  On a distributed system comprising of n nodes, it is possible to find
  the thread in n steps." The notice hops along TCB forwarding pointers.
* :class:`MulticastLocator` — "application's threads can create a
  multicast group. When a thread leaves the current node and starts
  executing in another, the thread-management system can join the
  multicast group" — the notice is multicast to the thread's group and
  only the node holding the innermost activation accepts it.
* :class:`CachedLocator` — the optimisation the paper leaves on the
  table: each kernel caches ``tid -> node`` hints (installed by every
  successful delivery, piggy-backed on existing replies) and a post goes
  straight to the hinted node with a single message. On a stale hint the
  receiving kernel chases its TCB ``next_node`` forwarding pointer with
  the notice itself, bounded by ``locate_retries`` forwards; only on
  exhaustion does the post fall back to the configured base strategy
  (``cache_fallback``: path, broadcast or multicast). Steady-state posts
  to a stationary thread cost one message regardless of cluster size and
  migration depth.

Because threads keep moving while notices are in flight, every strategy
retries a bounded number of times before declaring the thread dead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import KernelError
from repro.events.block import EventBlock
from repro.kernel.config import (
    LOCATE_BROADCAST,
    LOCATE_CACHED,
    LOCATE_MULTICAST,
    LOCATE_PATH,
)
from repro.net.message import Message
from repro.threads.ids import ThreadId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.events.delivery import EventManager

MSG_PATH_POST = "locate.path"
MSG_BCAST_POST = "locate.bcast"
MSG_BCAST_REPLY = "locate.bcast-reply"
MSG_MCAST_POST = "locate.mcast"
MSG_MCAST_REPLY = "locate.mcast-reply"
MSG_CACHED_POST = "locate.cached"

#: Result callback: (delivered, hops) — hops is the count of routing
#: messages this post consumed (broadcast counts fan-out copies).
PostResult = Callable[[bool, int], None]


class BaseLocator:
    """Shared plumbing for the three strategies."""

    name = "?"

    def __init__(self, manager: "EventManager") -> None:
        self.manager = manager
        self.cluster = manager.cluster

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        """Route ``block`` to wherever ``tid`` currently executes.

        ``on_result(delivered, hops)`` fires exactly once: with
        ``delivered=False`` only when the thread cannot be found (dead).
        """
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------

    def _membership(self, node: int):
        """``node``'s gossip membership view, or None when the layer is
        off (or the origin is an external pseudo-node)."""
        kernel = self.cluster.kernels.get(node)
        if kernel is not None and kernel.membership.enabled:
            return kernel.membership
        return None

    def _drop_dead(self, from_node: int, nodes: list[int]) -> list[int]:
        """Filter confirmed-dead nodes out of a candidate list.

        Only *confirmed* deaths are skipped: a suspect may yet refute
        the suspicion (and may still hold the thread), so it keeps
        receiving probes — the unreliable-detector safety rule. With
        membership off this is the identity function.
        """
        membership = self._membership(from_node)
        if membership is None:
            return nodes
        return [n for n in nodes if not membership.is_dead(n)]

    def _innermost_here(self, node: int, tid: ThreadId) -> bool:
        return self.cluster.kernels[node].thread_table.innermost_here(tid)

    def _accept(self, node: int, tid: ThreadId, block: EventBlock) -> bool:
        """Hand the notice to the thread if its innermost frame is here."""
        if not self._innermost_here(node, tid):
            return False
        return self.manager.enqueue_for_thread(node, tid, block)

    def _retry_later(self, fn: Callable[[], None]) -> None:
        self.cluster.sim.call_after(
            self.cluster.config.locate_retry_delay, fn)

    def _transmit(self, message: Message,
                  on_give_up: Callable[[Message], None] | None = None) -> None:
        """Send via the source kernel's (possibly reliable) channel.

        ``on_give_up`` fires if the reliable channel exhausts its
        retransmission budget — the destination crashed or is partitioned
        away — letting the strategy reroute or report a dead target
        instead of hanging. With reliability off it never fires (the
        seed's fire-and-forget behaviour).
        """
        self.cluster.transmit(message, on_give_up)


class PathLocator(BaseLocator):
    """Walk TCB forwarding pointers from the thread's root node."""

    name = LOCATE_PATH

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {"hops": 0, "retries": self.cluster.config.locate_retries}
        self._hop(from_node, tid.root, tid, block, state, on_result)

    def _hop(self, from_node: int, to_node: int, tid: ThreadId,
             block: EventBlock, state: dict, on_result: PostResult) -> None:
        if from_node == to_node:
            self._arrived(to_node, tid, block, state, on_result)
            return

        def hop_lost(message: Message | None) -> None:
            # The next node in the chain is unreachable (crashed): treat
            # it like a stale pointer and restart from the root. If the
            # thread died with that node the liveness check fails and the
            # raiser gets its §7.2 notice.
            if state["retries"] > 0 and tid in self.cluster.live_threads:
                state["retries"] -= 1
                self._retry_later(
                    lambda: self._hop(from_node, tid.root, tid, block,
                                      state, on_result))
                return
            on_result(False, state["hops"])

        membership = self._membership(from_node)
        if membership is not None and membership.is_dead(to_node):
            # Confirmed dead by gossip: fail the hop without spending a
            # message on a node the whole cluster agrees is gone.
            hop_lost(None)
            return
        state["hops"] += 1
        self._transmit(Message(
            src=from_node, dst=to_node, mtype=MSG_PATH_POST, size=128,
            payload={"tid": tid, "block": block, "state": state,
                     "on_result": on_result}), hop_lost)

    def on_message(self, message: Message) -> None:
        body = message.payload
        self._arrived(int(message.dst), body["tid"], body["block"],
                      body["state"], body["on_result"])

    def _arrived(self, node: int, tid: ThreadId, block: EventBlock,
                 state: dict, on_result: PostResult) -> None:
        if self._accept(node, tid, block):
            on_result(True, state["hops"])
            return
        tcb = self.cluster.kernels[node].thread_table.get(tid)
        if tcb is not None and tcb.next_node is not None:
            self._hop(node, tcb.next_node, tid, block, state, on_result)
            return
        # Stale pointer or mid-flight thread: restart from the root a
        # bounded number of times before giving up.
        if state["retries"] > 0 and tid in self.cluster.live_threads:
            state["retries"] -= 1
            self._retry_later(
                lambda: self._hop(node, tid.root, tid, block, state,
                                  on_result))
            return
        on_result(False, state["hops"])


class BroadcastLocator(BaseLocator):
    """Broadcast the event request to every node."""

    name = LOCATE_BROADCAST

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {
            "hops": 0,
            "retries": self.cluster.config.locate_retries,
            "from_node": from_node,
        }
        self._round(tid, block, state, on_result)

    def _round(self, tid: ThreadId, block: EventBlock, state: dict,
               on_result: PostResult) -> None:
        from_node = state["from_node"]
        others = self._drop_dead(
            from_node, [n for n in self.cluster.kernels if n != from_node])
        if self._accept(from_node, tid, block):
            on_result(True, state["hops"])
            return
        if not others:
            on_result(False, state["hops"])
            return
        pending = {"found": False, "replies": 0, "expected": len(others)}
        state["hops"] += len(others)
        for node in others:
            payload = {"tid": tid, "block": block, "state": state,
                       "pending": pending, "on_result": on_result}
            self._transmit(Message(
                src=from_node, dst=node, mtype=MSG_BCAST_POST, size=128,
                payload=payload),
                lambda m, p=payload: self._probe_lost(p))

    def _probe_lost(self, body: dict) -> None:
        """A probe (or its reply) is undeliverable: count a not-found."""
        self.on_reply(Message(src=-1, dst=-1, mtype=MSG_BCAST_REPLY,
                              payload={**body, "found": False}))

    def on_message(self, message: Message) -> None:
        body = message.payload
        node = int(message.dst)
        found = self._accept(node, body["tid"], body["block"])
        body["state"]["hops"] += 1  # the reply
        payload = {"found": found, "tid": body["tid"],
                   "block": body["block"], "state": body["state"],
                   "pending": body["pending"],
                   "on_result": body["on_result"]}
        self._transmit(Message(
            src=node, dst=body["state"]["from_node"],
            mtype=MSG_BCAST_REPLY, size=64, payload=payload),
            lambda m, p=payload: self.on_reply(
                Message(src=-1, dst=-1, mtype=MSG_BCAST_REPLY, payload=p)))

    def on_reply(self, message: Message) -> None:
        body = message.payload
        pending, state = body["pending"], body["state"]
        pending["replies"] += 1
        if body["found"]:
            pending["found"] = True
        if pending["replies"] < pending["expected"]:
            return
        if pending["found"]:
            body["on_result"](True, state["hops"])
            return
        tid = body["tid"]
        if state["retries"] > 0 and tid in self.cluster.live_threads:
            state["retries"] -= 1
            self._retry_later(
                lambda: self._round(tid, body["block"], state,
                                    body["on_result"]))
            return
        body["on_result"](False, state["hops"])


class MulticastLocator(BaseLocator):
    """Multicast the notice to the thread's member-maintained group."""

    name = LOCATE_MULTICAST

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {
            "hops": 0,
            "retries": self.cluster.config.locate_retries,
            "from_node": from_node,
        }
        self._round(tid, block, state, on_result)

    def _round(self, tid: ThreadId, block: EventBlock, state: dict,
               on_result: PostResult) -> None:
        from_node = state["from_node"]
        groups = self.cluster.fabric.multicast_groups
        members = sorted(groups.members(tid.multicast_group))
        if from_node in members and self._accept(from_node, tid, block):
            on_result(True, state["hops"])
            return
        targets = self._drop_dead(
            from_node, [n for n in members if n != from_node])
        if not targets:
            self._retry_or_fail(tid, block, state, on_result)
            return
        pending = {"found": False, "replies": 0, "expected": len(targets)}
        state["hops"] += len(targets)
        for node in targets:
            payload = {"tid": tid, "block": block, "state": state,
                       "pending": pending, "on_result": on_result}
            self._transmit(Message(
                src=from_node, dst=node, mtype=MSG_MCAST_POST, size=128,
                payload=payload),
                lambda m, p=payload: self._probe_lost(p))

    def _probe_lost(self, body: dict) -> None:
        """A probe (or its reply) is undeliverable: count a not-found."""
        self.on_reply(Message(src=-1, dst=-1, mtype=MSG_MCAST_REPLY,
                              payload={**body, "found": False}))

    def _retry_or_fail(self, tid: ThreadId, block: EventBlock, state: dict,
                       on_result: PostResult) -> None:
        if state["retries"] > 0 and tid in self.cluster.live_threads:
            state["retries"] -= 1
            self._retry_later(
                lambda: self._round(tid, block, state, on_result))
            return
        on_result(False, state["hops"])

    def on_message(self, message: Message) -> None:
        body = message.payload
        node = int(message.dst)
        found = self._accept(node, body["tid"], body["block"])
        body["state"]["hops"] += 1  # the reply
        payload = {"found": found, "tid": body["tid"],
                   "block": body["block"], "state": body["state"],
                   "pending": body["pending"],
                   "on_result": body["on_result"]}
        self._transmit(Message(
            src=node, dst=body["state"]["from_node"],
            mtype=MSG_MCAST_REPLY, size=64, payload=payload),
            lambda m, p=payload: self.on_reply(
                Message(src=-1, dst=-1, mtype=MSG_MCAST_REPLY, payload=p)))

    def on_reply(self, message: Message) -> None:
        body = message.payload
        pending, state = body["pending"], body["state"]
        pending["replies"] += 1
        if body["found"]:
            pending["found"] = True
        if pending["replies"] < pending["expected"]:
            return
        if pending["found"]:
            body["on_result"](True, state["hops"])
            return
        self._retry_or_fail(body["tid"], body["block"], state,
                            body["on_result"])


class CachedLocator(BaseLocator):
    """Post to the hinted node directly; chase TCB pointers on a miss.

    The per-node hint tables live in the kernels
    (:class:`repro.kernel.tcb.LocationHintTable`) and are maintained by
    the event manager's delivery/migration hooks, so hints stay warm
    without any extra round trips. A post is then:

    1. **hit fast path** — one direct message to the hinted node;
    2. **stale hint** — the receiving kernel forwards the notice along
       its TCB ``next_node`` pointer (or its own fresher hint), bounded
       by ``locate_retries`` forwards;
    3. **fallback** — no hint, dead pointer chain or exhausted budget:
       the configured base strategy (``cache_fallback``) takes over and
       also performs §7.2 dead-target detection.
    """

    name = LOCATE_CACHED

    @property
    def base(self) -> BaseLocator:
        """The fallback strategy instance (shared with the manager)."""
        return self.manager.base_locator(self.cluster.config.cache_fallback)

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {"hops": 0,
                 "forwards": self.cluster.config.locate_retries,
                 "from_node": from_node}
        hint = self.cluster.kernels[from_node].location_hints.get(tid)
        if hint is None or hint == from_node:
            # Cold cache (or a useless self-hint: the local fast path
            # already failed upstream): straight to the base strategy.
            self._fallback(tid, block, state, on_result)
            return
        self._send(from_node, hint, tid, block, state, on_result)

    def _send(self, from_node: int, to_node: int, tid: ThreadId,
              block: EventBlock, state: dict, on_result: PostResult) -> None:
        if from_node == to_node:
            self._arrived(to_node, tid, block, state, on_result)
            return

        def hint_dead(message: Message | None) -> None:
            # The hinted (or forwarded-to) node is unreachable — most
            # likely crashed. The hint is worse than stale: drop it at
            # the origin and let the base strategy find the thread or
            # declare it dead (§7.2).
            self.cluster.kernels[state["from_node"]] \
                .location_hints.invalidate(tid)
            self._fallback(tid, block, state, on_result)

        membership = self._membership(from_node)
        if membership is not None and membership.is_dead(to_node):
            # Confirmed dead by gossip: skip the doomed direct send and
            # go straight to the fallback strategy.
            hint_dead(None)
            return
        state["hops"] += 1
        self._transmit(Message(
            src=from_node, dst=to_node, mtype=MSG_CACHED_POST, size=128,
            payload={"tid": tid, "block": block, "state": state,
                     "on_result": on_result}), hint_dead)

    def on_message(self, message: Message) -> None:
        body = message.payload
        self._arrived(int(message.dst), body["tid"], body["block"],
                      body["state"], body["on_result"])

    def _arrived(self, node: int, tid: ThreadId, block: EventBlock,
                 state: dict, on_result: PostResult) -> None:
        if self._accept(node, tid, block):
            on_result(True, state["hops"])
            return
        # Stale hint: chase the TCB forwarding pointer with the notice
        # itself — the thread invoked onward and this kernel knows where.
        kernel = self.cluster.kernels[node]
        tcb = kernel.thread_table.get(tid)
        next_node = tcb.next_node if tcb is not None else None
        if next_node is None:
            # No TCB (the thread returned past this node): this kernel's
            # own hint table may know where it went.
            fresher = kernel.location_hints.peek(tid)
            if fresher is not None and fresher != node:
                next_node = fresher
        if (next_node is not None and state["forwards"] > 0
                and tid in self.cluster.live_threads):
            state["forwards"] -= 1
            kernel.location_hints.install(tid, next_node)
            self._send(node, next_node, tid, block, state, on_result)
            return
        # Exhausted or dead end: drop the origin's hint so the next post
        # does not repeat the wasted message, then let the base strategy
        # find the thread (or declare it dead, §7.2).
        self.cluster.kernels[state["from_node"]].location_hints.invalidate(
            tid)
        self._fallback(tid, block, state, on_result)

    def _fallback(self, tid: ThreadId, block: EventBlock, state: dict,
                  on_result: PostResult) -> None:
        hops_so_far = state["hops"]

        def relay(delivered: bool, hops: int) -> None:
            on_result(delivered, hops_so_far + hops)

        self.base.post(state["from_node"], tid, block, relay)


def make_locator(name: str, manager: "EventManager") -> BaseLocator:
    """Instantiate the configured strategy."""
    if name == LOCATE_PATH:
        return PathLocator(manager)
    if name == LOCATE_BROADCAST:
        return BroadcastLocator(manager)
    if name == LOCATE_MULTICAST:
        return MulticastLocator(manager)
    if name == LOCATE_CACHED:
        return CachedLocator(manager)
    raise KernelError(f"unknown locator {name!r}")
