"""Thread-location strategies (§7.1).

"When an event is posted to a thread, the system must track down the
thread." The paper proposes three strategies, all implemented here behind
one interface:

* :class:`BroadcastLocator` — "broadcast the event request. When the
  machine that has the thread active gets the request, it can block the
  thread [and] run the handler … However, this is communication intensive
  and wasteful." Every node receives the posted event; non-holders reply
  not-found so the origin can detect dead threads.
* :class:`PathLocator` — "follow the path of the thread starting from its
  root node … using information in the system's thread-control blocks.
  On a distributed system comprising of n nodes, it is possible to find
  the thread in n steps." The notice hops along TCB forwarding pointers.
* :class:`MulticastLocator` — "application's threads can create a
  multicast group. When a thread leaves the current node and starts
  executing in another, the thread-management system can join the
  multicast group" — the notice is multicast to the thread's group and
  only the node holding the innermost activation accepts it.

Because threads keep moving while notices are in flight, every strategy
retries a bounded number of times before declaring the thread dead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.errors import KernelError
from repro.events.block import EventBlock
from repro.kernel.config import (
    LOCATE_BROADCAST,
    LOCATE_MULTICAST,
    LOCATE_PATH,
)
from repro.net.message import Message
from repro.threads.ids import ThreadId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.events.delivery import EventManager

MSG_PATH_POST = "locate.path"
MSG_BCAST_POST = "locate.bcast"
MSG_BCAST_REPLY = "locate.bcast-reply"
MSG_MCAST_POST = "locate.mcast"
MSG_MCAST_REPLY = "locate.mcast-reply"

#: Result callback: (delivered, hops) — hops is the count of routing
#: messages this post consumed (broadcast counts fan-out copies).
PostResult = Callable[[bool, int], None]


class BaseLocator:
    """Shared plumbing for the three strategies."""

    name = "?"

    def __init__(self, manager: "EventManager") -> None:
        self.manager = manager
        self.cluster = manager.cluster

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        """Route ``block`` to wherever ``tid`` currently executes.

        ``on_result(delivered, hops)`` fires exactly once: with
        ``delivered=False`` only when the thread cannot be found (dead).
        """
        raise NotImplementedError

    # -- helpers ---------------------------------------------------------

    def _innermost_here(self, node: int, tid: ThreadId) -> bool:
        return self.cluster.kernels[node].thread_table.innermost_here(tid)

    def _accept(self, node: int, tid: ThreadId, block: EventBlock) -> bool:
        """Hand the notice to the thread if its innermost frame is here."""
        if not self._innermost_here(node, tid):
            return False
        return self.manager.enqueue_for_thread(node, tid, block)

    def _retry_later(self, fn: Callable[[], None]) -> None:
        self.cluster.sim.call_after(
            self.cluster.config.locate_retry_delay, fn)


class PathLocator(BaseLocator):
    """Walk TCB forwarding pointers from the thread's root node."""

    name = LOCATE_PATH

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {"hops": 0, "retries": self.cluster.config.locate_retries}
        self._hop(from_node, tid.root, tid, block, state, on_result)

    def _hop(self, from_node: int, to_node: int, tid: ThreadId,
             block: EventBlock, state: dict, on_result: PostResult) -> None:
        if from_node == to_node:
            self._arrived(to_node, tid, block, state, on_result)
            return
        state["hops"] += 1
        self.cluster.fabric.send(Message(
            src=from_node, dst=to_node, mtype=MSG_PATH_POST, size=128,
            payload={"tid": tid, "block": block, "state": state,
                     "on_result": on_result}))

    def on_message(self, message: Message) -> None:
        body = message.payload
        self._arrived(int(message.dst), body["tid"], body["block"],
                      body["state"], body["on_result"])

    def _arrived(self, node: int, tid: ThreadId, block: EventBlock,
                 state: dict, on_result: PostResult) -> None:
        if self._accept(node, tid, block):
            on_result(True, state["hops"])
            return
        tcb = self.cluster.kernels[node].thread_table.get(tid)
        if tcb is not None and tcb.next_node is not None:
            self._hop(node, tcb.next_node, tid, block, state, on_result)
            return
        # Stale pointer or mid-flight thread: restart from the root a
        # bounded number of times before giving up.
        if state["retries"] > 0 and tid in self.cluster.live_threads:
            state["retries"] -= 1
            self._retry_later(
                lambda: self._hop(node, tid.root, tid, block, state,
                                  on_result))
            return
        on_result(False, state["hops"])


class BroadcastLocator(BaseLocator):
    """Broadcast the event request to every node."""

    name = LOCATE_BROADCAST

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {
            "hops": 0,
            "retries": self.cluster.config.locate_retries,
            "from_node": from_node,
        }
        self._round(tid, block, state, on_result)

    def _round(self, tid: ThreadId, block: EventBlock, state: dict,
               on_result: PostResult) -> None:
        from_node = state["from_node"]
        others = [n for n in self.cluster.kernels if n != from_node]
        if self._accept(from_node, tid, block):
            on_result(True, state["hops"])
            return
        if not others:
            on_result(False, state["hops"])
            return
        pending = {"found": False, "replies": 0, "expected": len(others)}
        state["hops"] += len(others)
        for node in others:
            self.cluster.fabric.send(Message(
                src=from_node, dst=node, mtype=MSG_BCAST_POST, size=128,
                payload={"tid": tid, "block": block, "state": state,
                         "pending": pending, "on_result": on_result}))

    def on_message(self, message: Message) -> None:
        body = message.payload
        node = int(message.dst)
        found = self._accept(node, body["tid"], body["block"])
        body["state"]["hops"] += 1  # the reply
        self.cluster.fabric.send(Message(
            src=node, dst=body["state"]["from_node"],
            mtype=MSG_BCAST_REPLY, size=64,
            payload={"found": found, "tid": body["tid"],
                     "block": body["block"], "state": body["state"],
                     "pending": body["pending"],
                     "on_result": body["on_result"]}))

    def on_reply(self, message: Message) -> None:
        body = message.payload
        pending, state = body["pending"], body["state"]
        pending["replies"] += 1
        if body["found"]:
            pending["found"] = True
        if pending["replies"] < pending["expected"]:
            return
        if pending["found"]:
            body["on_result"](True, state["hops"])
            return
        tid = body["tid"]
        if state["retries"] > 0 and tid in self.cluster.live_threads:
            state["retries"] -= 1
            self._retry_later(
                lambda: self._round(tid, body["block"], state,
                                    body["on_result"]))
            return
        body["on_result"](False, state["hops"])


class MulticastLocator(BaseLocator):
    """Multicast the notice to the thread's member-maintained group."""

    name = LOCATE_MULTICAST

    def post(self, from_node: int, tid: ThreadId, block: EventBlock,
             on_result: PostResult) -> None:
        state = {
            "hops": 0,
            "retries": self.cluster.config.locate_retries,
            "from_node": from_node,
        }
        self._round(tid, block, state, on_result)

    def _round(self, tid: ThreadId, block: EventBlock, state: dict,
               on_result: PostResult) -> None:
        from_node = state["from_node"]
        groups = self.cluster.fabric.multicast_groups
        members = sorted(groups.members(tid.multicast_group))
        if from_node in members and self._accept(from_node, tid, block):
            on_result(True, state["hops"])
            return
        targets = [n for n in members if n != from_node]
        if not targets:
            self._retry_or_fail(tid, block, state, on_result)
            return
        pending = {"found": False, "replies": 0, "expected": len(targets)}
        state["hops"] += len(targets)
        for node in targets:
            self.cluster.fabric.send(Message(
                src=from_node, dst=node, mtype=MSG_MCAST_POST, size=128,
                payload={"tid": tid, "block": block, "state": state,
                         "pending": pending, "on_result": on_result}))

    def _retry_or_fail(self, tid: ThreadId, block: EventBlock, state: dict,
                       on_result: PostResult) -> None:
        if state["retries"] > 0 and tid in self.cluster.live_threads:
            state["retries"] -= 1
            self._retry_later(
                lambda: self._round(tid, block, state, on_result))
            return
        on_result(False, state["hops"])

    def on_message(self, message: Message) -> None:
        body = message.payload
        node = int(message.dst)
        found = self._accept(node, body["tid"], body["block"])
        body["state"]["hops"] += 1  # the reply
        self.cluster.fabric.send(Message(
            src=node, dst=body["state"]["from_node"],
            mtype=MSG_MCAST_REPLY, size=64,
            payload={"found": found, "tid": body["tid"],
                     "block": body["block"], "state": body["state"],
                     "pending": body["pending"],
                     "on_result": body["on_result"]}))

    def on_reply(self, message: Message) -> None:
        body = message.payload
        pending, state = body["pending"], body["state"]
        pending["replies"] += 1
        if body["found"]:
            pending["found"] = True
        if pending["replies"] < pending["expected"]:
            return
        if pending["found"]:
            body["on_result"](True, state["hops"])
            return
        self._retry_or_fail(body["tid"], body["block"], state,
                            body["on_result"])


def make_locator(name: str, manager: "EventManager") -> BaseLocator:
    """Instantiate the configured strategy."""
    if name == LOCATE_PATH:
        return PathLocator(manager)
    if name == LOCATE_BROADCAST:
        return BroadcastLocator(manager)
    if name == LOCATE_MULTICAST:
        return MulticastLocator(manager)
    raise KernelError(f"unknown locator {name!r}")
