"""Handler supervision: watchdogs, circuit breakers, dead letters.

PRs 2-4 made the *transport* crash-tolerant; this module makes *handler
execution* crash-tolerant. The delivery engine consults one
:class:`HandlerSupervisor` (cluster-wide, owned by the
:class:`~repro.events.delivery.EventManager`) for three policies:

* **watchdog deadlines** — every supervised surrogate run gets a
  deadline (``handler_deadline``, overridable per registration); on
  expiry the surrogate is cancelled, the chain falls through, and a
  ``HANDLER_TIMEOUT`` system event is raised on the owning thread.
* **retry + circuit breaking for buddy handlers** — invocations that
  fail with crash/give-up errors retry with exponential backoff
  (``handler_retries`` / ``handler_backoff``); a per-(buddy-oid, event)
  :class:`CircuitBreaker` opens after ``breaker_threshold`` consecutive
  failures and skips the registration (chain fall-through) until a
  half-open probe succeeds.
* **dead-letter quarantine** — a block whose *entire* chain fails
  ``poison_threshold`` times moves to the node's
  :class:`DeadLetterQueue` (journaled when ``durable_delivery`` is on)
  instead of failing forever; it stays inspectable and requeueable via
  the cluster API.

Everything is inert while the knobs hold their defaults: no timers, no
state, no extra simulator events — same-seed runs stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.events.block import EventBlock
    from repro.events.handlers import HandlerRegistration
    from repro.kernel.node import Kernel

# -- circuit breaker ---------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-(buddy-oid, event) failure gate.

    CLOSED admits everything; ``threshold`` consecutive failures open
    it. OPEN rejects until ``reset`` virtual seconds have passed, then
    admits exactly one half-open probe; the probe's outcome closes or
    re-opens the breaker.
    """

    __slots__ = ("threshold", "reset", "state", "failures", "opened_at")

    def __init__(self, threshold: int, reset: float) -> None:
        self.threshold = threshold
        self.reset = reset
        self.state = CLOSED
        self.failures = 0
        self.opened_at = 0.0

    def allow(self, now: float) -> tuple[bool, bool]:
        """(admit?, is this admission the half-open probe?)."""
        if self.state == CLOSED:
            return True, False
        if self.state == OPEN and now - self.opened_at >= self.reset:
            self.state = HALF_OPEN
            return True, True
        # OPEN inside the reset window, or a half-open probe in flight.
        return False, False

    def record_success(self) -> bool:
        """Returns True when this success closed a non-closed breaker."""
        self.failures = 0
        if self.state != CLOSED:
            self.state = CLOSED
            return True
        return False

    def record_failure(self, now: float) -> bool:
        """Returns True when this failure opened (or re-opened) it."""
        self.failures += 1
        if self.state == HALF_OPEN or (self.state == CLOSED
                                       and self.failures >= self.threshold):
            self.state = OPEN
            self.opened_at = now
            return True
        if self.state == OPEN:
            # Late failure report while already open: refresh the window.
            self.opened_at = now
        return False


# -- supervisor --------------------------------------------------------------

class HandlerSupervisor:
    """Cluster-wide supervision policy, consulted by the delivery engine."""

    COUNTERS = ("handler_timeouts", "handler_retries", "breaker_opens",
                "breaker_half_opens", "breaker_closes", "breaker_skips",
                "fast_fails", "chain_retries", "quarantined", "requeued",
                "dead_letter_undeliverable")

    def __init__(self, cluster) -> None:
        self.cluster = cluster
        self.config = cluster.config
        self._breakers: dict[tuple[int, str], CircuitBreaker] = {}
        #: chain-failure tallies for the poison policy, keyed by the
        #: block's durable id (stable across redelivery) or block id
        self._chain_failures: dict[Any, int] = {}
        self.counters = {name: 0 for name in self.COUNTERS}

    # -- watchdog -----------------------------------------------------

    def effective_deadline(
            self, registration: "HandlerRegistration | None") -> float | None:
        """The watchdog deadline for one registration (None = no watchdog)."""
        if registration is not None and registration.deadline is not None:
            return registration.deadline
        return self.config.handler_deadline

    # -- circuit breaker ----------------------------------------------

    def breaker_for(self, oid: int, event: str) -> CircuitBreaker | None:
        if self.config.breaker_threshold is None:
            return None
        key = (oid, event)
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_reset)
        return breaker

    def breaker_state(self, oid: int, event: str) -> str:
        breaker = self._breakers.get((oid, event))
        return breaker.state if breaker is not None else CLOSED

    def breaker_allows(self, tracer, oid: int, event: str,
                       now: float) -> bool:
        """Admission check; emits skip / half-open traces."""
        breaker = self.breaker_for(oid, event)
        if breaker is None:
            return True
        admitted, probe = breaker.allow(now)
        if probe:
            self.counters["breaker_half_opens"] += 1
            tracer.emit("supervise", "breaker-half-open", oid=oid,
                        event=event)
        if not admitted:
            self.counters["breaker_skips"] += 1
            tracer.emit("supervise", "breaker-skip", oid=oid, event=event)
        return admitted

    def invoke_succeeded(self, tracer, oid: int, event: str) -> None:
        breaker = self._breakers.get((oid, event))
        if breaker is not None and breaker.record_success():
            self.counters["breaker_closes"] += 1
            tracer.emit("supervise", "breaker-close", oid=oid, event=event)

    def invoke_failed(self, tracer, oid: int, event: str,
                      now: float) -> None:
        breaker = self.breaker_for(oid, event)
        if breaker is not None and breaker.record_failure(now):
            self.counters["breaker_opens"] += 1
            tracer.emit("supervise", "breaker-open", oid=oid, event=event,
                        failures=breaker.failures)

    # -- poison / dead-letter policy ----------------------------------

    def chain_failed(self, block: "EventBlock") -> tuple[str | None, int]:
        """An entire chain run failed; what now?

        Returns ``(None, 0)`` when the poison policy is off,
        ``("retry", n)`` while the block is below ``poison_threshold``
        total chain failures, and ``("quarantine", n)`` when it hit the
        threshold (the tally is dropped — the block leaves delivery).
        """
        threshold = self.config.poison_threshold
        if threshold is None:
            return None, 0
        key = block.durable_id or block.block_id
        count = self._chain_failures.get(key, 0) + 1
        if count >= threshold:
            self._chain_failures.pop(key, None)
            return "quarantine", count
        self._chain_failures[key] = count
        return "retry", count

    def clear_failures(self, block: "EventBlock") -> None:
        """A chain run succeeded: forget the block's failure tally."""
        if self._chain_failures:
            self._chain_failures.pop(block.durable_id or block.block_id,
                                     None)

    def stats(self) -> dict[str, int]:
        open_breakers = sum(1 for b in self._breakers.values()
                            if b.state != CLOSED)
        return {**self.counters, "breakers": len(self._breakers),
                "breakers_open": open_breakers}


# -- dead-letter queue -------------------------------------------------------

@dataclass
class DeadLetter:
    """One quarantined event block on one node."""

    dl_id: int
    block: "EventBlock"
    reason: str            #: "poison" or "undeliverable"
    error: str | None      #: repr of the last failure, if any
    failures: int          #: chain failures accumulated before quarantine
    at: float              #: virtual time of quarantine


class DeadLetterQueue:
    """Per-node quarantine for poison / undeliverable event blocks.

    Journaled through the node's :class:`~repro.store.manager.NodeStore`
    when ``durable_delivery`` is on (``dead`` / ``dead-requeue``
    records, carried through checkpoints), so quarantined blocks survive
    node crashes exactly like pending posts do.
    """

    def __init__(self, kernel: "Kernel") -> None:
        self.kernel = kernel
        self._entries: dict[int, DeadLetter] = {}
        self._next_id = 0
        self.quarantined = 0
        self.requeued = 0

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, block: "EventBlock", reason: str,
            error: BaseException | str | None = None,
            failures: int = 0, journal: bool = True) -> DeadLetter:
        """Quarantine a block (journals a ``dead`` record when durable).

        ``journal=False`` keeps the entry memory-only even in durable
        mode — used by the undeliverable-post path, which must not
        perturb journal accounting of runs that never enabled a
        supervision knob.
        """
        self._next_id += 1
        dead = DeadLetter(dl_id=self._next_id, block=block, reason=reason,
                          error=repr(error) if error is not None else None,
                          failures=failures, at=self.kernel.sim.now)
        self._entries[dead.dl_id] = dead
        self.quarantined += 1
        self.kernel.tracer.emit("supervise", "dead-letter",
                                node=self.kernel.node_id, dl_id=dead.dl_id,
                                event=block.event, reason=reason,
                                error=dead.error)
        if journal and self.kernel.store.enabled:
            self.kernel.store.journal_dead_letter(dead)
        hook = self.kernel.cluster.events.on_quarantine
        if hook is not None:
            hook(dead)
        return dead

    def take(self, dl_id: int) -> DeadLetter | None:
        """Remove a dead letter for requeue (journals when durable)."""
        dead = self._entries.pop(dl_id, None)
        if dead is None:
            return None
        self.requeued += 1
        if self.kernel.store.enabled:
            self.kernel.store.journal_dead_requeue(dl_id)
        return dead

    def get(self, dl_id: int) -> DeadLetter | None:
        return self._entries.get(dl_id)

    def entries(self) -> list[DeadLetter]:
        """All quarantined blocks, oldest first."""
        return [self._entries[k] for k in sorted(self._entries)]

    # -- checkpoint / recovery ----------------------------------------

    def snapshot(self) -> tuple[DeadLetter, ...]:
        """Checkpoint form (entries copied so history stays frozen)."""
        return tuple(replace(dead) for dead in self.entries())

    def restore(self, entries: Iterable[DeadLetter]) -> None:
        """Reset to a checkpoint's quarantine set (recovery replay)."""
        self._entries = {}
        for dead in entries:
            self._entries[dead.dl_id] = replace(dead)
            self._next_id = max(self._next_id, dead.dl_id)

    def replay_add(self, data: dict[str, Any]) -> None:
        """Roll one ``dead`` journal record forward during replay."""
        dead = DeadLetter(dl_id=data["dl_id"], block=data["block"],
                          reason=data["reason"], error=data["error"],
                          failures=data["failures"], at=data["at"])
        self._entries[dead.dl_id] = dead
        self._next_id = max(self._next_id, dead.dl_id)

    def replay_remove(self, dl_id: int) -> None:
        """Roll one ``dead-requeue`` record forward during replay."""
        self._entries.pop(dl_id, None)

    def on_crash(self) -> None:
        """Memory is gone; recovery replays the journal (durable mode)."""
        self._entries.clear()
        self._next_id = 0

    def stats(self) -> dict[str, int]:
        return {"quarantined": self.quarantined, "requeued": self.requeued,
                "held": len(self._entries)}
