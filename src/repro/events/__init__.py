"""The asynchronous event facility (the paper's contribution)."""

from repro.events import names
from repro.events.block import EventBlock, FrameInfo, ThreadSnapshot
from repro.events.handlers import Decision, HandlerChain, HandlerContext, HandlerRegistration

__all__ = [
    "Decision",
    "EventBlock",
    "FrameInfo",
    "HandlerChain",
    "HandlerContext",
    "HandlerRegistration",
    "ThreadSnapshot",
    "names",
]
