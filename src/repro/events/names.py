"""Event names.

Section 3 of the paper distinguishes *system events* — predefined, raised
by the operating system (page faults, alarms, hardware exceptions,
termination) — from *user events*, which applications register by name
(COMMIT, SYNCHRONIZE, …) and raise explicitly.

Every cluster's name service is pre-seeded with the system events below;
user events are added with :func:`repro.events.api.register_event` (or the
``ctx.register_event`` syscall).
"""

from __future__ import annotations

# -- system events the paper names explicitly -------------------------------

#: Termination request for a thread / application (§6.3).
TERMINATE = "TERMINATE"
#: Group-wide quit raised by the ^C protocol's root handler (§6.3).
QUIT = "QUIT"
#: Abort the invocation in progress inside an object (§6.3).
ABORT = "ABORT"
#: Periodic alarm (§3, §6.2).
TIMER = "TIMER"
#: Page fault on a user-managed segment (§5.2, §6.4).
VM_FAULT = "VM_FAULT"
#: Asynchronous user interrupt (§5.2).
INTERRUPT = "INTERRUPT"
#: Object deletion notification (§5.1 example).
DELETE = "DELETE"
#: Arithmetic hardware exception: "a division by zero in a user program
#: leads to the raising of a system event" (§3).
DIV_ZERO = "DIV_ZERO"
#: Generic hardware exception / memory violation.
SEGV = "SEGV"
#: Delivered to the raiser of an asynchronous event whose target thread
#: "has been destroyed" — §7.2 requires the sender be notified.
TARGET_DEAD = "TARGET_DEAD"
#: Raised on a thread whose handler exceeded its watchdog deadline; the
#: offending surrogate was cancelled and the chain fell through. Only
#: delivered when the thread attached a handler for it.
HANDLER_TIMEOUT = "HANDLER_TIMEOUT"

#: All predefined system events, in a stable order.
SYSTEM_EVENTS = (
    TERMINATE, QUIT, ABORT, TIMER, VM_FAULT, INTERRUPT, DELETE,
    DIV_ZERO, SEGV, TARGET_DEAD, HANDLER_TIMEOUT,
)

#: System events every object is expected to accept even with no
#: user-supplied handler ("all objects have a set of predefined system
#: events that have defined handlers", §4.3).
OBJECT_DEFAULT_EVENTS = (ABORT, DELETE)


def seed_system_events(names) -> None:
    """Pre-register all system events in a cluster name service."""
    for event in SYSTEM_EVENTS:
        if not names.event_exists(event):
            names.register_event(event, registrar="kernel", system=True)
