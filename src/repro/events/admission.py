"""Admission control: per-node overload gate with load shedding.

The paper's asynchronous post primitive decouples raisers from handlers,
but nothing in the base delivery path bounds what happens when raisers
outrun handlers: queues grow without bound and p99 latency is unbounded
past the knee. This module adds the standard remedy — an admission gate
in front of the delivery engine, with high/low watermark hysteresis on
outstanding-post depth and configurable shedding policies:

* ``drop`` — reject the post with a §7.2-style undeliverable notice
  (:class:`~repro.errors.OverloadShedError`), so the raiser learns in
  bounded time instead of queueing into a collapse;
* ``degrade`` — downgrade an idempotent (non-durable) post from
  reliable retransmit-until-acked to a single fire-and-forget datagram
  with a deadline backstop, shedding retransmission pressure while
  keeping a chance of delivery;
* ``defer`` — park a durable post in the origin's transactional outbox
  (journaled, so nothing is lost) and let the flush timer deliver it
  once the storm passes.

Durable posts are **never dropped**: whatever the policy, a durable post
that cannot be admitted is deferred — the journal already guarantees it,
so shedding it would be gratuitous loss.

One gate guards each node. A post charges the gate of its *admission
node* — the target object's home for object posts (the node whose
handler queue the post will occupy), the raiser's node otherwise — and
releases the charge when handling concludes (executed, noticed, or
quarantined). While the gate is shedding, **weighted-fair admission**
keyed on the raiser node keeps one hot tenant from starving the rest:
each tenant may hold outstanding depth proportional to its configured
weight (``tenant_weights``); tenants under their share are still
admitted, tenants over it are shed. With no weights configured every
tenant is shed alike while over the watermark.

All state is deterministic bookkeeping on the simulator's virtual time;
the gate itself schedules nothing. In a real system the depth signal
would be gossiped or piggybacked on acks; the simulation reads it
directly, the same shared-kernel short-circuit the locators' hint
tables use.
"""

from __future__ import annotations

ADMIT = "admit"
DROP = "drop"
DEGRADE = "degrade"
DEFER = "defer"

#: Counter names every gate exposes (mirrors HandlerSupervisor.COUNTERS
#: so cluster.supervision_stats() can aggregate them uniformly).
GATE_COUNTERS = ("admitted", "shed_dropped", "shed_degraded",
                 "shed_deferred")


class AdmissionGate:
    """Watermark gate over one node's outstanding admitted-post depth."""

    __slots__ = ("node_id", "high", "low", "weights", "weight_total",
                 "depth", "depth_hwm", "tenant_depth", "shedding",
                 "shed_windows", "counters")

    def __init__(self, node_id: int, high: int, low: int,
                 weights: dict | None = None) -> None:
        self.node_id = node_id
        self.high = int(high)
        self.low = int(low)
        self.weights = dict(weights or {})
        self.weight_total = float(sum(self.weights.values()))
        self.depth = 0
        self.depth_hwm = 0
        self.tenant_depth: dict[int, int] = {}
        self.shedding = False
        #: times the gate crossed the high watermark (entered shedding)
        self.shed_windows = 0
        self.counters = {name: 0 for name in GATE_COUNTERS}

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    def tenant_share(self, tenant: int) -> int:
        """Outstanding depth ``tenant`` may hold while the gate sheds.

        Proportional to its weight over the *low* watermark (the level
        shedding is trying to drain to); at least 1 so a weighted tenant
        is never starved outright. Tenants with no configured weight —
        or every tenant, when no weights are configured — get 0: shed
        while over the watermark.
        """
        weight = self.weights.get(tenant)
        if weight is None or self.weight_total <= 0:
            return 0
        return max(1, int(self.low * weight / self.weight_total))

    def admit(self, tenant: int, n: int = 1) -> bool:
        """Would admitting ``n`` more posts from ``tenant`` be allowed?

        Pure decision — the caller charges admitted posts with
        :meth:`charge` (one per recipient block) so releases balance.
        Updates the hysteresis state: shedding starts when depth would
        cross ``high`` and stops once releases drain it to ``low``.
        """
        if not self.shedding and self.depth + n > self.high:
            self.shedding = True
            self.shed_windows += 1
        if not self.shedding:
            return True
        # Weighted fair share: a tenant below its share keeps going.
        return self.tenant_depth.get(tenant, 0) + n <= self.tenant_share(
            tenant)

    # ------------------------------------------------------------------
    # depth accounting
    # ------------------------------------------------------------------

    def charge(self, tenant: int, n: int = 1) -> None:
        self.depth += n
        self.tenant_depth[tenant] = self.tenant_depth.get(tenant, 0) + n
        if self.depth > self.depth_hwm:
            self.depth_hwm = self.depth
        self.counters["admitted"] += n

    def release(self, tenant: int, n: int = 1) -> None:
        self.depth = max(0, self.depth - n)
        left = self.tenant_depth.get(tenant, 0) - n
        if left > 0:
            self.tenant_depth[tenant] = left
        else:
            self.tenant_depth.pop(tenant, None)
        if self.shedding and self.depth <= self.low:
            self.shedding = False

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, int]:
        return {**self.counters,
                "depth": self.depth,
                "depth_hwm": self.depth_hwm,
                "shed_windows": self.shed_windows,
                "shedding": int(self.shedding)}


__all__ = ["ADMIT", "DROP", "DEGRADE", "DEFER", "GATE_COUNTERS",
           "AdmissionGate"]
