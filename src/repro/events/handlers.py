"""Handler descriptors, execution contexts, decisions and chains.

Section 4.1 allows a thread-based handler to be:

* an entry point of the object that attached it (*attaching-object
  context* — delivery performs an "unscheduled invocation" back to that
  object, wherever it lives);
* an entry point of **another** designated object (a *buddy handler*,
  e.g. a central monitor or debugger server);
* a procedure in the thread's per-thread memory, executed *in the context
  of the current object* where the thread happens to be when the event is
  delivered.

Section 4.2 chains handlers per (thread, event) in LIFO order; a handler
may propagate the event to the next handler down the chain.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import EventError


class HandlerContext(enum.Enum):
    """Where a thread-based handler executes (§4.1)."""

    #: In the object that attached the handler (unscheduled invocation).
    ATTACHING = "attaching"
    #: In whatever object the thread occupies at delivery time; handler is
    #: a per-thread-memory procedure (``OWN_CONTEXT`` in the paper's §5.2
    #: example).
    CURRENT = "current"
    #: In a designated third object (buddy handler).
    BUDDY = "buddy"


class Decision(enum.Enum):
    """What a handler decided about the suspended thread."""

    #: Resume the thread where it was suspended.
    RESUME = "resume"
    #: Terminate the thread (unwind all activations).
    TERMINATE = "terminate"
    #: Pass the event to the next handler down the LIFO chain.
    PROPAGATE = "propagate"


_reg_ids = itertools.count(1)


@dataclass
class HandlerRegistration:
    """One attached handler for one event on one thread.

    Attributes
    ----------
    event:
        Event name this handler accepts.
    context:
        Execution context (see :class:`HandlerContext`).
    fn_name:
        For ATTACHING/BUDDY: the handler method name on the target object.
    target_oid:
        For ATTACHING: oid of the attaching object; for BUDDY: oid of the
        buddy object.
    procedure:
        For CURRENT: the per-thread-memory procedure key (the actual
        callable lives in the thread's per-thread memory, which "traverses
        with the thread", §4.1).
    attached_in_oid / attached_at_node:
        Where the attachment happened (diagnostics and tests).
    deadline:
        Per-registration watchdog deadline (virtual seconds) overriding
        the cluster-wide ``handler_deadline``; None inherits the config.
    """

    event: str
    context: HandlerContext
    fn_name: str | None = None
    target_oid: int | None = None
    procedure: str | None = None
    attached_in_oid: int | None = None
    attached_at_node: int | None = None
    deadline: float | None = None
    reg_id: int = field(default_factory=lambda: next(_reg_ids))

    def __post_init__(self) -> None:
        if self.context is HandlerContext.CURRENT:
            if not self.procedure:
                raise EventError(
                    "CURRENT-context handler needs a per-thread-memory "
                    "procedure name")
        else:
            if self.target_oid is None or not self.fn_name:
                raise EventError(
                    f"{self.context.value}-context handler needs a target "
                    f"object and method name")


class HandlerChain:
    """LIFO chain of handler registrations for one event on one thread."""

    def __init__(self, event: str) -> None:
        self.event = event
        self._stack: list[HandlerRegistration] = []

    def __len__(self) -> int:
        return len(self._stack)

    def __iter__(self):
        """Iterate newest-first (delivery order)."""
        return reversed(self._stack)

    def push(self, registration: HandlerRegistration) -> None:
        if registration.event != self.event:
            raise EventError(
                f"registration for {registration.event!r} pushed onto "
                f"chain for {self.event!r}")
        self._stack.append(registration)

    def pop(self) -> HandlerRegistration:
        if not self._stack:
            raise EventError(f"handler chain for {self.event!r} is empty")
        return self._stack.pop()

    def remove(self, reg_id: int) -> bool:
        """Detach a specific registration. Returns False if absent."""
        for i, reg in enumerate(self._stack):
            if reg.reg_id == reg_id:
                del self._stack[i]
                return True
        return False

    def top(self) -> HandlerRegistration | None:
        return self._stack[-1] if self._stack else None

    def in_order(self) -> list[HandlerRegistration]:
        """Delivery order: most recently attached first (§4.2 LIFO)."""
        return list(reversed(self._stack))

    def copy(self) -> "HandlerChain":
        """Used when a spawned thread inherits its parent's registry (§6.3)."""
        clone = HandlerChain(self.event)
        clone._stack = list(self._stack)
        return clone


class ObjectHandlerRegistry:
    """Dynamic object-based handler registry for one node (§5.1).

    Class-declared ``@on_event`` handlers are static: they exist for
    every instance of the class, forever. This registry adds the runtime
    counterpart — bind an event to one of an object's methods after the
    object exists — and is the piece of §5's "handlers stay armed while
    the object persists" that actually needs persistence: the mapping is
    kernel state, so a node crash discards it. With
    ``durable_delivery`` on, registrations are journaled through
    :class:`repro.store.manager.NodeStore` and replayed on recovery;
    without it they are lost with the node (the documented PR 2 gap).
    """

    def __init__(self) -> None:
        self._handlers: dict[tuple[int, str], str] = {}

    def __len__(self) -> int:
        return len(self._handlers)

    def register(self, oid: int, event: str, fn_name: str) -> None:
        """Bind ``event`` on object ``oid`` to its method ``fn_name``."""
        self._handlers[(oid, event)] = fn_name

    def unregister(self, oid: int, event: str) -> bool:
        return self._handlers.pop((oid, event), None) is not None

    def lookup(self, oid: int, event: str) -> str | None:
        """The dynamically bound handler method name, or None."""
        return self._handlers.get((oid, event))

    def events_for(self, oid: int) -> list[str]:
        return sorted(e for (o, e) in self._handlers if o == oid)

    def drop_object(self, oid: int) -> int:
        """Remove every registration of a destroyed object."""
        stale = [key for key in self._handlers if key[0] == oid]
        for key in stale:
            del self._handlers[key]
        return len(stale)

    def entries(self) -> tuple[tuple[int, str, str], ...]:
        """Checkpoint form: sorted ``(oid, event, fn_name)`` triples."""
        return tuple(sorted((oid, event, fn)
                            for (oid, event), fn in self._handlers.items()))

    def restore(self, entries: tuple[tuple[int, str, str], ...]) -> None:
        """Reset to a checkpoint's registration set (recovery replay)."""
        self._handlers = {(oid, event): fn for oid, event, fn in entries}

    def clear(self) -> None:
        """Volatile-state discard: the node crashed."""
        self._handlers.clear()


HandlerFn = Callable[..., Any]
