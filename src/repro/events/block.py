"""Event blocks.

"Information necessary to handle the event is encapsulated in a structure
called an event block and is passed to the handler. The event block
contains generic system information such as state of the registers, etc.,
for exception handling and space for user defined data structures for
user events." (§4.1)

In this reproduction the "state of the registers" is the structured
:class:`ThreadSnapshot` of the suspended thread: which object/entry each
live frame is in, on which node, and the innermost "program counter"
(the frame's step count — the virtual analogue of a PC the monitoring
application of §6.2 samples).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any

_block_ids = itertools.count(1)


@dataclass(frozen=True)
class FrameInfo:
    """One activation record in a thread snapshot."""

    oid: int
    entry: str
    node: int
    steps: int


@dataclass(frozen=True)
class ThreadSnapshot:
    """Register-file analogue: the suspended thread's visible state."""

    tid: object
    state: str
    node: int | None
    frames: tuple[FrameInfo, ...] = ()

    @property
    def program_counter(self) -> tuple[int, str, int] | None:
        """(oid, entry, steps) of the innermost frame, or None if idle."""
        if not self.frames:
            return None
        top = self.frames[-1]
        return (top.oid, top.entry, top.steps)


class EventBlock:
    """The structure handed to every handler.

    A ``__slots__`` class rather than a dataclass: one block (often
    several — fan-out copies, chain transforms, notices) is allocated
    per post, so the per-instance ``__dict__`` was measurable churn on
    the hot path.

    Attributes
    ----------
    event:
        Event name (system or user).
    raiser_tid:
        Thread that raised the event, or None for kernel-raised events.
    raiser_node:
        Node where the raise happened.
    target:
        The addressed recipient (a tid, group id, or oid) as given to
        ``raise``.
    synchronous:
        True when raised with ``raise_and_wait`` — the raiser is blocked
        until a handler (or the delivery engine on chain completion)
        resumes it.
    user_data:
        "Space for user defined data structures for user events."
    snapshot:
        State of the suspended target thread at delivery time (None for
        object-targeted events with no thread involved).
    raised_at:
        Virtual time of the raise.
    delivered_at:
        Virtual time delivery began (set by the delivery engine).
    block_id:
        Cluster-unique id, allocated at construction.
    durable_id:
        Outbox identity ``(origin_node, seq)`` when the post was
        journaled under ``durable_delivery``; None for non-durable
        posts. Redelivered blocks carry the original id so the
        receiver's applied-set dedup and the origin's ack matching line
        up across crashes.
    """

    __slots__ = ("event", "raiser_tid", "raiser_node", "target",
                 "synchronous", "user_data", "snapshot", "raised_at",
                 "delivered_at", "block_id", "durable_id",
                 "_resume_token", "degraded", "_admission")

    def __init__(self, event: str, raiser_tid: object = None,
                 raiser_node: int | None = None, target: object = None,
                 synchronous: bool = False, user_data: Any = None,
                 snapshot: ThreadSnapshot | None = None,
                 raised_at: float = 0.0,
                 delivered_at: float | None = None) -> None:
        self.event = event
        self.raiser_tid = raiser_tid
        self.raiser_node = raiser_node
        self.target = target
        self.synchronous = synchronous
        self.user_data = user_data
        self.snapshot = snapshot
        self.raised_at = raised_at
        self.delivered_at = delivered_at
        self.block_id = next(_block_ids)
        self.durable_id: tuple[int, int] | None = None
        #: Set by the delivery engine while a chain executes, so a
        #: handler can resume a synchronously-blocked raiser early via
        #: ctx.resume_raiser.
        self._resume_token: Any = None
        #: Overload control: True when the admission gate downgraded
        #: this post from reliable to fire-and-forget (``degrade``
        #: policy); the post then rides a single datagram with a
        #: deadline backstop instead of retransmit-until-acked.
        self.degraded: bool = False
        #: Admission charge token ``(gate node, tenant)`` while the post
        #: occupies gate depth; cleared (idempotently) at conclusion.
        self._admission: tuple[int, int] | None = None

    def __repr__(self) -> str:
        return (f"EventBlock(event={self.event!r}, "
                f"raiser_tid={self.raiser_tid!r}, "
                f"raiser_node={self.raiser_node!r}, "
                f"target={self.target!r}, "
                f"synchronous={self.synchronous!r}, "
                f"user_data={self.user_data!r}, "
                f"snapshot={self.snapshot!r}, "
                f"raised_at={self.raised_at!r}, "
                f"delivered_at={self.delivered_at!r}, "
                f"block_id={self.block_id!r})")

    def with_event(self, event: str, user_data: Any = None) -> "EventBlock":
        """Derive a transformed block for re-raising up a chain (§4.2:
        an event propagated to an outer object "must be transformed to a
        form understandable" to it)."""
        return EventBlock(
            event=event, raiser_tid=self.raiser_tid,
            raiser_node=self.raiser_node, target=self.target,
            synchronous=False,
            user_data=self.user_data if user_data is None else user_data,
            snapshot=self.snapshot, raised_at=self.raised_at)
