"""Default actions for system events.

"Object-based event handling requires the operating system to define the
default action for predefined system events. Provisions to overload the
default action by objects must be provided." (§7)

The same applies to threads: a TERMINATE delivered to a thread with no
handler chain must still terminate it. This module is the single table of
kernel-defined defaults, consulted by the delivery engine when a chain is
exhausted (thread targets) or no object handler is declared (object
targets).
"""

from __future__ import annotations

from repro.events import names
from repro.events.handlers import Decision

# -- thread-targeted defaults -------------------------------------------------

#: Default decision applied when a thread's handler chain for the event is
#: empty or every handler propagated past the end.
_THREAD_DEFAULTS: dict[str, Decision] = {
    names.TERMINATE: Decision.TERMINATE,
    names.QUIT: Decision.TERMINATE,
    names.ABORT: Decision.TERMINATE,
    names.DIV_ZERO: Decision.TERMINATE,
    names.SEGV: Decision.TERMINATE,
    # Interrupts and timers are ignored if nobody asked for them.
    names.INTERRUPT: Decision.RESUME,
    names.TIMER: Decision.RESUME,
    names.DELETE: Decision.RESUME,
    # A VM fault nobody handles is fatal to the faulting thread.
    names.VM_FAULT: Decision.TERMINATE,
    # Notification that an async raise hit a dead thread (§7.2); harmless
    # if the application did not subscribe.
    names.TARGET_DEAD: Decision.RESUME,
    # A handler blowing its watchdog deadline is survivable by default.
    names.HANDLER_TIMEOUT: Decision.RESUME,
}

#: Default decision for unhandled *user* events delivered to a thread.
USER_EVENT_DEFAULT = Decision.RESUME


def thread_default(event: str) -> Decision:
    """Kernel default when no thread-based handler consumed the event."""
    return _THREAD_DEFAULTS.get(event, USER_EVENT_DEFAULT)


# -- object-targeted defaults -------------------------------------------------

#: Object default actions, keyed by event. Values are symbolic commands
#: the delivery engine interprets (it has the kernel access needed).
OBJ_DESTROY = "destroy"
OBJ_IGNORE = "ignore"
OBJ_REJECT = "reject"

_OBJECT_DEFAULTS: dict[str, str] = {
    # DELETE with no user handler destroys the object outright.
    names.DELETE: OBJ_DESTROY,
    # ABORT's kernel default is a notification no-op: the object had no
    # cleanup registered.
    names.ABORT: OBJ_IGNORE,
    names.TIMER: OBJ_IGNORE,
    names.INTERRUPT: OBJ_IGNORE,
    names.TARGET_DEAD: OBJ_IGNORE,
    names.HANDLER_TIMEOUT: OBJ_IGNORE,
}


def object_default(event: str, system: bool) -> str:
    """Kernel default when an object declares no handler for the event.

    Unhandled *user* events (and unexpected system events) are rejected:
    a synchronous raiser sees :class:`~repro.errors.NoHandlerError`, an
    asynchronous raise is traced and dropped.
    """
    return _OBJECT_DEFAULTS.get(event, OBJ_REJECT)


# -- exceptions as events (§3, §6.1) ------------------------------------------

#: Python exception type -> system event the kernel raises when user entry
#: code fails with it ("a division by zero in a user program leads to the
#: raising of a system event by the operating system").
EXCEPTION_EVENTS: dict[type[BaseException], str] = {
    ZeroDivisionError: names.DIV_ZERO,
    ArithmeticError: names.DIV_ZERO,
    MemoryError: names.SEGV,
    IndexError: names.SEGV,
}


def event_for_exception(exc: BaseException) -> str | None:
    """Map a user exception to a system event name, if one applies."""
    for etype, event in EXCEPTION_EVENTS.items():
        if isinstance(exc, etype):
            return event
    return None
