"""The event manager: raising, routing, delivery and handler execution.

This module implements the paper's contribution proper (§3–§5, §7):

* ``raise(e, tid | gtid | oid)`` and ``raise_and_wait(...)`` with the six
  addressing/blocking combinations of the §5.3 table;
* delivery to **threads**: locate the target (pluggable §7.1 strategy),
  suspend it at its next interruption point, run its LIFO handler chain —
  each handler in its declared context (current object / attaching object
  / buddy) on a *surrogate thread* that takes on the suspended thread's
  attributes — then resume or terminate per the final decision;
* delivery to **passive objects**: an implicit invocation of the object's
  registered handler, executed by the node's master handler thread (§7);
* kernel-raised events: exceptions mapped to system events (§6.1),
  thread-attribute timers re-armed wherever the thread goes (§6.2), and
  §7.2's dead-target notification back to asynchronous raisers.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.errors import (
    BuddyUnavailableError,
    DeadThreadError,
    EventQuarantinedError,
    HandlerTimeout,
    NodeCrashedError,
    RpcTimeout,
    EventError,
    HandlerContextError,
    InvocationAborted,
    NoHandlerError,
    OverloadShedError,
    ThreadTerminated,
    UndeliverableError,
    UnknownObjectError,
)
from repro.events import defaults, names
from repro.events.admission import (
    ADMIT,
    DEFER,
    DEGRADE,
    DROP,
    GATE_COUNTERS,
    AdmissionGate,
)
from repro.events.block import EventBlock
from repro.events.handlers import Decision, HandlerContext, HandlerRegistration
from repro.events.supervise import HandlerSupervisor
from repro.events.locate import (
    MSG_BCAST_POST,
    MSG_BCAST_REPLY,
    MSG_CACHED_POST,
    MSG_MCAST_POST,
    MSG_MCAST_REPLY,
    MSG_PATH_POST,
    BroadcastLocator,
    CachedLocator,
    MulticastLocator,
    PathLocator,
    make_locator,
)
from repro.kernel.config import (
    LOCATE_BROADCAST,
    LOCATE_MULTICAST,
    LOCATE_PATH,
    OVERLOAD_DEGRADE,
)
from repro.net.message import Message
from repro.net.stats import LatencyReservoir
from repro.objects.capability import Capability
from repro.store.outbox import NOTICED, OutboxEntry
from repro.sim.primitives import SimFuture
from repro.threads import syscalls as sc
from repro.threads.attributes import TimerSpec
from repro.threads.ids import GroupId, ThreadId
from repro.threads.thread import (
    DThread,
    KIND_SURROGATE,
    KIND_USER,
    TERMINATING,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.boot import Cluster
    from repro.objects.base import DistObject
    from repro.threads.thread import Activation

MSG_POST_OBJECT = "event.post-object"
MSG_RESUME = "event.resume"

_proc_names = itertools.count(1)

#: buddy-invocation failures worth retrying / feeding the breaker: the
#: handler object's node crashed, the reliable send gave up, an RPC leg
#: timed out, or the failure detector failed the call fast
RETRYABLE_INVOKE_ERRORS = (NodeCrashedError, UndeliverableError, RpcTimeout,
                           BuddyUnavailableError)


class EventManager:
    """Cluster-wide event facility (per-node state lives in the kernels)."""

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.locator = make_locator(cluster.config.locator, self)
        # All strategies answer their own message types, so mixed
        # experiments can instantiate them side by side; the cached
        # locator also borrows one of the three as its fallback.
        self._path = (self.locator if isinstance(self.locator, PathLocator)
                      else PathLocator(self))
        self._bcast = (self.locator
                       if isinstance(self.locator, BroadcastLocator)
                       else BroadcastLocator(self))
        self._mcast = (self.locator
                       if isinstance(self.locator, MulticastLocator)
                       else MulticastLocator(self))
        self._cached = (self.locator
                        if isinstance(self.locator, CachedLocator)
                        else CachedLocator(self))
        for kernel in cluster.kernels.values():
            kernel.register_message_handler(MSG_POST_OBJECT,
                                            self._on_post_object)
            kernel.register_message_handler(MSG_RESUME, self._on_resume)
            kernel.register_message_handler(MSG_PATH_POST,
                                            self._path.on_message)
            kernel.register_message_handler(MSG_BCAST_POST,
                                            self._bcast.on_message)
            kernel.register_message_handler(MSG_BCAST_REPLY,
                                            self._bcast.on_reply)
            kernel.register_message_handler(MSG_MCAST_POST,
                                            self._mcast.on_message)
            kernel.register_message_handler(MSG_MCAST_REPLY,
                                            self._mcast.on_reply)
            kernel.register_message_handler(MSG_CACHED_POST,
                                            self._cached.on_message)
        #: block_id -> pending synchronous-raise record
        self._sync_waits: dict[int, dict] = {}
        #: delivery statistics for the benchmarks
        self.posts = 0
        self.delivered = 0
        self.dead_targets = 0
        #: posts that failed with a give-up/deadline (crash or partition)
        self.undeliverable = 0
        #: handler surrogates that raised (folded into PROPAGATE)
        self.handler_failures = 0
        #: watchdog / breaker / dead-letter policy (inert at defaults)
        self.supervisor = HandlerSupervisor(cluster)
        #: observer hook ``(block, target) -> None`` invoked whenever a
        #: post fails (dead target, give-up, deadline); the chaos harness
        #: uses it to account every raiser notice
        self.on_undeliverable: Any = None
        #: observer hook ``(dead_letter) -> None`` invoked whenever a
        #: block enters a dead-letter queue; quarantine is an observable
        #: outcome even when the (volatile) queue later dies with its
        #: node, so accounting harnesses record it here, not by scanning
        #: queues at end of run
        self.on_quarantine: Any = None
        #: overload control: one admission gate per node when the
        #: ``admission_high`` knob is on, else None (zero bookkeeping)
        config = cluster.config
        if config.admission_high is not None:
            self.admission: dict[int, AdmissionGate] | None = {
                node: AdmissionGate(node, config.admission_high,
                                    config.admission_low,
                                    config.tenant_weights)
                for node in cluster.kernels}
        else:
            self.admission = None
        #: observer hook ``(block, target, action) -> None`` invoked when
        #: the admission gate sheds a post (action: drop/degrade/defer);
        #: the overload bench uses it to account every shed post
        self.on_shed: Any = None
        #: receiver-side dedup for degraded (fire-and-forget) object
        #: posts, per node: without a rel header the channel cannot
        #: suppress fabric duplicates, so the manager remembers recent
        #: degraded block ids instead (bounded by ``dedup_window``)
        self._degraded_seen: dict[int, "OrderedDict[int, None]"] = {}
        #: per-delivery (event, raise->deliver virtual latency) samples —
        #: a bounded reservoir so long runs stop accumulating memory
        self.delivery_latencies = LatencyReservoir(
            cluster.config.latency_reservoir_capacity)

    def base_locator(self, name: str) -> Any:
        """One of the three paper strategies, by config name (shared
        instances; used as the cached locator's fallback)."""
        return {LOCATE_PATH: self._path, LOCATE_BROADCAST: self._bcast,
                LOCATE_MULTICAST: self._mcast}[name]

    def delivery_latency_summary(self) -> dict[str, float]:
        """count/mean/p50/p99 over the raise->deliver latency samples."""
        return self.delivery_latencies.summary()

    # ==================================================================
    # raising (§5.3)
    # ==================================================================

    def raise_from_thread(self, thread: DThread, syscall: sc.Raise) -> None:
        """A running thread executed ``raise`` / ``raise_and_wait``."""
        try:
            self.cluster.names.require_event(syscall.event)
            target = self._normalize_target(syscall.target)
        except EventError as exc:
            thread.schedule_step(None, exc)
            return
        node = thread.current_node
        block = EventBlock(event=syscall.event, raiser_tid=thread.tid,
                           raiser_node=node, target=target,
                           synchronous=syscall.synchronous,
                           user_data=syscall.user_data,
                           raised_at=self.cluster.sim.now)
        self.cluster.tracer.emit(
            "event", "raise", event=syscall.event, tid=str(thread.tid),
            target=str(target), sync=syscall.synchronous, node=node)
        if syscall.synchronous:
            record = {"kind": "thread", "thread": thread,
                      "epoch": thread.block("raise_and_wait"),
                      "node": node, "remaining": 1, "values": [],
                      "group": isinstance(target, GroupId)}
            self._sync_waits[block.block_id] = record
            count = self._route(node, block, target)
            if count == 0:
                self._sync_waits.pop(block.block_id, None)
                thread.resume_with(None, DeadThreadError(
                    f"no recipients for {syscall.event} -> {target}"),
                    record["epoch"])
                return
            record["remaining"] = count
            self._arm_sync_timeout(block.block_id, syscall.event)
        else:
            count = self._route(node, block, target)
            thread.schedule_step(count, None)

    def raise_external(self, event: str, target: Any, from_node: int = 0,
                       user_data: Any = None,
                       synchronous: bool = False) -> SimFuture[Any]:
        """Raise an event from outside any thread (the user's terminal,
        a test harness, a device): the paper's ^C enters the system this
        way. Returns a future: recipient count (async) or the handler
        value (sync)."""
        self.cluster.names.require_event(event)
        target = self._normalize_target(target)
        future: SimFuture[Any] = SimFuture(self.cluster.sim)
        block = EventBlock(event=event, raiser_tid=None,
                           raiser_node=from_node, target=target,
                           synchronous=synchronous, user_data=user_data,
                           raised_at=self.cluster.sim.now)
        self.cluster.tracer.emit("event", "raise", event=event, tid="<ext>",
                                 target=str(target), sync=synchronous,
                                 node=from_node)
        if synchronous:
            record = {"kind": "external", "future": future,
                      "node": from_node, "remaining": 1, "values": [],
                      "group": isinstance(target, GroupId)}
            self._sync_waits[block.block_id] = record
            count = self._route(from_node, block, target)
            if count == 0:
                self._sync_waits.pop(block.block_id, None)
                future.fail(DeadThreadError(
                    f"no recipients for {event} -> {target}"))
            else:
                record["remaining"] = count
                self._arm_sync_timeout(block.block_id, event)
        else:
            count = self._route(from_node, block, target)
            future.resolve(count)
        return future

    def _arm_sync_timeout(self, token: int, event: str) -> None:
        """Guard a raise_and_wait against lost resumes (config knob)."""
        timeout = self.cluster.config.sync_raise_timeout
        if timeout is None:
            return

        def expire() -> None:
            record = self._sync_waits.pop(token, None)
            if record is None:
                return
            error = RpcTimeout(
                f"raise_and_wait({event}) saw no resume within {timeout}s")
            self.cluster.tracer.emit("event", "sync-timeout", event=event)
            if record["kind"] == "external":
                if not record["future"].done:
                    record["future"].fail(error)
            else:
                record["thread"].resume_with(None, error, record["epoch"])

        self.cluster.sim.call_after(timeout, expire)

    def _normalize_target(self, target: Any) -> Any:
        if isinstance(target, (ThreadId, GroupId, Capability)):
            return target
        if isinstance(target, DThread):
            return target.tid
        if isinstance(target, int):
            obj = self.cluster.find_object(target)
            if obj is None:
                raise EventError(f"no object with oid {target}")
            return obj.cap
        if hasattr(target, "cap"):
            return target.cap
        raise EventError(
            f"event target must be a ThreadId, GroupId, or object "
            f"capability; got {target!r}")

    def _route(self, from_node: int, block: EventBlock, target: Any) -> int:
        """Start routing; returns the number of recipients targeted."""
        self.posts += 1
        # Write-ahead journaling happens here — at the raise, before the
        # first send — so kernel-internal notices (TARGET_DEAD, ABORT,
        # timers) posted through the lower-level methods stay undurable.
        durable = (self.cluster.config.durable_delivery
                   and from_node in self.cluster.kernels)
        store = self.cluster.kernels[from_node].store if durable else None
        members = (self.cluster.groups.sorted_members(target)
                   if isinstance(target, GroupId) else None)
        if self.admission is not None:
            verdict = self._admission_verdict(from_node, block, target,
                                              members, durable)
            if verdict == DROP:
                return self._shed_drop(from_node, block, target)
            if verdict == DEFER:
                return self._shed_defer(from_node, store, block, target,
                                        members)
            if verdict == DEGRADE:
                # Only non-durable object posts degrade: the reliable
                # retransmit loop is replaced by one datagram plus a
                # deadline backstop (armed in _post_object).
                block.degraded = True
        if isinstance(target, Capability):
            self._charge_admission(target.home, block)
            if store is not None:
                store.journal_post(block, "object", target.home)
            self._post_object(from_node, block, target)
            return 1
        if isinstance(target, GroupId):
            # Batched fan-out: the member list is resolved once (cached
            # sorted order), every member block is built up front, the
            # batch is journaled as one group commit, and one enqueue
            # pass posts them — the delivery stack is set up once per
            # multicast, not once per recipient.
            event, raiser_tid = block.event, block.raiser_tid
            raiser_node, synchronous = block.raiser_node, block.synchronous
            user_data, raised_at = block.user_data, block.raised_at
            token = block.block_id
            blocks = []
            for _ in members:
                # Each member gets its own copy of the block (separate
                # snapshots/decisions) tied to the same sync record.
                member_block = EventBlock(
                    event=event, raiser_tid=raiser_tid,
                    raiser_node=raiser_node, target=target,
                    synchronous=synchronous,
                    user_data=user_data, raised_at=raised_at)
                member_block._resume_token = token
                blocks.append(member_block)
            if self.admission is not None:
                for member_block in blocks:
                    self._charge_admission(from_node, member_block)
            if store is not None and blocks:
                # The whole fan-out is known before the first send, so
                # write-ahead it as one group commit.
                store.journal_post_batch(
                    [(b, "thread", None) for b in blocks])
            post = self._post_thread
            for tid, member_block in zip(members, blocks):
                post(from_node, tid, member_block)
            return len(members)
        # single thread
        block._resume_token = block.block_id
        self._charge_admission(from_node, block)
        if store is not None:
            store.journal_post(block, "thread")
        self._post_thread(from_node, block.target, block)
        return 1

    # ------------------------------------------------------------------
    # admission control (overload shedding)
    # ------------------------------------------------------------------

    def _admission_verdict(self, from_node: int, block: EventBlock,
                           target: Any, members: Any,
                           durable: bool) -> str:
        """Gate one raise; called only when admission control is on.

        The gate charged is the *admission node's*: the target object's
        home for object posts (the node whose handler queue the post
        occupies), the raiser's node otherwise. Tenant identity is the
        raiser node, so weighted-fair shares apply across the raisers
        feeding one hot node.
        """
        gate_node = (target.home if isinstance(target, Capability)
                     else from_node)
        gate = self.admission.get(gate_node)
        if gate is None:
            return ADMIT
        tenant = (block.raiser_node if block.raiser_node is not None
                  else from_node)
        n = len(members) if members is not None else 1
        if n == 0 or gate.admit(tenant, n):
            return ADMIT
        if durable:
            # Durable posts are never dropped: the journal already
            # guarantees them, so shedding degrades to deferral.
            gate.counters["shed_deferred"] += n
            return DEFER
        if (self.cluster.config.overload_policy == OVERLOAD_DEGRADE
                and isinstance(target, Capability)):
            gate.counters["shed_degraded"] += n
            return DEGRADE
        # drop policy, defer policy on a non-durable post, or degrade of
        # a thread-targeted post (the locate handshake *is* the delivery
        # guarantee for threads — nothing to degrade to): shed outright.
        gate.counters["shed_dropped"] += n
        return DROP

    def _charge_admission(self, gate_node: int, block: EventBlock) -> None:
        if self.admission is None:
            return
        gate = self.admission.get(gate_node)
        if gate is None:
            return
        tenant = (block.raiser_node if block.raiser_node is not None
                  else gate_node)
        gate.charge(tenant)
        block._admission = (gate_node, tenant)

    def _release_admission(self, block: EventBlock) -> None:
        """Idempotently return the block's admission charge (handling
        concluded: executed, noticed, quarantined, or timed out)."""
        token = block._admission
        if token is None or self.admission is None:
            return
        block._admission = None
        gate = self.admission.get(token[0])
        if gate is not None:
            gate.release(token[1])

    def _shed_drop(self, from_node: int, block: EventBlock,
                   target: Any) -> int:
        """Reject a post at the gate with a §7.2-style notice."""
        self.undeliverable += 1
        block._resume_token = block.block_id
        self.cluster.tracer.emit("event", "shed", event=block.event,
                                 target=str(target), action="drop",
                                 node=from_node)
        if self.on_shed is not None:
            self.on_shed(block, target, "drop")
        if self.on_undeliverable is not None:
            self.on_undeliverable(block, target)
        self._complete_sync(block, None, OverloadShedError(
            f"{block.event} -> {target} shed by admission control"),
            from_node=from_node)
        return 1

    def _shed_defer(self, from_node: int, store: Any, block: EventBlock,
                    target: Any, members: Any) -> int:
        """Journal a durable post and park it straight into the outbox:
        nothing is sent now; the flush timer (or the target's recovery
        announcement) delivers it once the storm passes."""
        self.cluster.tracer.emit("event", "shed", event=block.event,
                                 target=str(target), action="defer",
                                 node=from_node)
        if self.on_shed is not None:
            self.on_shed(block, target, "defer")
        if isinstance(target, Capability):
            entry = store.journal_post(block, "object", target.home)
            store.defer(entry.entry_id)
            return 1
        if isinstance(target, GroupId):
            blocks = []
            for _ in members:
                member_block = EventBlock(
                    event=block.event, raiser_tid=block.raiser_tid,
                    raiser_node=block.raiser_node, target=target,
                    synchronous=block.synchronous,
                    user_data=block.user_data, raised_at=block.raised_at)
                member_block._resume_token = block.block_id
                blocks.append(member_block)
            entries = store.journal_post_batch(
                [(b, "thread", None) for b in blocks])
            for entry in entries:
                store.defer(entry.entry_id)
            return len(members)
        block._resume_token = block.block_id
        entry = store.journal_post(block, "thread")
        store.defer(entry.entry_id)
        return 1

    def admission_stats(self) -> dict[str, int]:
        """Cluster-wide admission counters plus live/high-water depth
        (zeros when the gate is off; aggregated by
        :meth:`Cluster.supervision_stats`)."""
        totals = {name: 0 for name in GATE_COUNTERS}
        totals["gate_depth"] = 0
        totals["gate_depth_hwm"] = 0
        totals["shed_windows"] = 0
        if self.admission is None:
            return totals
        for gate in self.admission.values():
            for name in GATE_COUNTERS:
                totals[name] += gate.counters[name]
            totals["gate_depth"] += gate.depth
            totals["gate_depth_hwm"] += gate.depth_hwm
            totals["shed_windows"] += gate.shed_windows
        return totals

    def _post_thread(self, from_node: int, tid: ThreadId,
                     block: EventBlock) -> None:
        # Local fast path: if the target's innermost activation is on the
        # raising node, the kernel hands the notice over directly — no
        # location protocol, no messages. This also makes raise-to-self
        # land at the raiser's next yield point (breakpoints, the
        # QUIT -> TERMINATE re-raise of the ^C protocol, ...).
        if self.cluster.kernels[from_node].thread_table.innermost_here(tid):
            if self.enqueue_for_thread(from_node, tid, block):
                self.cluster.tracer.emit("event", "routed",
                                         event=block.event, tid=str(tid),
                                         hops=0)
                return

        # Once-guard: under loss and retransmission a locator may report
        # twice (e.g. a retried probe succeeds after the backstop already
        # declared failure); only the first verdict counts.
        state = {"done": False}

        def on_result(delivered: bool, hops: int) -> None:
            if state["done"]:
                return
            state["done"] = True
            self.cluster.tracer.emit(
                "event", "routed" if delivered else "dead-target",
                event=block.event, tid=str(tid), hops=hops)
            if not delivered:
                self._dead_target(block, tid)

        deadline = self.cluster.config.post_deadline
        if deadline is not None:
            def backstop() -> None:
                if not state["done"]:
                    self.undeliverable += 1
                    on_result(False, -1)
            self.cluster.sim.call_after(deadline, backstop)
        self.locator.post(from_node, tid, block, on_result)

    def _dead_target(self, block: EventBlock, tid: Any) -> None:
        """§7.2: the sender of an event to a destroyed thread is notified."""
        self.dead_targets += 1
        self._release_admission(block)
        # Threads are volatile (unlike objects): a durable post to a dead
        # thread resolves through this notice, never by redelivery — a
        # respawned thread is a *different* thread.
        if block.durable_id is not None:
            origin = self.cluster.kernels.get(block.durable_id[0])
            if origin is not None:
                origin.store.resolve(block.durable_id, NOTICED)
        if self.on_undeliverable is not None:
            self.on_undeliverable(block, tid)
        if block.synchronous:
            self._complete_sync(block, None,
                                DeadThreadError(f"thread {tid} is dead"),
                                from_node=block.raiser_node or 0)
            return
        raiser = (self.cluster.live_threads.get(block.raiser_tid)
                  if block.raiser_tid is not None else None)
        if raiser is not None and raiser.attributes.handlers_for(
                names.TARGET_DEAD):
            notice = EventBlock(event=names.TARGET_DEAD, raiser_tid=None,
                                raiser_node=block.raiser_node,
                                target=raiser.tid,
                                user_data={"event": block.event,
                                           "dead_tid": tid},
                                raised_at=self.cluster.sim.now)
            self._post_thread(block.raiser_node or 0, raiser.tid, notice)

    # ==================================================================
    # thread-targeted delivery
    # ==================================================================

    def enqueue_for_thread(self, node: int, tid: ThreadId,
                           block: EventBlock) -> bool:
        """A notice reached the node holding the thread's innermost frame."""
        thread = self.cluster.live_threads.get(tid)
        if thread is None or not thread.alive or thread.state == TERMINATING:
            return False
        if not thread.accept_block(block.block_id):
            # Duplicate arrival (second locate path, late retransmission):
            # report success — the first copy was accepted — but do not
            # queue a second handler run.
            return True
        thread.pending_notices.append(block)
        # Location hints (§7.1 cached locator): the delivering node knows
        # the thread is here, and the raiser learns it from the delivery
        # acknowledgement it already receives — no extra round trips.
        kernels = self.cluster.kernels
        kernels[node].location_hints.install(tid, node)
        origin = block.raiser_node
        if origin is not None and origin != node and origin in kernels:
            kernels[origin].location_hints.install(tid, node)
        self.cluster.tracer.emit("event", "enqueue", event=block.event,
                                 tid=str(tid), node=node)
        thread.notice_arrived()
        return True

    def start_delivery(self, thread: DThread) -> None:
        """Suspend the thread and begin draining its notice queue."""
        if (thread.suspended_by_event or not thread.alive
                or thread.state == TERMINATING):
            return
        thread.suspended_by_event = True
        self.cluster.sim.call_after(self.cluster.config.context_switch_cost,
                                    self._next_notice, thread)

    def _next_notice(self, thread: DThread) -> None:
        if not thread.alive or thread.state == TERMINATING:
            thread.suspended_by_event = False
            return
        if not thread.pending_notices:
            self._end_suspension(thread)
            return
        block = thread.pending_notices.popleft()
        thread.delivering_event = block.event
        thread.delivering_block = block
        block.delivered_at = self.cluster.sim.now
        block.snapshot = thread.snapshot()
        self.delivered += 1
        self.delivery_latencies.record(
            block.event, block.delivered_at - block.raised_at)
        self.cluster.tracer.emit("event", "deliver", event=block.event,
                                 tid=str(thread.tid),
                                 node=thread.current_node)
        chain = thread.attributes.handlers_for(block.event)
        self._run_chain(thread, block, chain, 0)

    def _end_suspension(self, thread: DThread) -> None:
        thread.suspended_by_event = False
        thread.delivering_event = None
        thread.delivering_block = None
        if not thread.alive:
            return
        if thread.pending_notices:
            self.start_delivery(thread)
            return
        stash = thread.take_stash()
        if stash is not None:
            thread.schedule_step(*stash)
        # else: the thread keeps waiting for whatever it was blocked on.

    def _run_chain(self, thread: DThread, block: EventBlock,
                   chain: list[HandlerRegistration], index: int,
                   errors: int = 0,
                   last_error: BaseException | None = None) -> None:
        if not thread.alive:
            self._complete_sync(block, None,
                                DeadThreadError(f"{thread.tid} died"),
                                from_node=thread.current_node)
            return
        if index >= len(chain):
            # Poison policy: an *entire* chain of failures (every
            # handler raised — watchdog timeouts excluded, since a
            # cancelled handler may have half-executed and a re-run
            # would double its side effects) retries with backoff and
            # eventually quarantines. Deliberate PROPAGATE decisions
            # and breaker skips are not failures.
            if chain and errors >= len(chain) and self._chain_run_failed(
                    thread, block, last_error):
                return
            decision = defaults.thread_default(block.event)
            self._apply_decision(thread, block, decision, None)
            return
        registration = chain[index]

        def done(decision: Decision, value: Any,
                 error: BaseException | None) -> None:
            self.cluster.tracer.emit(
                "event", "handler-done", event=block.event,
                tid=str(thread.tid), context=registration.context.value,
                decision=decision.value,
                error=repr(error) if error else None)
            if decision is Decision.PROPAGATE:
                failed = errors + (1 if error is not None and not
                                   isinstance(error, HandlerTimeout) else 0)
                self._run_chain(thread, block, chain, index + 1, failed,
                                error if error is not None else last_error)
            else:
                self._apply_decision(thread, block, decision, value)

        self._execute_registration(thread, registration, block, done)

    def _chain_run_failed(self, thread: DThread, block: EventBlock,
                          error: BaseException | None) -> bool:
        """Every handler in the chain failed; retry or quarantine.

        Returns False when the poison policy is off (the chain falls
        through to the default decision, the pre-supervision behaviour).
        """
        action, count = self.supervisor.chain_failed(block)
        if action is None:
            return False
        if action == "retry":
            self.supervisor.counters["chain_retries"] += 1
            self.cluster.tracer.emit("supervise", "chain-retry",
                                     event=block.event, tid=str(thread.tid),
                                     attempt=count)
            delay = self.cluster.config.handler_backoff * (2 ** (count - 1))
            self.cluster.sim.call_after(delay, self._retry_chain, thread,
                                        block)
            return True
        self._quarantine_thread_block(thread, block, error, count)
        return True

    def _retry_chain(self, thread: DThread, block: EventBlock) -> None:
        if not thread.alive or thread.delivering_block is not block:
            # The thread died while the retry was pending (thread_gone
            # already issued the §7.2 notice) or handling moved on.
            return
        chain = thread.attributes.handlers_for(block.event)
        self._run_chain(thread, block, chain, 0)

    def _quarantine_thread_block(self, thread: DThread, block: EventBlock,
                                 error: BaseException | None,
                                 failures: int) -> None:
        """The block hit ``poison_threshold``: dead-letter it on the
        delivering node and let the thread move on."""
        node = thread.current_node
        kernel = self.cluster.kernels[node]
        self.supervisor.counters["quarantined"] += 1
        kernel.dead_letters.add(block, "poison", error=error,
                                failures=failures)
        if block.durable_id is not None:
            # Resolve the origin's outbox as quarantined (not delivered)
            # and strip the id so _apply_decision does not re-ack.
            kernel.store.post_quarantined(block.durable_id)
            block.durable_id = None
        self._complete_sync(block, None, EventQuarantinedError(
            f"{block.event} quarantined after {failures} chain failures"),
            from_node=node)
        block.synchronous = False  # the raiser has been resumed
        decision = defaults.thread_default(block.event)
        self._apply_decision(thread, block, decision, None)

    def _apply_decision(self, thread: DThread, block: EventBlock,
                        decision: Decision, value: Any) -> None:
        # Handling concluded: the block is no longer at risk of dying
        # with the thread, and its poison tally (if any) is forgiven.
        self.supervisor.clear_failures(block)
        thread.delivering_block = None
        if block.durable_id is not None:
            # The chain ran to a decision: acknowledge to the origin's
            # outbox from the executing node.
            kernel = self.cluster.kernels.get(thread.current_node)
            if kernel is not None:
                kernel.store.post_executed(block.durable_id)
        # The synchronous raiser is resumed when handling concludes,
        # whatever the fate of the target thread.
        self._complete_sync(block, value, None,
                            from_node=thread.current_node)
        if decision is Decision.TERMINATE:
            thread.suspended_by_event = False
            self.cluster.invoker.terminate_thread(
                thread, reason=f"event {block.event}")
            return
        self._continue_after_notice(thread)

    def _continue_after_notice(self, thread: DThread) -> None:
        if thread.pending_notices:
            self._next_notice(thread)
        else:
            self._end_suspension(thread)

    # ------------------------------------------------------------------
    # executing one thread-based handler (§4.1 contexts)
    # ------------------------------------------------------------------

    def _execute_registration(self, thread: DThread,
                              registration: HandlerRegistration,
                              block: EventBlock, done) -> None:
        cfg = self.cluster.config
        node = thread.current_node
        if registration.context is HandlerContext.CURRENT:
            try:
                fn = thread.attributes.per_thread_memory.procedure(
                    registration.procedure)
            except HandlerContextError as exc:
                done(Decision.PROPAGATE, None, exc)
                return
            current_obj = thread.current_object
            self.cluster.sim.call_after(
                cfg.surrogate_cost, self._run_procedure_surrogate, thread,
                fn, current_obj, block, node, done,
                self.supervisor.effective_deadline(registration))
            return
        # ATTACHING / BUDDY: unscheduled invocation of a handler method,
        # supervised (breaker admission, fast-fail, retry with backoff).
        self._execute_invoke(thread, registration, block, node, done, 0)

    def _execute_invoke(self, thread: DThread,
                        registration: HandlerRegistration,
                        block: EventBlock, node: int, done,
                        attempt: int) -> None:
        cfg = self.cluster.config
        tracer = self.cluster.tracer
        oid = registration.target_oid
        if not self.supervisor.breaker_allows(tracer, oid, block.event,
                                              self.cluster.sim.now):
            # Open breaker: skip this registration, fall down the chain.
            done(Decision.PROPAGATE, None, None)
            return
        obj = self.cluster.find_object(oid)
        if obj is None:
            done(Decision.PROPAGATE, None, UnknownObjectError(
                f"handler object {oid} is gone"))
            return
        try:
            obj.handler_fn(registration.fn_name)
        except BaseException as exc:  # noqa: BLE001 - bad registration
            done(Decision.PROPAGATE, None, exc)
            return
        kernel = self.cluster.kernels.get(node)
        if (kernel is not None and obj.cap.home != node
                and kernel.failure.is_suspected(obj.cap.home)):
            # Suspected buddy node: fail fast instead of waiting out the
            # reliable channel's give-up; feeds the retry/breaker policy.
            self.supervisor.counters["fast_fails"] += 1
            tracer.emit("supervise", "fast-fail", oid=oid,
                        event=block.event, home=obj.cap.home)
            self._invoke_failed(thread, registration, block, node, done,
                                attempt, BuddyUnavailableError(
                                    f"node {obj.cap.home} is suspected"))
            return

        def on_done(decision: Decision, value: Any,
                    error: BaseException | None) -> None:
            if error is not None and isinstance(error,
                                                RETRYABLE_INVOKE_ERRORS):
                self._invoke_failed(thread, registration, block, node,
                                    done, attempt, error)
                return
            if error is None:
                self.supervisor.invoke_succeeded(tracer, oid, block.event)
            done(decision, value, error)

        self.cluster.sim.call_after(
            cfg.surrogate_cost, self._run_invoke_surrogate, thread, obj,
            registration.fn_name, block, node, on_done,
            self.supervisor.effective_deadline(registration))

    def _invoke_failed(self, thread: DThread,
                       registration: HandlerRegistration, block: EventBlock,
                       node: int, done, attempt: int,
                       error: BaseException) -> None:
        """A buddy invocation failed with a retryable error."""
        cfg = self.cluster.config
        self.supervisor.invoke_failed(self.cluster.tracer,
                                      registration.target_oid, block.event,
                                      self.cluster.sim.now)
        if attempt < cfg.handler_retries:
            self.supervisor.counters["handler_retries"] += 1
            self.cluster.tracer.emit("supervise", "handler-retry",
                                     oid=registration.target_oid,
                                     event=block.event, attempt=attempt + 1,
                                     error=repr(error))
            delay = cfg.handler_backoff * (2 ** attempt)
            self.cluster.sim.call_after(delay, self._execute_invoke, thread,
                                        registration, block, node, done,
                                        attempt + 1)
            return
        done(Decision.PROPAGATE, None, error)

    def _run_procedure_surrogate(self, thread: DThread, fn, current_obj,
                                 block: EventBlock, node: int, done,
                                 deadline: float | None = None) -> None:
        """Per-thread-memory handler in the current object's context."""

        def body(ctx):
            ctx._activation.obj = current_obj
            ctx._activation.event_block = block
            result = yield from fn(ctx, block)
            return result

        surrogate = self.cluster.invoker.adopt_loop_thread(
            node, body, f"handler:{block.event}", KIND_SURROGATE,
            attributes=thread.attributes, impersonate=thread.tid)
        self._watch_surrogate(surrogate, thread, block, deadline)
        surrogate.completion.add_done_callback(
            lambda fut: self._surrogate_done(fut, done, thread, block))

    def _run_invoke_surrogate(self, thread: DThread, obj: "DistObject",
                              fn_name: str, block: EventBlock, node: int,
                              done, deadline: float | None = None) -> None:
        """Attaching-object / buddy handler via unscheduled invocation."""

        def body(ctx):
            result = yield sc.Invoke(cap=obj.cap, entry=fn_name,
                                     args=(block,), as_handler=True,
                                     handler_block=block)
            return result

        surrogate = self.cluster.invoker.adopt_loop_thread(
            node, body, f"handler:{block.event}", KIND_SURROGATE,
            attributes=thread.attributes, impersonate=thread.tid)
        self._watch_surrogate(surrogate, thread, block, deadline)
        surrogate.completion.add_done_callback(
            lambda fut: self._surrogate_done(fut, done, thread, block))

    def _watch_surrogate(self, surrogate: DThread, thread: DThread,
                         block: EventBlock,
                         deadline: float | None) -> None:
        """Arm the watchdog on one surrogate handler run."""
        if deadline is None:
            return

        def expire() -> None:
            if surrogate.completion.done or not surrogate.alive:
                return
            self.supervisor.counters["handler_timeouts"] += 1
            self.cluster.tracer.emit("supervise", "handler-timeout",
                                     event=block.event,
                                     tid=str(thread.tid), deadline=deadline)
            # Cancelling the surrogate fails its completion future with
            # the timeout; _surrogate_done turns that into PROPAGATE so
            # the chain falls through (LIFO order preserved).
            self.cluster.invoker.destroy_thread_abrupt(
                surrogate, HandlerTimeout(
                    f"handler for {block.event} exceeded {deadline}s"))
            self._raise_handler_timeout(thread, block, deadline)

        self.cluster.sim.call_after(deadline, expire)

    def _raise_handler_timeout(self, thread: DThread, block: EventBlock,
                               deadline: float) -> None:
        """Raise the HANDLER_TIMEOUT system event on the owning thread
        (only when it subscribed — mirrors the TARGET_DEAD gating, so
        unsupervised runs see zero extra notices)."""
        if not thread.alive or block.event == names.HANDLER_TIMEOUT:
            return
        if not thread.attributes.handlers_for(names.HANDLER_TIMEOUT):
            return
        node = thread.current_node
        notice = EventBlock(event=names.HANDLER_TIMEOUT, raiser_tid=None,
                            raiser_node=node, target=thread.tid,
                            user_data={"event": block.event,
                                       "deadline": deadline},
                            raised_at=self.cluster.sim.now)
        self.enqueue_for_thread(node, thread.tid, notice)

    def _surrogate_done(self, fut: SimFuture[Any], done,
                        thread: DThread | None = None,
                        block: EventBlock | None = None) -> None:
        if fut.failed or fut.cancelled:
            try:
                fut.result()
            except BaseException as exc:  # noqa: BLE001
                if not isinstance(exc, HandlerTimeout):
                    # Timeouts have their own counter/trace; everything
                    # else is a handler failure worth surfacing.
                    self.handler_failures += 1
                    self.cluster.tracer.emit(
                        "event", "handler-error",
                        event=block.event if block is not None else None,
                        tid=str(thread.tid) if thread is not None else None,
                        error=repr(exc))
                done(Decision.PROPAGATE, None, exc)
            return
        decision, value = self._parse_decision(fut.result())
        done(decision, value, None)

    @staticmethod
    def _parse_decision(result: Any) -> tuple[Decision, Any]:
        if result is None:
            return Decision.RESUME, None
        if isinstance(result, Decision):
            return result, None
        if (isinstance(result, tuple) and len(result) == 2
                and isinstance(result[0], Decision)):
            return result
        return Decision.RESUME, result

    # ==================================================================
    # object-targeted delivery (§4.3)
    # ==================================================================

    def _post_object(self, from_node: int, block: EventBlock,
                     cap: Capability) -> None:
        if from_node == cap.home:
            self.cluster.sim.call_soon(self._handle_object_post,
                                       cap.home, block, cap.oid)
            return
        if block.degraded:
            # Shed to fire-and-forget: one datagram, no retransmission —
            # overload must not amplify traffic. The deadline backstop
            # below turns a lost datagram into a bounded-time notice
            # instead of a silent loss.
            self.cluster.kernels[from_node].transmit_unreliable(Message(
                src=from_node, dst=cap.home, mtype=MSG_POST_OBJECT,
                size=128, payload={"block": block, "oid": cap.oid}))
            self._arm_degrade_backstop(block, cap)
            return
        self.cluster.transmit(Message(
            src=from_node, dst=cap.home, mtype=MSG_POST_OBJECT, size=128,
            payload={"block": block, "oid": cap.oid}),
            on_give_up=lambda m: self._object_post_failed(block, cap))

    def _arm_degrade_backstop(self, block: EventBlock,
                              cap: Capability) -> None:
        """Bound a degraded post's fate: if neither execution nor any
        other conclusion released its admission charge by the deadline,
        the raiser gets the undeliverable notice."""
        deadline = self.cluster.config.post_deadline
        if deadline is None:
            deadline = self.cluster.config.locate_timeout

        def backstop() -> None:
            if block._admission is None:
                return  # concluded in time
            self._release_admission(block)
            self.undeliverable += 1
            if self.on_undeliverable is not None:
                self.on_undeliverable(block, cap)
            self._complete_sync(block, None, UndeliverableError(
                f"degraded {block.event} to object {cap.oid} unresolved "
                f"after {deadline}s"), from_node=block.raiser_node or 0)

        self.cluster.sim.call_after(deadline, backstop)

    def _object_post_failed(self, block: EventBlock, cap: Capability) -> None:
        """A reliable object post exhausted its retransmission budget."""
        if block.durable_id is not None:
            # Durable posts to persistent objects don't fail — they park
            # in the origin's outbox and the flush timer / the target's
            # recovery announcement redelivers them.
            origin = self.cluster.kernels.get(block.durable_id[0])
            if origin is not None:
                self.cluster.tracer.emit("store", "park", event=block.event,
                                         oid=cap.oid, node=origin.node_id)
                origin.store.on_give_up(block.durable_id)
                return
        self.undeliverable += 1
        # Keep the block inspectable instead of dropping it after the
        # §7.2-style notice: dead-letter it on the raiser's node.
        # journal=False — this path exists in knobs-off configurations
        # too and must not perturb durable runs' journal accounting.
        origin = self.cluster.kernels.get(block.raiser_node or 0)
        if origin is not None:
            self.supervisor.counters["dead_letter_undeliverable"] += 1
            origin.dead_letters.add(
                block, "undeliverable",
                error=f"object {cap.oid} on node {cap.home} unreachable",
                journal=False)
        if self.on_undeliverable is not None:
            self.on_undeliverable(block, cap)
        self._complete_sync(block, None, UndeliverableError(
            f"{block.event} to object {cap.oid} on node {cap.home} "
            f"undeliverable"), from_node=block.raiser_node or 0)

    def _on_post_object(self, message: Message) -> None:
        body = message.payload
        self._handle_object_post(int(message.dst), body["block"],
                                 body["oid"])

    def redeliver_entry(self, node: int, entry: "OutboxEntry") -> None:
        """Re-dispatch a pending outbox entry from its origin ``node``.

        Object posts are re-sent toward the object's home (objects are
        persistent, so the post eventually lands). Thread posts cannot
        be redelivered — the target thread died with whatever crash or
        give-up stranded the entry, and a respawn is a different thread
        — so they resolve through the §7.2 dead-target notice instead.
        """
        block = entry.block
        self.cluster.tracer.emit("store", "redeliver", event=block.event,
                                 kind=entry.kind, node=node,
                                 entry=str(entry.entry_id))
        if entry.kind == "object":
            self._post_object(node, block, block.target)
        else:
            self._dead_target(block, block.target)

    def post_abort_notification(self, obj: "DistObject", thread: DThread,
                                node: int) -> None:
        """Unwind-time ABORT notification to an object (§6.3)."""
        block = EventBlock(event=names.ABORT, raiser_tid=thread.tid,
                           raiser_node=node, target=obj.cap,
                           user_data={"tid": thread.tid},
                           raised_at=self.cluster.sim.now)
        self._post_object(node, block, obj.cap)

    def _handle_object_post(self, node: int, block: EventBlock,
                            oid: int) -> None:
        kernel = self.cluster.kernels[node]
        if kernel.crashed:
            return  # arrived in the delivery window of a crashing node
        if (block.durable_id is not None
                and not kernel.store.accept_post(block.durable_id)):
            # Redelivered duplicate: already executed here (the applied
            # set re-acked it) or already queued for execution.
            return
        if block.degraded and not self._accept_degraded(node, block):
            return  # fabric-duplicated fire-and-forget datagram
        self.cluster.tracer.emit("event", "deliver-object",
                                 event=block.event, oid=oid, node=node)
        self._run_object_post(node, block, oid)

    def _accept_degraded(self, node: int, block: EventBlock) -> bool:
        """Receiver-side dedup for degraded posts: no rel header means
        the reliable channel cannot suppress fabric duplicates, so the
        manager remembers recent degraded block ids per node.

        The window is sized by ``degrade_dedup_window`` when set,
        falling back to the channel's ``dedup_window``: degraded
        traffic is shed precisely when the system is drowning, so an
        operator may want a *larger* receiver-side memory there than
        the per-peer reliable window (an undersized window re-admits a
        late fabric duplicate as a fresh post)."""
        seen = self._degraded_seen.get(node)
        if seen is None:
            seen = self._degraded_seen[node] = OrderedDict()
        if block.block_id in seen:
            return False
        seen[block.block_id] = None
        config = self.cluster.config
        window = config.degrade_dedup_window or config.dedup_window
        while len(seen) > window:
            seen.popitem(last=False)
        return True

    def _run_object_post(self, node: int, block: EventBlock,
                         oid: int) -> None:
        """Execute one accepted object post (also the chain-retry entry:
        a poison retry re-runs from here, past dedup)."""
        kernel = self.cluster.kernels[node]
        if kernel.crashed:
            return  # crashed between acceptance and a scheduled retry
        obj = kernel.objects.get(oid)
        if obj is None:
            # The object is gone for good (destroyed): the post is
            # definitively processed — ack so the origin stops retrying.
            if block.durable_id is not None:
                kernel.store.post_executed(block.durable_id)
            self._complete_sync(block, None, UnknownObjectError(
                f"object {oid} no longer exists"), from_node=node)
            return
        fn = kernel.objects.object_handler_fn(obj, block.event)
        if fn is None:
            self._object_default(node, obj, block)
            if block.durable_id is not None:
                kernel.store.post_executed(block.durable_id)
            return
        done: SimFuture[Any] = SimFuture(self.cluster.sim)
        kernel.objects.run_object_handler(obj, fn, block, done)

        def finished(fut: SimFuture[Any]) -> None:
            error: BaseException | None = None
            value: Any = None
            if fut.failed or fut.cancelled:
                try:
                    fut.result()
                except BaseException as exc:  # noqa: BLE001
                    error = exc
            else:
                value = fut.result()
            if error is not None and not isinstance(
                    error, (HandlerTimeout, GeneratorExit)):
                # Poison policy for object handlers. Timeouts excluded:
                # the cancelled handler may have half-executed, so a
                # re-run could double its side effects. GeneratorExit
                # excluded: that is the node crashing mid-run, not a
                # handler bug — recovery redelivery deals with it.
                action, count = self.supervisor.chain_failed(block)
                if action == "retry":
                    self.supervisor.counters["chain_retries"] += 1
                    self.cluster.tracer.emit(
                        "supervise", "chain-retry", event=block.event,
                        oid=oid, attempt=count)
                    if block.durable_id is not None:
                        # Retract the applied marker: if the node dies
                        # during the backoff, the origin's redelivery
                        # must re-run the handler, not be suppressed.
                        kernel.store.unmark_applied(block.durable_id)
                    delay = (self.cluster.config.handler_backoff
                             * (2 ** (count - 1)))
                    self.cluster.sim.call_after(delay, self._run_object_post,
                                                node, block, oid)
                    return  # no ack yet: the post is still in flight
                if action == "quarantine":
                    self._quarantine_object_block(node, block, oid, error,
                                                  count)
                    return
            elif error is None:
                self.supervisor.clear_failures(block)
            if block.event == names.DELETE and error is None:
                kernel.objects.destroy(oid)
            if block.durable_id is not None:
                kernel.store.post_executed(block.durable_id)
            self._complete_sync(block, value, error, from_node=node)

        done.add_done_callback(finished)

    def _quarantine_object_block(self, node: int, block: EventBlock,
                                 oid: int, error: BaseException,
                                 failures: int) -> None:
        """An object post hit ``poison_threshold``: dead-letter it on the
        object's home node."""
        kernel = self.cluster.kernels[node]
        self.supervisor.counters["quarantined"] += 1
        kernel.dead_letters.add(block, "poison", error=error,
                                failures=failures)
        if block.durable_id is not None:
            # Resolve the origin's outbox as quarantined, not delivered.
            kernel.store.post_quarantined(block.durable_id)
            block.durable_id = None
        self._complete_sync(block, None, EventQuarantinedError(
            f"{block.event} to object {oid} quarantined after "
            f"{failures} failures"), from_node=node)
        block.synchronous = False  # the raiser has been resumed

    def requeue(self, node: int, dead: Any) -> EventBlock:
        """Re-post a dead letter as a fresh asynchronous block.

        Fresh identity on purpose: the original block id / durable id
        already sits in dedup windows and applied sets cluster-wide, so
        reusing them would get the retry silently swallowed.
        """
        old = dead.block
        fresh = EventBlock(event=old.event, raiser_tid=None,
                           raiser_node=node, target=old.target,
                           synchronous=False, user_data=old.user_data,
                           raised_at=self.cluster.sim.now)
        self.supervisor.counters["requeued"] += 1
        self.cluster.tracer.emit("supervise", "requeue", event=old.event,
                                 node=node, dl_id=dead.dl_id)
        self._route(node, fresh, self._normalize_target(old.target))
        return fresh

    def _object_default(self, node: int, obj: "DistObject",
                        block: EventBlock) -> None:
        info = self.cluster.names.require_event(block.event)
        action = defaults.object_default(block.event, info["system"])
        kernel = self.cluster.kernels[node]
        if action == defaults.OBJ_DESTROY:
            kernel.objects.destroy(obj.oid)
            self._complete_sync(block, None, None, from_node=node)
        elif action == defaults.OBJ_IGNORE:
            self._complete_sync(block, None, None, from_node=node)
        else:
            self.cluster.tracer.emit("event", "object-reject",
                                     event=block.event, oid=obj.oid)
            self._complete_sync(block, None, NoHandlerError(
                f"object {obj.oid} has no handler for {block.event}"),
                from_node=node)

    # ==================================================================
    # synchronous-raise completion (the resume path)
    # ==================================================================

    def _complete_sync(self, block: EventBlock, value: Any,
                       error: BaseException | None, from_node: int) -> None:
        # Every conclusion path funnels through here (executed, noticed,
        # quarantined, give-up), so the admission charge comes back here
        # for synchronous and asynchronous posts alike.
        self._release_admission(block)
        if not block.synchronous:
            if error is not None:
                self.cluster.tracer.emit("event", "async-error",
                                         event=block.event,
                                         error=repr(error))
            return
        token = block._resume_token or block.block_id
        record = self._sync_waits.get(token)
        if record is None:
            return
        if from_node == record["node"]:
            self.cluster.sim.call_soon(self._arrive_resume, token, value,
                                       error)
            return
        self.cluster.transmit(Message(
            src=from_node, dst=record["node"], mtype=MSG_RESUME, size=96,
            payload={"token": token, "value": value, "error": error}),
            on_give_up=lambda m: self._arrive_resume(
                token, None, UndeliverableError(
                    f"resume for {block.event} undeliverable to "
                    f"node {record['node']}")))

    def _on_resume(self, message: Message) -> None:
        body = message.payload
        self._arrive_resume(body["token"], body["value"], body["error"])

    def _arrive_resume(self, token: int, value: Any,
                       error: BaseException | None) -> None:
        record = self._sync_waits.get(token)
        if record is None:
            return
        record["values"].append(value)
        record["remaining"] -= 1
        if error is not None:
            record["error"] = error
        if record["remaining"] > 0:
            return
        del self._sync_waits[token]
        final_error = record.get("error")
        result = record["values"] if record["group"] else record["values"][0]
        if record["kind"] == "external":
            future: SimFuture[Any] = record["future"]
            if not future.done:
                if final_error is not None:
                    future.fail(final_error)
                else:
                    future.resolve(result)
            return
        thread: DThread = record["thread"]
        thread.resume_with(None if final_error is not None else result,
                           final_error, record["epoch"])

    def resume_raiser(self, block: EventBlock, value: Any) -> None:
        """Handler-initiated early resume of a blocked raiser (§5.3)."""
        # The handler runs somewhere in the cluster; charge the resume
        # from the raise's delivery node when known.
        from_node = (block.snapshot.node if block.snapshot is not None
                     else block.raiser_node or 0)
        self._complete_sync(block, value, None, from_node=from_node)
        # Mark so chain completion does not double-resume.
        block.synchronous = False

    # ==================================================================
    # attach/detach (§5.2)
    # ==================================================================

    def attach_from_thread(self, thread: DThread, frame: "Activation",
                           syscall: sc.AttachHandler) -> None:
        try:
            self.cluster.names.require_event(syscall.event)
            registration = self._build_registration(thread, frame, syscall)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            thread.schedule_step(None, exc)
            return
        thread.attributes.attach(registration)
        self.cluster.tracer.emit(
            "event", "attach", event=syscall.event, tid=str(thread.tid),
            context=registration.context.value, node=frame.node)
        thread.schedule_step_after(self.cluster.config.attach_cost,
                                   registration.reg_id, None)

    def _build_registration(self, thread: DThread, frame: "Activation",
                            syscall: sc.AttachHandler) -> HandlerRegistration:
        context = syscall.context
        if context is HandlerContext.CURRENT:
            procedure = syscall.procedure
            if callable(procedure) and not isinstance(procedure, str):
                name = getattr(procedure, "__name__", "proc")
                key = f"{name}#{next(_proc_names)}"
                thread.attributes.per_thread_memory.install_procedure(
                    key, procedure)
                procedure = key
            return HandlerRegistration(
                event=syscall.event, context=context, procedure=procedure,
                attached_in_oid=(frame.obj.oid if frame.obj else None),
                attached_at_node=frame.node, deadline=syscall.deadline)
        if context is HandlerContext.BUDDY:
            if syscall.target is None:
                raise EventError("buddy handler needs a target capability")
            target_oid = syscall.target.oid
        else:  # ATTACHING
            if frame.obj is None:
                raise EventError(
                    "attaching-context handler requires the thread to be "
                    "executing inside an object")
            target_oid = frame.obj.oid
        obj = self.cluster.find_object(target_oid)
        if obj is None:
            raise UnknownObjectError(f"no object {target_oid}")
        obj.handler_fn(syscall.fn_name)  # validate now, not at delivery
        return HandlerRegistration(
            event=syscall.event, context=context, fn_name=syscall.fn_name,
            target_oid=target_oid,
            attached_in_oid=(frame.obj.oid if frame.obj else None),
            attached_at_node=frame.node, deadline=syscall.deadline)

    # ==================================================================
    # exceptions as events (§3, §6.1)
    # ==================================================================

    def on_frame_exception(self, thread: DThread, frame: "Activation",
                           exc: BaseException) -> None:
        """An activation's generator raised; decide events vs propagation."""
        if isinstance(exc, (ThreadTerminated, InvocationAborted)):
            self.cluster.invoker.frame_failed(thread, exc)
            return
        event = defaults.event_for_exception(exc)
        if event is None or thread.kind != KIND_USER:
            self.cluster.invoker.frame_failed(thread, exc)
            return
        obj_handler = (self.cluster.kernels[frame.node].objects
                       .object_handler_fn(frame.obj, event)
                       if frame.obj is not None else None)
        chain = thread.attributes.handlers_for(event)
        if obj_handler is None and not chain:
            self.cluster.invoker.frame_failed(thread, exc)
            return
        block = EventBlock(event=event, raiser_tid=None,
                           raiser_node=frame.node, target=thread.tid,
                           user_data=exc, raised_at=self.cluster.sim.now)
        block.snapshot = thread.snapshot()
        block.delivered_at = self.cluster.sim.now
        thread.suspended_by_event = True
        self.cluster.tracer.emit("event", "exception", event=event,
                                 tid=str(thread.tid), error=repr(exc),
                                 node=frame.node)

        def finish(decision: Decision, value: Any) -> None:
            thread.suspended_by_event = False
            if decision is Decision.RESUME:
                # Levin-style repair: the faulted invocation returns the
                # handler's recovery value to its caller.
                self.cluster.invoker.frame_returned(thread, value)
            elif decision is Decision.TERMINATE:
                self.cluster.invoker.terminate_thread(
                    thread, reason=f"unhandled {event}")
            else:
                self.cluster.invoker.frame_failed(thread, exc)

        def after_object_handler(decision: Decision, value: Any,
                                 error: BaseException | None) -> None:
            if decision is Decision.PROPAGATE:
                self._run_exception_chain(thread, block, chain, 0, exc,
                                          finish)
            else:
                finish(decision, value)

        if obj_handler is not None:
            # §6.1: the object's handler gets called first, on a surrogate
            # thread that takes on the suspended thread's attributes.
            done_fut: SimFuture[Any] = SimFuture(self.cluster.sim)
            kernel = self.cluster.kernels[frame.node]
            kernel.objects.run_object_handler(frame.obj, obj_handler, block,
                                              done_fut)
            done_fut.add_done_callback(
                lambda fut: self._surrogate_done(fut, after_object_handler,
                                                 thread, block))
        else:
            self._run_exception_chain(thread, block, chain, 0, exc, finish)

    def _run_exception_chain(self, thread: DThread, block: EventBlock,
                             chain: list[HandlerRegistration], index: int,
                             exc: BaseException, finish) -> None:
        if index >= len(chain):
            finish(Decision.PROPAGATE, None)
            return

        def done(decision: Decision, value: Any,
                 error: BaseException | None) -> None:
            if decision is Decision.PROPAGATE:
                self._run_exception_chain(thread, block, chain, index + 1,
                                          exc, finish)
            else:
                finish(decision, value)

        self._execute_registration(thread, chain[index], block, done)

    # ==================================================================
    # thread-attribute timers (§6.2) and migration hooks
    # ==================================================================

    def add_thread_timer(self, thread: DThread, spec: TimerSpec) -> None:
        thread.attributes.add_timer(spec)
        if thread.alive:
            self._arm(thread, spec, thread.current_node)

    def remove_thread_timer(self, thread: DThread, spec_id: int) -> bool:
        armed = thread.armed_timers.pop(spec_id, None)
        if armed is not None:
            node, timer_id = armed
            self.cluster.kernels[node].timers.cancel(timer_id)
        return thread.attributes.remove_timer(spec_id)

    def _arm(self, thread: DThread, spec: TimerSpec, node: int) -> None:
        timer_id = self.cluster.kernels[node].timers.set(
            spec.interval, self._timer_fired, thread, spec, node,
            recurring=spec.recurring)
        thread.armed_timers[spec.spec_id] = (node, timer_id)

    def _timer_fired(self, thread: DThread, spec: TimerSpec,
                     node: int) -> None:
        if not thread.alive or thread.current_node != node:
            return  # stale: the thread moved and was re-armed elsewhere
        if not spec.recurring:
            thread.armed_timers.pop(spec.spec_id, None)
            thread.attributes.remove_timer(spec.spec_id)
        block = EventBlock(event=spec.event, raiser_tid=None,
                           raiser_node=node, target=thread.tid,
                           user_data=spec.user_data,
                           raised_at=self.cluster.sim.now)
        self.cluster.tracer.emit("timer", "fire", event=spec.event,
                                 tid=str(thread.tid), node=node)
        self.enqueue_for_thread(node, thread.tid, block)

    def thread_entered_node(self, thread: DThread, node: int,
                            created: bool = False,
                            returned: bool = False) -> None:
        """Invocation-engine hook: the thread starts executing on a node.

        Re-creates the thread's event registration (§6.2: timers are
        re-armed from the attribute list) and maintains the multicast
        location group (§7.1).
        """
        self.cluster.fabric.multicast_groups.join(
            thread.tid.multicast_group, node)
        self.cluster.kernels[node].location_hints.install(thread.tid, node)
        if thread.kind == KIND_USER:
            for spec in thread.attributes.timers:
                if spec.spec_id not in thread.armed_timers:
                    self._arm(thread, spec, node)

    def thread_leaving_node(self, thread: DThread, node: int,
                            frames_remain: bool) -> None:
        """The thread's innermost frame is departing ``node``."""
        # The node's own "it is here" hint is now stale; the TCB
        # forwarding pointer (set right after this hook) takes over.
        self.cluster.kernels[node].location_hints.invalidate(thread.tid)
        for spec_id in list(thread.armed_timers):
            armed_node, timer_id = thread.armed_timers[spec_id]
            if armed_node == node:
                self.cluster.kernels[node].timers.cancel(timer_id)
                del thread.armed_timers[spec_id]

    def thread_left_for_good(self, thread: DThread, node: int) -> None:
        """No frames of the thread remain on ``node``."""
        if node != thread.tid.root:
            self.cluster.fabric.multicast_groups.leave(
                thread.tid.multicast_group, node)
        # The TCB is gone too; leave a forwarding hint so cached posts
        # chasing a stale pointer still make progress toward the thread.
        if thread.alive and thread.current_node != node:
            self.cluster.kernels[node].location_hints.install(
                thread.tid, thread.current_node)

    def thread_gone(self, thread: DThread) -> None:
        """The thread finished or was terminated; final cleanup."""
        for spec_id in list(thread.armed_timers):
            node, timer_id = thread.armed_timers.pop(spec_id)
            self.cluster.kernels[node].timers.cancel(timer_id)
        self.cluster.fabric.multicast_groups.dissolve(
            thread.tid.multicast_group)
        # Dead threads must not linger in any node's location cache: a
        # post must miss everywhere and reach §7.2 dead-target detection.
        for kernel in self.cluster.kernels.values():
            kernel.location_hints.invalidate(thread.tid)
        # Notices still queued — or mid-delivery — die with the thread;
        # every raiser, synchronous or not, gets the §7.2 notification
        # instead of silence.
        if thread.delivering_block is not None:
            block = thread.delivering_block
            thread.delivering_block = None
            self._dead_target(block, thread.tid)
        while thread.pending_notices:
            block = thread.pending_notices.popleft()
            self._dead_target(block, thread.tid)
