"""At-least-once transport on top of the lossy fabric.

The fabric models a real datagram network: messages are dropped,
duplicated, and black-holed by crashed nodes. Everything above it in the
seed tree is fire-and-forget, so any ``drop_rate > 0`` silently loses
events and hangs raisers — exactly the failure §7.2 of the paper wants
surfaced as a bounded-time notification instead.

:class:`ReliableChannel` closes that gap with the classic recipe:

- each node stamps outbound point-to-point messages with a per-link
  sequence number (the :attr:`~repro.net.message.Message.rel` header),
- the receiver acks every stamped message (acks themselves are
  fire-and-forget; a lost ack just costs one retransmission),
- the sender retransmits on an exponential-backoff timer until acked or
  until ``max_retransmits`` attempts are exhausted, at which point it
  gives up and invokes the caller's ``on_give_up`` hook,
- the receiver suppresses duplicates (retransmissions and fault-injected
  copies alike) with a per-sender cumulative floor plus a bounded
  out-of-order window.

Combined with the per-thread event-block dedup window this yields
exactly-once *handler execution* even though the wire is at-least-once.
"""

from __future__ import annotations

from typing import Callable

from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.sim.scheduler import Handle, Simulator

MSG_REL_ACK = "rel.ack"

GiveUpFn = Callable[[Message], None]


class _Pending:
    """Sender-side state for one unacked message."""

    __slots__ = ("message", "dst", "attempts", "handle", "on_give_up")

    def __init__(self, message: Message, dst: int,
                 on_give_up: GiveUpFn | None) -> None:
        self.message = message
        self.dst = dst
        self.attempts = 1
        self.handle: Handle | None = None
        self.on_give_up = on_give_up


class ReliableChannel:
    """Per-node reliable send/receive endpoint.

    Parameters
    ----------
    sim, fabric, node_id:
        The node's simulator, fabric, and identity.
    rto_base:
        First retransmission timeout (virtual seconds).
    backoff:
        Multiplier applied to the timeout after each retransmission.
    max_retransmits:
        Retransmission budget before :meth:`send` gives up and calls the
        caller's ``on_give_up`` hook.
    dedup_window:
        Bound on remembered out-of-order sequence numbers per sender.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, node_id: int, *,
                 rto_base: float = 4e-3, backoff: float = 2.0,
                 max_retransmits: int = 10, dedup_window: int = 1024) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.rto_base = float(rto_base)
        self.backoff = float(backoff)
        self.max_retransmits = int(max_retransmits)
        self.dedup_window = int(dedup_window)
        self._next_seq = 0
        self._pending: dict[int, _Pending] = {}
        # receiver side: per-sender cumulative floor (every seq <= floor
        # already seen) plus the out-of-order seqs above it
        self._floor: dict[int, int] = {}
        self._seen: dict[int, set[int]] = {}
        self.sends = 0
        self.retransmits = 0
        self.gave_up = 0
        self.acks_sent = 0
        self.duplicates_suppressed = 0

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def send(self, message: Message,
             on_give_up: GiveUpFn | None = None) -> None:
        """Send ``message``, retransmitting until acked or budget spent.

        Broadcast/multicast destinations and node-local messages bypass
        the reliability machinery (the local loopback never drops, and
        group delivery has no single acker); they go straight to the
        fabric.
        """
        dst = message.dst
        if not isinstance(dst, int) or dst == self.node_id:
            self.fabric.send(message)
            return
        self._next_seq += 1
        seq = self._next_seq
        message.rel = (self.node_id, seq)
        pending = _Pending(message, dst, on_give_up)
        self._pending[seq] = pending
        self.sends += 1
        self.fabric.send(message)
        pending.handle = self.sim.call_after(
            self.rto_base, self._retransmit, seq)

    def _retransmit(self, seq: int) -> None:
        pending = self._pending.get(seq)
        if pending is None:
            return
        if pending.attempts > self.max_retransmits:
            del self._pending[seq]
            self.gave_up += 1
            if pending.on_give_up is not None:
                pending.on_give_up(pending.message)
            return
        pending.attempts += 1
        self.retransmits += 1
        # Re-send the same envelope object: the rel header is what the
        # receiver deduplicates on, so reusing it is the whole point.
        self.fabric.send(pending.message)
        delay = self.rto_base * (self.backoff ** (pending.attempts - 1))
        pending.handle = self.sim.call_after(delay, self._retransmit, seq)

    def on_ack(self, message: Message) -> None:
        """Kernel dispatch entry for :data:`MSG_REL_ACK`."""
        seq = message.payload["seq"]
        pending = self._pending.pop(seq, None)
        if pending is not None and pending.handle is not None:
            pending.handle.cancel()

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def accept(self, message: Message) -> bool:
        """Ack a rel-stamped arrival; return False if it is a duplicate.

        Called by the kernel before dispatching any message carrying a
        reliability header. Always acks (the earlier ack may have been
        lost), then answers whether this copy should be dispatched.
        """
        sender, seq = message.rel  # type: ignore[misc]
        self.acks_sent += 1
        self.fabric.send(Message(
            src=self.node_id, dst=sender, mtype=MSG_REL_ACK, size=32,
            payload={"seq": seq}))
        floor = self._floor.get(sender, 0)
        if seq <= floor:
            self.duplicates_suppressed += 1
            return False
        seen = self._seen.setdefault(sender, set())
        if seq in seen:
            self.duplicates_suppressed += 1
            return False
        seen.add(seq)
        # advance the cumulative floor over any now-contiguous prefix
        while floor + 1 in seen:
            floor += 1
            seen.discard(floor)
        self._floor[sender] = floor
        # bound memory: with a full window, forget the oldest seqs — at
        # worst a very late duplicate gets re-dispatched, and the
        # per-thread block dedup still suppresses re-execution
        if len(seen) > self.dedup_window:
            for stale in sorted(seen)[:len(seen) - self.dedup_window]:
                seen.discard(stale)
        return True

    # ------------------------------------------------------------------
    # lifecycle / reporting
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Discard all volatile state (the node crashed)."""
        for pending in self._pending.values():
            if pending.handle is not None:
                pending.handle.cancel()
        self._pending.clear()
        self._floor.clear()
        self._seen.clear()
        # Sequence numbers keep counting up across the crash so the
        # recovered node's fresh sends are not mistaken for duplicates.

    def stats(self) -> dict[str, int]:
        return {"sends": self.sends, "retransmits": self.retransmits,
                "gave_up": self.gave_up, "acks_sent": self.acks_sent,
                "duplicates_suppressed": self.duplicates_suppressed,
                "pending": len(self._pending)}
