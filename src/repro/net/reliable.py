"""At-least-once transport on top of the lossy fabric.

The fabric models a real datagram network: messages are dropped,
duplicated, and black-holed by crashed nodes. Everything above it in the
seed tree is fire-and-forget, so any ``drop_rate > 0`` silently loses
events and hangs raisers — exactly the failure §7.2 of the paper wants
surfaced as a bounded-time notification instead.

:class:`ReliableChannel` closes that gap with the classic recipe, tuned
with the equally classic fast-path optimisations (delayed/cumulative
acks and piggybacking, as in TCP; one timer per peer, as in every real
transport):

- each node stamps outbound point-to-point messages with a **per-peer**
  sequence number (the :attr:`~repro.net.message.Message.rel` header),
  so a receiver's acknowledgement state per sender is a single integer;
- the receiver acknowledges **cumulatively**: an ack carries the highest
  sequence number below which everything from that sender has arrived,
  plus a bounded selective summary of out-of-order arrivals above it
  (so a receiver that crashed and lost its floor — the prefix below a
  live sender's next seq will never arrive — still retires the sender's
  pending entries instead of forcing give-ups forever). Acks are
  coalesced — an arrival schedules one ack per peer after ``ack_delay``
  virtual seconds, and every further arrival from that peer inside the
  window rides the same ack — and **piggybacked**: when the window holds
  no out-of-order seqs, any reverse-direction data message sent inside
  it carries the cumulative value in its
  :attr:`~repro.net.message.Message.ack` field and cancels the dedicated
  envelope. Duplicate arrivals flush the ack immediately (the earlier
  ack was evidently lost or late, and the sender is retransmitting on a
  timer);
- the sender keeps **one retransmission timer per peer**, driving the
  oldest unacked message with exponential backoff until it is acked or
  ``max_retransmits`` attempts are exhausted, at which point it gives up
  and invokes the caller's ``on_give_up`` hook. One timer per peer —
  rather than one per message — cuts simulator heap traffic from
  O(messages) to O(peers);
- the receiver suppresses duplicates (retransmissions and fault-injected
  copies alike) with the per-sender cumulative floor plus a bounded
  out-of-order window.

Combined with the per-thread event-block dedup window this yields
exactly-once *handler execution* even though the wire is at-least-once.
Delivery semantics are identical with coalescing on or off — only the
number of envelopes and heap entries changes — and all scheduling runs
on the deterministic simulator clock, so same-seed runs stay
bit-identical.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Callable

from repro.net.fabric import Fabric
from repro.net.message import Message
from repro.sim.scheduler import Handle, Simulator

MSG_REL_ACK = "rel.ack"

#: Bound on the selective summary in one ack envelope; the lowest seqs
#: go first so the sender's oldest pending entries retire soonest.
SEL_ACK_LIMIT = 256

GiveUpFn = Callable[[Message], None]


class _Pending:
    """Sender-side state for one unacked message."""

    __slots__ = ("message", "dst", "attempts", "on_give_up")

    def __init__(self, message: Message, dst: int,
                 on_give_up: GiveUpFn | None) -> None:
        self.message = message
        self.dst = dst
        self.attempts = 1
        self.on_give_up = on_give_up


class _Peer:
    """Sender-side per-peer state: a sequence space and one timer.

    ``pending`` is insertion-ordered, and sequence numbers only grow, so
    its first entry is always the oldest unacked message — the one the
    retransmission timer drives.

    With flow control on, ``window`` is the peer's current credit
    allowance (AIMD: halved on retransmission, +1 per productive ack,
    capped at the configured ``flow_credits``) and ``parked`` holds
    sends awaiting a credit, in submission order. ``inflight_hwm``
    tracks the high-water mark of unacked depth either way.
    """

    __slots__ = ("next_seq", "pending", "timer", "window", "parked",
                 "inflight_hwm")

    def __init__(self, window: int | None) -> None:
        self.next_seq = 0
        self.pending: OrderedDict[int, _Pending] = OrderedDict()
        self.timer: Handle | None = None
        self.window = window
        self.parked: deque[tuple[Message, GiveUpFn | None]] = deque()
        self.inflight_hwm = 0


class ReliableChannel:
    """Per-node reliable send/receive endpoint.

    Parameters
    ----------
    sim, fabric, node_id:
        The node's simulator, fabric, and identity.
    rto_base:
        First retransmission timeout (virtual seconds).
    backoff:
        Multiplier applied to the timeout after each retransmission.
    max_retransmits:
        Retransmission budget before :meth:`send` gives up and calls the
        caller's ``on_give_up`` hook.
    dedup_window:
        Bound on remembered out-of-order sequence numbers per sender.
    ack_delay:
        Coalescing window (virtual seconds): arrivals from one peer
        share a single cumulative ack scheduled this long after the
        first of them. ``0`` acknowledges every arrival immediately
        (still cumulatively). Must stay well below ``rto_base`` plus the
        link round trip or delayed acks cause spurious retransmissions.
    ack_piggyback:
        Ride a pending cumulative ack on any reverse-direction data
        message instead of sending the dedicated ack envelope.
    flow_credits:
        Credit-based flow control: at most this many unacked messages
        outstanding per peer. Excess sends park in submission order and
        drain as cumulative acks replenish credits; the per-peer window
        is halved on retransmission and recovered one credit per
        productive ack (AIMD). ``None`` (the default) disables flow
        control — unbounded in-flight, the pre-knob behaviour.
    """

    def __init__(self, sim: Simulator, fabric: Fabric, node_id: int, *,
                 rto_base: float = 4e-3, backoff: float = 2.0,
                 max_retransmits: int = 10, dedup_window: int = 1024,
                 ack_delay: float = 1e-3,
                 ack_piggyback: bool = True,
                 flow_credits: int | None = None) -> None:
        self.sim = sim
        self.fabric = fabric
        self.node_id = node_id
        self.rto_base = float(rto_base)
        self.backoff = float(backoff)
        self.max_retransmits = int(max_retransmits)
        self.dedup_window = int(dedup_window)
        self.ack_delay = float(ack_delay)
        self.ack_piggyback = bool(ack_piggyback)
        self.flow_credits = (None if flow_credits is None
                             else int(flow_credits))
        self._peers: dict[int, _Peer] = {}
        # receiver side: per-sender cumulative floor (every seq <= floor
        # already seen) plus the out-of-order seqs above it
        self._floor: dict[int, int] = {}
        self._seen: dict[int, set[int]] = {}
        #: per-sender handle of the scheduled coalesced ack, if any
        self._ack_timer: dict[int, Handle] = {}
        self.sends = 0
        self.retransmits = 0
        self.gave_up = 0
        self.acks_sent = 0
        self.acks_piggybacked = 0
        #: arrivals whose ack was coalesced into an already-pending one
        self.acks_coalesced = 0
        self.duplicates_suppressed = 0
        #: acks that failed payload validation (non-dict, missing/bad cum)
        self.bad_acks = 0
        #: well-formed acks that acknowledged nothing new
        self.stale_acks = 0
        #: sends parked for lack of credits (flow control only)
        self.flow_parked = 0
        #: AIMD window halvings on retransmission (flow control only)
        self.flow_halvings = 0

    def _peer(self, dst: int) -> _Peer:
        peer = self._peers.get(dst)
        if peer is None:
            peer = self._peers[dst] = _Peer(self.flow_credits)
        return peer

    # ------------------------------------------------------------------
    # sender side
    # ------------------------------------------------------------------

    def send(self, message: Message,
             on_give_up: GiveUpFn | None = None) -> None:
        """Send ``message``, retransmitting until acked or budget spent.

        Broadcast/multicast destinations and node-local messages bypass
        the reliability machinery (the local loopback never drops, and
        group delivery has no single acker); they go straight to the
        fabric. With flow control on, a send beyond the peer's credit
        window parks instead of hitting the fabric and drains later as
        acks replenish credits.
        """
        dst = message.dst
        if not isinstance(dst, int) or dst == self.node_id:
            self.fabric.send(message)
            return
        peer = self._peer(dst)
        if (peer.window is not None
                and (peer.parked or len(peer.pending) >= peer.window)):
            peer.parked.append((message, on_give_up))
            self.flow_parked += 1
            return
        self._dispatch(peer, dst, message, on_give_up)

    def _dispatch(self, peer: _Peer, dst: int, message: Message,
                  on_give_up: GiveUpFn | None) -> None:
        """Stamp, track, and transmit one credit-holding send."""
        peer.next_seq += 1
        seq = peer.next_seq
        message.rel = (self.node_id, seq)
        peer.pending[seq] = _Pending(message, dst, on_give_up)
        if len(peer.pending) > peer.inflight_hwm:
            peer.inflight_hwm = len(peer.pending)
        self.sends += 1
        self._maybe_piggyback(message, dst)
        self.fabric.send(message)
        if peer.timer is None:
            peer.timer = self.sim.call_after(
                self.rto_base, self._peer_timeout, dst)

    def _unpark(self, peer: _Peer, dst: int) -> None:
        """Drain parked sends into whatever credit window is free."""
        while peer.parked and len(peer.pending) < peer.window:
            message, on_give_up = peer.parked.popleft()
            self._dispatch(peer, dst, message, on_give_up)

    def _maybe_piggyback(self, message: Message, dst: int) -> None:
        """Fold a pending delayed ack into an outbound data message.

        Only pure-cumulative acks ride piggyback: if out-of-order seqs
        are outstanding, the peer needs the selective summary too, and
        that travels in the dedicated envelope only.
        """
        if not self.ack_piggyback or dst not in self._ack_timer:
            return
        if self._seen.get(dst):
            return
        timer = self._ack_timer.pop(dst)
        timer.cancel()
        message.ack = self._floor.get(dst, 0)
        self.acks_piggybacked += 1

    def _peer_timeout(self, dst: int) -> None:
        """The per-peer timer fired: drive the oldest unacked message."""
        peer = self._peers.get(dst)
        if peer is None:
            return
        peer.timer = None
        while peer.pending:
            seq, pending = next(iter(peer.pending.items()))
            if pending.attempts <= self.max_retransmits:
                break
            # Budget exhausted for the oldest entry: give up on it and
            # fall through to the next-oldest, which inherits the timer.
            del peer.pending[seq]
            self.gave_up += 1
            if pending.on_give_up is not None:
                pending.on_give_up(pending.message)
        if not peer.pending:
            if peer.window is not None:
                # Give-ups freed the whole window; parked sends get
                # their chance (each with a fresh retransmit budget).
                self._unpark(peer, dst)
            return
        if peer.window is not None:
            # Multiplicative decrease: the timeout is the loss signal.
            if peer.window > 1:
                peer.window = max(1, peer.window // 2)
                self.flow_halvings += 1
        pending.attempts += 1
        self.retransmits += 1
        # Re-send the same envelope object: the rel header is what the
        # receiver deduplicates on, so reusing it is the whole point. A
        # fresher cumulative ack may ride along (the stale one already on
        # the envelope is harmless either way — acks are monotonic).
        self._maybe_piggyback(pending.message, dst)
        self.fabric.send(pending.message)
        delay = self.rto_base * (self.backoff ** (pending.attempts - 1))
        peer.timer = self.sim.call_after(delay, self._peer_timeout, dst)

    @staticmethod
    def _valid_seq(value: object) -> bool:
        return (isinstance(value, int) and not isinstance(value, bool)
                and value >= 0)

    def on_ack(self, message: Message) -> None:
        """Kernel dispatch entry for :data:`MSG_REL_ACK`.

        Validates the payload instead of trusting it: a malformed ack
        (fuzzed, corrupted, or from a future protocol revision) is
        counted and dropped, never raised through the kernel dispatch.
        """
        payload = message.payload
        cum = payload.get("cum") if isinstance(payload, dict) else None
        if not self._valid_seq(cum):
            self.bad_acks += 1
            return
        sel = payload.get("sel", ())
        if not (isinstance(sel, (list, tuple))
                and all(self._valid_seq(s) for s in sel)):
            self.bad_acks += 1
            return
        self._apply_ack(message.src, cum, sel)

    def on_cum_ack(self, src: int, cum: int) -> None:
        """Apply a pure cumulative ack from ``src`` covering ``seq <= cum``.

        The entry point for piggybacked acks (the ``ack`` field of any
        arriving data message). Idempotent: duplicate and reordered acks
        acknowledge nothing new and are counted as stale.
        """
        if not self._valid_seq(cum):
            self.bad_acks += 1
            return
        self._apply_ack(src, cum, ())

    def _apply_ack(self, src: int, cum: int, sel) -> None:
        peer = self._peers.get(src)
        if peer is None or not peer.pending:
            self.stale_acks += 1
            return
        oldest_before = next(iter(peer.pending))
        popped = 0
        while peer.pending:
            seq = next(iter(peer.pending))
            if seq > cum:
                break
            del peer.pending[seq]
            popped += 1
        for seq in sel:
            if seq in peer.pending:
                del peer.pending[seq]
                popped += 1
        if popped == 0:
            self.stale_acks += 1
            return
        if peer.window is not None and peer.window < self.flow_credits:
            # Additive increase: one credit back per productive ack.
            peer.window += 1
        if not peer.pending:
            if peer.timer is not None:
                peer.timer.cancel()
                peer.timer = None
        else:
            oldest = next(iter(peer.pending))
            if oldest != oldest_before:
                # The timed entry retired; the new oldest inherits the
                # timer at its own backoff.
                if peer.timer is not None:
                    peer.timer.cancel()
                attempts = next(iter(peer.pending.values())).attempts
                delay = self.rto_base * (self.backoff ** (attempts - 1))
                peer.timer = self.sim.call_after(
                    delay, self._peer_timeout, src)
        if peer.window is not None:
            self._unpark(peer, src)

    # ------------------------------------------------------------------
    # receiver side
    # ------------------------------------------------------------------

    def accept(self, message: Message) -> bool:
        """Note a rel-stamped arrival; return False if it is a duplicate.

        Called by the kernel before dispatching any message carrying a
        reliability header. Always arranges an acknowledgement (the
        earlier ack may have been lost): fresh in-order traffic shares
        the coalesced per-peer ack, while duplicates — evidence the
        sender is retransmitting — flush it immediately.
        """
        sender, seq = message.rel  # type: ignore[misc]
        floor = self._floor.get(sender, 0)
        seen = self._seen.setdefault(sender, set())
        if seq <= floor or seq in seen:
            self.duplicates_suppressed += 1
            self._flush_ack(sender)
            return False
        seen.add(seq)
        # advance the cumulative floor over any now-contiguous prefix
        while floor + 1 in seen:
            floor += 1
            seen.discard(floor)
        self._floor[sender] = floor
        # bound memory: with a full window, forget the oldest seqs — at
        # worst a very late duplicate gets re-dispatched, and the
        # per-thread block dedup still suppresses re-execution
        if len(seen) > self.dedup_window:
            trim = sorted(seen)[:len(seen) - self.dedup_window]
            for stale in trim:
                seen.discard(stale)
            # Gaps below the trimmed seqs can only be filled by sends
            # their sender has long since given up on (or that predate a
            # crash that wiped this floor); jump the floor forward so
            # cumulative acks resume covering new traffic. At worst an
            # extremely late first arrival is suppressed as a duplicate,
            # the same tradeoff the trim itself already makes.
            if trim[-1] > floor:
                floor = trim[-1]
                while floor + 1 in seen:
                    floor += 1
                    seen.discard(floor)
                self._floor[sender] = floor
        self._schedule_ack(sender)
        return True

    def _schedule_ack(self, sender: int) -> None:
        if sender in self._ack_timer:
            self.acks_coalesced += 1
            return
        if self.ack_delay <= 0:
            self._send_ack(sender)
            return
        self._ack_timer[sender] = self.sim.call_after(
            self.ack_delay, self._ack_timer_fired, sender)

    def _ack_timer_fired(self, sender: int) -> None:
        self._ack_timer.pop(sender, None)
        self._send_ack(sender)

    def _flush_ack(self, sender: int) -> None:
        """Send the cumulative ack now, collapsing any pending window."""
        timer = self._ack_timer.pop(sender, None)
        if timer is not None:
            timer.cancel()
        self._send_ack(sender)

    def _send_ack(self, sender: int) -> None:
        self.acks_sent += 1
        payload: dict = {"cum": self._floor.get(sender, 0)}
        size = 32
        seen = self._seen.get(sender)
        if seen:
            sel = tuple(sorted(seen)[:SEL_ACK_LIMIT])
            payload["sel"] = sel
            size += 8 * len(sel)
        self.fabric.send(Message(
            src=self.node_id, dst=sender, mtype=MSG_REL_ACK, size=size,
            payload=payload))

    # ------------------------------------------------------------------
    # lifecycle / reporting
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Discard all volatile state (the node crashed)."""
        for peer in self._peers.values():
            if peer.timer is not None:
                peer.timer.cancel()
                peer.timer = None
            peer.pending.clear()
            # Parked sends die with the crash too (they were never on
            # the wire; durable ones are re-issued from the journal).
            peer.parked.clear()
            if peer.window is not None:
                peer.window = self.flow_credits
            # Sequence numbers keep counting up across the crash so the
            # recovered node's fresh sends are not mistaken for
            # duplicates (next_seq survives in the peer record).
        for timer in self._ack_timer.values():
            timer.cancel()
        self._ack_timer.clear()
        self._floor.clear()
        self._seen.clear()

    def next_seq_for(self, dst: int) -> int:
        """Last sequence number assigned toward ``dst`` (diagnostics)."""
        peer = self._peers.get(dst)
        return peer.next_seq if peer is not None else 0

    def peer_stats(self) -> dict[int, dict[str, int]]:
        """Per-peer in-flight depth, high-water mark, credit window and
        parked-queue length (the depths the overload controller and the
        E13 bench read)."""
        out: dict[int, dict[str, int]] = {}
        for dst, peer in self._peers.items():
            out[dst] = {
                "inflight": len(peer.pending),
                "inflight_hwm": peer.inflight_hwm,
                "window": (peer.window if peer.window is not None
                           else -1),
                "parked": len(peer.parked),
            }
        return out

    def stats(self) -> dict[str, int]:
        stats = {"sends": self.sends, "retransmits": self.retransmits,
                 "gave_up": self.gave_up, "acks_sent": self.acks_sent,
                 "acks_piggybacked": self.acks_piggybacked,
                 "acks_coalesced": self.acks_coalesced,
                 "bad_acks": self.bad_acks, "stale_acks": self.stale_acks,
                 "duplicates_suppressed": self.duplicates_suppressed,
                 "pending": sum(len(p.pending)
                                for p in self._peers.values())}
        if self.flow_credits is not None:
            # Only present with the knob on: knobs-off runs keep the
            # exact pre-flow-control stats shape (digest discipline).
            stats["flow_parked"] = self.flow_parked
            stats["flow_halvings"] = self.flow_halvings
            stats["flow_queued"] = sum(len(p.parked)
                                       for p in self._peers.values())
            stats["inflight_hwm"] = max(
                (p.inflight_hwm for p in self._peers.values()),
                default=0)
        return stats
