"""Multicast group membership for the fabric.

Section 7.1 of the paper proposes tracking migrating threads with
multicast groups: as a thread starts executing on a node, that node's
thread-management system joins the thread's group, so an event can be
addressed to the group and reach the thread directly. This module provides
the group-membership substrate; the locator strategy lives in
:mod:`repro.events.locate`.
"""

from __future__ import annotations

from repro.errors import NetworkError


class MulticastRegistry:
    """Tracks which node ids belong to which named multicast group."""

    def __init__(self) -> None:
        self._groups: dict[str, set[int]] = {}
        self.joins = 0
        self.leaves = 0

    def join(self, group: str, node_id: int) -> bool:
        """Add a node to a group; returns False if already a member."""
        members = self._groups.setdefault(group, set())
        if node_id in members:
            return False
        members.add(node_id)
        self.joins += 1
        return True

    def leave(self, group: str, node_id: int) -> bool:
        """Remove a node from a group; returns False if not a member."""
        members = self._groups.get(group)
        if not members or node_id not in members:
            return False
        members.discard(node_id)
        self.leaves += 1
        if not members:
            del self._groups[group]
        return True

    def members(self, group: str) -> frozenset[int]:
        return frozenset(self._groups.get(group, frozenset()))

    def groups_of(self, node_id: int) -> frozenset[str]:
        return frozenset(g for g, m in self._groups.items() if node_id in m)

    def dissolve(self, group: str) -> None:
        """Delete a group entirely (e.g. when its thread dies).

        Each removed member counts as a leave, so ``joins - leaves``
        always equals the number of live memberships.
        """
        members = self._groups.pop(group, None)
        if members:
            self.leaves += len(members)

    def require_members(self, group: str) -> frozenset[int]:
        members = self.members(group)
        if not members:
            raise NetworkError(f"multicast group {group!r} has no members")
        return members
