"""The message fabric connecting simulated nodes.

The fabric is the cluster's network: nodes register a delivery callback,
and anything in the system sends :class:`~repro.net.message.Message`
envelopes through :meth:`Fabric.send`, :meth:`Fabric.broadcast` or
:meth:`Fabric.multicast`. Delivery is asynchronous, with the delay chosen
by a pluggable latency model and delivery fate decided by a fault plan.
All traffic is counted and traced.

Since the transport port extraction, the fabric no longer owns the
medium: endpoint registration and timed message movement live behind a
:class:`~repro.transport.base.Transport` (deterministic simulator,
sharded multi-process simulator, or real TCP).  The fabric keeps
everything semantic — fan-out, latency charging, fault injection,
statistics, tracing — so those behave identically on every backend.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable

from repro.errors import UnknownNodeError
from repro.net.faults import FaultPlan
from repro.net.latency import FixedLatency, LatencyModel
from repro.net.message import (
    BROADCAST,
    Message,
    is_multicast,
    multicast_address,
    multicast_group,
)
from repro.net.multicast import MulticastRegistry
from repro.net.stats import TrafficStats
from repro.sim.trace import Tracer
from repro.transport.base import Transport

DeliveryFn = Callable[[Message], None]


class Fabric:
    """A network of point-to-point links plus group delivery.

    Parameters
    ----------
    transport:
        The medium: a :class:`~repro.transport.base.Transport`, or — for
        backward compatibility with direct construction in tests — a
        bare :class:`~repro.sim.scheduler.Simulator`, which is wrapped
        in a :class:`~repro.transport.simlocal.SimTransport`.
    latency:
        Latency model (defaults to 1 ms fixed).
    faults:
        Fault plan (defaults to no faults).
    tracer:
        Optional structured tracer; send/deliver/drop records are emitted
        under the ``net`` category.
    """

    def __init__(self, transport: Transport | Any,
                 latency: LatencyModel | None = None,
                 faults: FaultPlan | None = None,
                 tracer: Tracer | None = None) -> None:
        if not isinstance(transport, Transport):
            from repro.transport.simlocal import SimTransport
            transport = SimTransport(transport)
        self.transport = transport
        #: the transport's clock — the same object every kernel
        #: schedules on (a Simulator on the sim backends)
        self.sim = transport.scheduler
        self.latency = latency or FixedLatency()
        self.faults = faults or FaultPlan()
        self.tracer = tracer
        self.stats = TrafficStats()
        self.multicast_groups = MulticastRegistry()
        transport.set_delivery_hook(self._deliver)
        # per-fabric message ids keep traces deterministic across runs
        self._msg_ids = itertools.count(1)
        # per-source SWIM piggyback hooks (node id -> hook(dst) -> tuple
        # of updates or None); empty unless gossip membership is enabled,
        # so knobs-off runs never take the extra branch work.
        self._gossip_hooks: dict[int, Callable[[int], tuple | None]] = {}

    def set_gossip_hook(self, node_id: int,
                        hook: Callable[[int], tuple | None] | None) -> None:
        """Install (or clear, with ``None``) a node's piggyback hook.

        The hook is consulted once per outbound envelope from
        ``node_id`` (including each fan-out copy) and may return a tuple
        of membership updates to ride in :attr:`Message.gossip`.
        """
        if hook is None:
            self._gossip_hooks.pop(node_id, None)
        else:
            self._gossip_hooks[node_id] = hook

    # ------------------------------------------------------------------
    # topology (delegated to the transport's endpoint registry)
    # ------------------------------------------------------------------

    def attach(self, node_id: int, deliver: DeliveryFn) -> None:
        """Register a node's delivery callback."""
        self.transport.attach(node_id, deliver)

    def detach(self, node_id: int) -> None:
        self.transport.detach(node_id)

    @property
    def node_ids(self) -> list[int]:
        return self.transport.node_ids

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.transport

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------

    def send(self, message: Message) -> None:
        """Send a point-to-point message (asynchronously, in virtual time)."""
        dst = message.dst
        if dst == BROADCAST:
            self._fan_out(message, [n for n in self.node_ids
                                    if n != message.src], "broadcast")
            return
        if is_multicast(dst):
            group = multicast_group(dst)
            members = self.multicast_groups.members(group)
            self._fan_out(message, sorted(members), "multicast")
            return
        if not self.transport.routable(dst) and not self.transport.known(dst):
            raise UnknownNodeError(f"no node {dst!r} attached to fabric")
        self._transmit(message, int(dst))

    def broadcast(self, src: int, mtype: str, payload: Any = None,
                  size: int = 64) -> int:
        """Send to every node except the sender; returns copies sent."""
        targets = [n for n in self.node_ids if n != src]
        self._fan_out(Message(src=src, dst=BROADCAST, mtype=mtype,
                              payload=payload, size=size), targets,
                      "broadcast")
        return len(targets)

    def multicast(self, src: int, group: str, mtype: str, payload: Any = None,
                  size: int = 64) -> int:
        """Send to every current member of ``group``; returns copies sent."""
        members = sorted(self.multicast_groups.members(group))
        self._fan_out(Message(src=src, dst=multicast_address(group),
                              mtype=mtype, payload=payload, size=size),
                      members, "multicast")
        return len(members)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _fan_out(self, template: Message, targets: list[int],
                 kind: str) -> None:
        if self.tracer is not None:
            self.tracer.emit("net", kind, src=template.src,
                             mtype=template.mtype, fanout=len(targets))
        for node_id in targets:
            copy = Message(src=template.src, dst=node_id,
                           mtype=template.mtype, payload=template.payload,
                           size=template.size)
            self._transmit(copy, node_id)

    def _transmit(self, message: Message, dst: int) -> None:
        message.msg_id = next(self._msg_ids)
        if self._gossip_hooks and message.gossip is None:
            hook = self._gossip_hooks.get(message.src)
            if hook is not None:
                updates = hook(dst)
                if updates:
                    # Ride membership updates on traffic that is going
                    # out anyway; retransmissions keep their original
                    # (possibly stale) gossip, which incarnation
                    # ordering makes harmless.
                    message.gossip = updates
                    message.size += 6 * len(updates)
        self.stats.record_send(message.src, message.mtype, message.size)
        if self.tracer is not None:
            self.tracer.emit("net", "send", src=message.src, dst=dst,
                             mtype=message.mtype, msg_id=message.msg_id)
        if not self.transport.routable(dst):
            # Known-but-detached destination: the node crashed. The wire
            # swallows the message; reliable channels retransmit until
            # the node recovers or the budget runs out.
            self._drop(message, dst)
            return
        copies = self.faults.copies(message)
        if copies == 0:
            self._drop(message, dst)
            return
        for i in range(copies):
            # Each duplicated copy is a distinct envelope with its own
            # msg_id and its own top-level payload dict: a receiver that
            # mutates the payload must not corrupt the other copy. The
            # reliability header is shared so dedup still collapses them.
            copy = message if i == 0 else self._clone(message)
            delay = self.latency.delay(copy.src, dst, copy)
            self.transport.post(copy, dst, delay)

    def _clone(self, message: Message) -> Message:
        payload = message.payload
        if isinstance(payload, dict):
            payload = dict(payload)
        clone = Message(src=message.src, dst=message.dst,
                        mtype=message.mtype, payload=payload,
                        size=message.size, rel=message.rel,
                        ack=message.ack, gossip=message.gossip)
        clone.msg_id = next(self._msg_ids)
        return clone

    def _drop(self, message: Message, dst: int) -> None:
        self.stats.record_drop()
        if self.tracer is not None:
            self.tracer.emit("net", "drop", src=message.src, dst=dst,
                             mtype=message.mtype, msg_id=message.msg_id)

    def _deliver(self, message: Message, dst: int) -> None:
        endpoint = self.transport.endpoint(dst)
        if endpoint is None:
            # Node detached while the message was in flight; the paper's
            # model treats this as a silent loss (fault tolerance is out
            # of scope, section 7.2).
            self.stats.record_drop()
            return
        self.stats.record_delivery(message.src, dst)
        if self.tracer is not None:
            self.tracer.emit("net", "deliver", src=message.src, dst=dst,
                             mtype=message.mtype, msg_id=message.msg_id)
        endpoint(message)
