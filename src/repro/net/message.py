"""Message envelope used by the simulated fabric.

All inter-kernel communication — invocation requests, event notices, page
transfers, locate probes — travels as :class:`Message` envelopes. The
``mtype`` string doubles as the key for per-type statistics, so every
subsystem defines its message types as module-level constants (see e.g.
:mod:`repro.kernel.rpc`).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_msg_ids = itertools.count(1)


@dataclass(slots=True)
class Message:
    """An envelope in flight between two nodes.

    ``slots=True``: envelopes are the highest-volume allocation in a
    run (every post, ack and probe is one), so the per-instance dict
    was pure hot-path overhead.

    Attributes
    ----------
    src, dst:
        Node ids. ``dst`` may be :data:`BROADCAST` or a multicast group
        name prefixed with ``mcast:`` when sent through the fabric's
        broadcast/multicast entry points.
    mtype:
        Message type tag (e.g. ``"rpc.request"``, ``"event.post"``).
    payload:
        Arbitrary structured content. The fabric never inspects it.
    size:
        Nominal size in bytes; used by bandwidth-aware latency models and
        traffic statistics. Defaults to 64 (a small control message).
    msg_id:
        Unique id assigned at construction, useful for request/reply
        correlation and trace matching.
    rel:
        Reliability header, or ``None`` for fire-and-forget traffic. Set
        by :class:`~repro.net.reliable.ReliableChannel` to the
        ``(sender node, link sequence number)`` pair that receivers ack
        and deduplicate on. Retransmissions and fault-injected duplicates
        carry the same header, so exactly one copy is dispatched.
    ack:
        Piggybacked cumulative acknowledgement, or ``None``. Set by the
        sending node's :class:`~repro.net.reliable.ReliableChannel` when
        a delayed ack to ``dst`` is outstanding: the value acknowledges
        every sequence number the sender has received *in order* from
        ``dst``, saving the dedicated ``rel.ack`` envelope. Cumulative
        acks are monotonic and idempotent, so a stale value riding a
        retransmitted envelope is harmless.
    gossip:
        Piggybacked SWIM membership updates, or ``None`` (always
        ``None`` unless ``ClusterConfig.swim_interval`` is set). A
        tuple of ``(node, state, incarnation)`` triples stamped by the
        fabric's per-source gossip hook on the way out
        (:meth:`~repro.net.fabric.Fabric.set_gossip_hook`) and applied
        by the receiving kernel before dispatch. Updates are ordered by
        incarnation number, so duplicates and stale values riding
        retransmitted envelopes are harmless.
    """

    src: int
    dst: int | str
    mtype: str
    payload: Any = None
    size: int = 64
    msg_id: int = field(default_factory=lambda: next(_msg_ids))
    rel: tuple[int, int] | None = None
    ack: int | None = None
    gossip: tuple | None = None

    def reply_envelope(self, mtype: str, payload: Any = None,
                       size: int = 64) -> "Message":
        """Build a response envelope going back to the sender."""
        if not isinstance(self.src, int):
            raise ValueError(f"cannot reply to non-node source {self.src!r}")
        return Message(src=int(self.dst) if isinstance(self.dst, int) else -1,
                       dst=self.src, mtype=mtype, payload=payload, size=size)


BROADCAST = "*"


def multicast_address(group: str) -> str:
    """Fabric address for a multicast group."""
    return f"mcast:{group}"


def is_multicast(dst: int | str) -> bool:
    return isinstance(dst, str) and dst.startswith("mcast:")


def multicast_group(dst: str) -> str:
    """Extract the group name from a multicast address."""
    if not is_multicast(dst):
        raise ValueError(f"{dst!r} is not a multicast address")
    return dst[len("mcast:"):]
