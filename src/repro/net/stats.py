"""Traffic statistics for the message fabric.

Benchmarks E2 (thread location) and E5 (distributed ^C) report message
counts per type, which is the quantity the paper argues about when it
calls broadcast location "communication intensive and wasteful" (§7.1).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any


@dataclass
class TrafficStats:
    """Counters over everything a fabric has carried."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    by_link: dict[tuple[int, int], int] = field(default_factory=dict)

    def record_send(self, src: int, mtype: str, size: int) -> None:
        self.sent += 1
        self.bytes_sent += size
        self.by_type[mtype] = self.by_type.get(mtype, 0) + 1

    def record_delivery(self, src: int, dst: int) -> None:
        self.delivered += 1
        key = (src, dst)
        self.by_link[key] = self.by_link.get(key, 0) + 1

    def record_drop(self) -> None:
        self.dropped += 1

    def count(self, mtype: str) -> int:
        """Messages sent with the given type tag."""
        return self.by_type.get(mtype, 0)

    def count_prefix(self, prefix: str) -> int:
        """Messages sent whose type starts with ``prefix``."""
        return sum(n for t, n in self.by_type.items() if t.startswith(prefix))

    def snapshot(self) -> dict[str, int]:
        """Immutable summary, convenient for before/after deltas."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "bytes_sent": self.bytes_sent,
            **{f"type:{t}": n for t, n in sorted(self.by_type.items())},
        }

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        now = self.snapshot()
        keys = set(now) | set(snapshot)
        return {k: now.get(k, 0) - snapshot.get(k, 0) for k in sorted(keys)}

    def reset(self) -> None:
        self.sent = self.delivered = self.dropped = self.bytes_sent = 0
        self.by_type.clear()
        self.by_link.clear()


class LatencyReservoir:
    """Bounded reservoir of labelled latency samples.

    Long benchmark runs record one sample per delivery; an unbounded list
    grows without limit. This keeps running aggregates (count, mean) over
    *everything* ever recorded plus a most-recent window of ``capacity``
    samples for percentiles and per-post inspection. The window policy is
    deterministic (drop-oldest), so identically-seeded runs stay
    bit-identical.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("reservoir capacity must be >= 1")
        self.capacity = capacity
        self._window: deque[tuple[Any, float]] = deque(maxlen=capacity)
        self._count = 0
        self._total = 0.0

    def __len__(self) -> int:
        """Samples currently retained (<= capacity)."""
        return len(self._window)

    def __iter__(self):
        return iter(self._window)

    def record(self, label: Any, value: float) -> None:
        self._count += 1
        self._total += value
        self._window.append((label, value))

    def last(self, n: int) -> list[tuple[Any, float]]:
        """The most recent ``min(n, retained)`` samples, oldest first."""
        if n <= 0:
            return []
        window = list(self._window)
        return window[-n:]

    @property
    def count(self) -> int:
        """Total samples ever recorded (not just retained)."""
        return self._count

    @property
    def mean(self) -> float:
        """Running mean over every sample ever recorded."""
        return self._total / self._count if self._count else 0.0

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (0..100) over the retained window."""
        if not self._window:
            return 0.0
        values = sorted(v for _, v in self._window)
        rank = max(0, min(len(values) - 1,
                          int(round(q / 100.0 * (len(values) - 1)))))
        return values[rank]

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def summary(self) -> dict[str, float]:
        return {"count": self.count, "mean": self.mean,
                "p50": self.p50, "p99": self.p99,
                "retained": len(self._window)}
