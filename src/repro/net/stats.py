"""Traffic statistics for the message fabric.

Benchmarks E2 (thread location) and E5 (distributed ^C) report message
counts per type, which is the quantity the paper argues about when it
calls broadcast location "communication intensive and wasteful" (§7.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TrafficStats:
    """Counters over everything a fabric has carried."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    bytes_sent: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    by_link: dict[tuple[int, int], int] = field(default_factory=dict)

    def record_send(self, src: int, mtype: str, size: int) -> None:
        self.sent += 1
        self.bytes_sent += size
        self.by_type[mtype] = self.by_type.get(mtype, 0) + 1

    def record_delivery(self, src: int, dst: int) -> None:
        self.delivered += 1
        key = (src, dst)
        self.by_link[key] = self.by_link.get(key, 0) + 1

    def record_drop(self) -> None:
        self.dropped += 1

    def count(self, mtype: str) -> int:
        """Messages sent with the given type tag."""
        return self.by_type.get(mtype, 0)

    def count_prefix(self, prefix: str) -> int:
        """Messages sent whose type starts with ``prefix``."""
        return sum(n for t, n in self.by_type.items() if t.startswith(prefix))

    def snapshot(self) -> dict[str, int]:
        """Immutable summary, convenient for before/after deltas."""
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "bytes_sent": self.bytes_sent,
            **{f"type:{t}": n for t, n in sorted(self.by_type.items())},
        }

    def delta_since(self, snapshot: dict[str, int]) -> dict[str, int]:
        now = self.snapshot()
        keys = set(now) | set(snapshot)
        return {k: now.get(k, 0) - snapshot.get(k, 0) for k in sorted(keys)}

    def reset(self) -> None:
        self.sent = self.delivered = self.dropped = self.bytes_sent = 0
        self.by_type.clear()
        self.by_link.clear()
