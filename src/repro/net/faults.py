"""Fault injection for the message fabric.

The paper's facility must behave sensibly in the presence of lost messages
and partitioned nodes (the "unexpected occurrences [that] are far more
probable than in centralized systems", section 1). The :class:`FaultPlan`
decides, per message, whether it is delivered, dropped, or duplicated.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.sim.rng import RngRegistry


class FaultPlan:
    """Probabilistic drops/duplicates plus explicit partitions.

    Parameters
    ----------
    rng:
        Registry supplying the ``faults`` stream.
    drop_rate:
        Probability a remote message is silently dropped.
    duplicate_rate:
        Probability a remote message is delivered twice.

    Partitions are symmetric sets of node pairs that cannot exchange
    messages; :meth:`partition` and :meth:`heal` manage them explicitly
    for targeted tests.
    """

    def __init__(self, rng: RngRegistry | None = None, drop_rate: float = 0.0,
                 duplicate_rate: float = 0.0) -> None:
        self._stream = (rng or RngRegistry(0)).stream("faults")
        self.drop_rate = float(drop_rate)
        self.duplicate_rate = float(duplicate_rate)
        self._cut_pairs: set[frozenset[int]] = set()
        self.dropped = 0
        self.duplicated = 0

    def partition(self, side_a: set[int] | list[int],
                  side_b: set[int] | list[int]) -> None:
        """Cut all links between the two node sets."""
        for a in side_a:
            for b in side_b:
                if a != b:
                    self._cut_pairs.add(frozenset((a, b)))

    def heal(self) -> None:
        """Remove all partitions."""
        self._cut_pairs.clear()

    def is_cut(self, src: int, dst: int) -> bool:
        return frozenset((src, dst)) in self._cut_pairs

    def copies(self, message: Message) -> int:
        """How many copies of this message to deliver (0 = dropped).

        Node-local messages are never dropped or duplicated.
        """
        src, dst = message.src, message.dst
        if isinstance(dst, int):
            if src == dst:
                return 1
            if self.is_cut(src, dst):
                self.dropped += 1
                return 0
        if self.drop_rate and self._stream.random() < self.drop_rate:
            self.dropped += 1
            return 0
        if self.duplicate_rate and self._stream.random() < self.duplicate_rate:
            self.duplicated += 1
            return 2
        return 1
