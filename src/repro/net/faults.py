"""Fault injection for the message fabric.

The paper's facility must behave sensibly in the presence of lost messages
and partitioned nodes (the "unexpected occurrences [that] are far more
probable than in centralized systems", section 1). The :class:`FaultPlan`
decides, per message, whether it is delivered, dropped, or duplicated.
"""

from __future__ import annotations

from repro.net.message import Message
from repro.sim.rng import RngRegistry


class FaultPlan:
    """Probabilistic drops/duplicates plus explicit partitions.

    Parameters
    ----------
    rng:
        Registry supplying the ``faults`` stream.
    drop_rate:
        Probability a remote message is silently dropped.
    duplicate_rate:
        Probability a remote message is delivered twice.

    Partitions are directed cuts between node pairs. :meth:`partition`
    cuts both directions by default, or only ``side_a -> side_b`` with
    ``one_way=True`` (an asymmetric failure: requests get through but
    replies are lost, or vice versa). :meth:`heal` removes every cut, or
    just the cuts between two sets when called with arguments.

    Drop and duplicate decisions are counted per message type in
    :attr:`dropped_by_type` / :attr:`duplicated_by_type`, which the chaos
    report uses to show *what* the network was eating.
    """

    def __init__(self, rng: RngRegistry | None = None, drop_rate: float = 0.0,
                 duplicate_rate: float = 0.0) -> None:
        self._stream = (rng or RngRegistry(0)).stream("faults")
        self.drop_rate = float(drop_rate)
        self.duplicate_rate = float(duplicate_rate)
        #: directed ``(src, dst)`` pairs that cannot communicate
        self._cuts: set[tuple[int, int]] = set()
        self.dropped = 0
        self.duplicated = 0
        self.dropped_by_type: dict[str, int] = {}
        self.duplicated_by_type: dict[str, int] = {}

    def partition(self, side_a: set[int] | list[int],
                  side_b: set[int] | list[int],
                  one_way: bool = False) -> None:
        """Cut links between the two node sets.

        With ``one_way=True`` only messages travelling ``side_a ->
        side_b`` are cut; the reverse direction keeps working.
        """
        for a in side_a:
            for b in side_b:
                if a == b:
                    continue
                self._cuts.add((a, b))
                if not one_way:
                    self._cuts.add((b, a))

    def heal(self, side_a: set[int] | list[int] | None = None,
             side_b: set[int] | list[int] | None = None) -> None:
        """Remove partitions.

        With no arguments every cut is removed. With two node sets, only
        the cuts between them (both directions) are removed — other
        partitions stay in force.
        """
        if side_a is None and side_b is None:
            self._cuts.clear()
            return
        if side_a is None or side_b is None:
            raise ValueError("heal() needs both sides or neither")
        for a in side_a:
            for b in side_b:
                self._cuts.discard((a, b))
                self._cuts.discard((b, a))

    def is_cut(self, src: int, dst: int) -> bool:
        return (src, dst) in self._cuts

    def fault_breakdown(self) -> dict[str, dict[str, int]]:
        """Per-message-type drop/duplicate counts (for the chaos report)."""
        return {"dropped": dict(sorted(self.dropped_by_type.items())),
                "duplicated": dict(sorted(self.duplicated_by_type.items()))}

    def _count_drop(self, mtype: str) -> None:
        self.dropped += 1
        self.dropped_by_type[mtype] = self.dropped_by_type.get(mtype, 0) + 1

    def _count_duplicate(self, mtype: str) -> None:
        self.duplicated += 1
        self.duplicated_by_type[mtype] = \
            self.duplicated_by_type.get(mtype, 0) + 1

    def copies(self, message: Message) -> int:
        """How many copies of this message to deliver (0 = dropped).

        Node-local messages are never dropped or duplicated.
        """
        src, dst = message.src, message.dst
        if isinstance(dst, int):
            if src == dst:
                return 1
            if self.is_cut(src, dst):
                self._count_drop(message.mtype)
                return 0
        if self.drop_rate and self._stream.random() < self.drop_rate:
            self._count_drop(message.mtype)
            return 0
        if self.duplicate_rate and self._stream.random() < self.duplicate_rate:
            self._count_duplicate(message.mtype)
            return 2
        return 1
