"""Simulated message fabric: links, latency, multicast, faults, stats."""

from repro.net.fabric import Fabric
from repro.net.faults import FaultPlan
from repro.net.latency import (
    BandwidthLatency,
    FixedLatency,
    LatencyModel,
    LognormalLatency,
    MatrixLatency,
    UniformLatency,
)
from repro.net.message import (
    BROADCAST,
    Message,
    is_multicast,
    multicast_address,
    multicast_group,
)
from repro.net.multicast import MulticastRegistry
from repro.net.stats import TrafficStats

__all__ = [
    "BROADCAST",
    "BandwidthLatency",
    "Fabric",
    "FaultPlan",
    "FixedLatency",
    "LatencyModel",
    "LognormalLatency",
    "MatrixLatency",
    "Message",
    "MulticastRegistry",
    "TrafficStats",
    "UniformLatency",
    "is_multicast",
    "multicast_address",
    "multicast_group",
]
