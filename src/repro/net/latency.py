"""Latency models for the message fabric.

A latency model maps a (src, dst, message) triple to a one-way delay in
virtual seconds. Models draw from named RNG streams so that runs are
reproducible and adding a model does not perturb other random consumers.
"""

from __future__ import annotations

from typing import Protocol

from repro.errors import NetworkError
from repro.net.message import Message
from repro.sim.rng import RngRegistry


class LatencyModel(Protocol):
    """Anything that can price a message's one-way delay."""

    def delay(self, src: int, dst: int, message: Message) -> float:
        """One-way delay in virtual seconds for this message."""
        ...


class FixedLatency:
    """Every message takes exactly ``seconds``; local delivery may differ.

    Parameters
    ----------
    seconds:
        Delay for remote (src != dst) messages.
    local:
        Delay for node-local messages (default: 1/100 of remote, modelling
        the kernel-internal fast path).
    """

    def __init__(self, seconds: float = 1e-3, local: float | None = None) -> None:
        if seconds < 0:
            raise NetworkError(f"negative latency {seconds!r}")
        self.seconds = float(seconds)
        self.local = self.seconds / 100.0 if local is None else float(local)

    def delay(self, src: int, dst: int, message: Message) -> float:
        return self.local if src == dst else self.seconds


class UniformLatency:
    """Remote delay drawn uniformly from [low, high]."""

    def __init__(self, rng: RngRegistry, low: float, high: float,
                 local: float = 1e-5) -> None:
        if not 0 <= low <= high:
            raise NetworkError(f"invalid latency range [{low}, {high}]")
        self._stream = rng.stream("latency.uniform")
        self.low = float(low)
        self.high = float(high)
        self.local = float(local)

    def delay(self, src: int, dst: int, message: Message) -> float:
        if src == dst:
            return self.local
        return self._stream.uniform(self.low, self.high)


class LognormalLatency:
    """Heavy-tailed remote delay typical of shared LANs.

    ``median`` is the median one-way delay; ``sigma`` controls tail weight.
    """

    def __init__(self, rng: RngRegistry, median: float = 1e-3,
                 sigma: float = 0.5, local: float = 1e-5) -> None:
        if median <= 0:
            raise NetworkError(f"median must be positive, got {median!r}")
        import math

        self._stream = rng.stream("latency.lognormal")
        self.mu = math.log(median)
        self.sigma = float(sigma)
        self.local = float(local)

    def delay(self, src: int, dst: int, message: Message) -> float:
        if src == dst:
            return self.local
        return self._stream.lognormvariate(self.mu, self.sigma)


class MatrixLatency:
    """Per-link latencies from an explicit matrix (racks, WANs).

    ``base[src][dst]`` gives the one-way delay; missing entries fall back
    to ``default``. Useful for topologies where the paper's "span a large
    domain of machines" matters — e.g. two racks with a slow uplink.
    """

    def __init__(self, base: dict[int, dict[int, float]] | None = None,
                 default: float = 1e-3, local: float = 1e-5) -> None:
        if default < 0 or local < 0:
            raise NetworkError("latencies must be non-negative")
        self.base = base or {}
        self.default = float(default)
        self.local = float(local)
        for row in self.base.values():
            for value in row.values():
                if value < 0:
                    raise NetworkError(f"negative latency {value!r}")

    def set_link(self, src: int, dst: int, seconds: float,
                 symmetric: bool = True) -> None:
        if seconds < 0:
            raise NetworkError(f"negative latency {seconds!r}")
        self.base.setdefault(src, {})[dst] = float(seconds)
        if symmetric:
            self.base.setdefault(dst, {})[src] = float(seconds)

    def delay(self, src: int, dst: int, message: Message) -> float:
        if src == dst:
            return self.local
        return self.base.get(src, {}).get(dst, self.default)


class BandwidthLatency:
    """Fixed propagation delay plus a size-proportional serialisation term.

    Models a link of ``bandwidth`` bytes/second with ``propagation``
    seconds of base delay; large payloads (DSM pages) cost more than
    small control messages.
    """

    def __init__(self, propagation: float = 5e-4,
                 bandwidth: float = 10e6 / 8, local: float = 1e-5) -> None:
        if bandwidth <= 0:
            raise NetworkError(f"bandwidth must be positive, got {bandwidth!r}")
        self.propagation = float(propagation)
        self.bandwidth = float(bandwidth)
        self.local = float(local)

    def delay(self, src: int, dst: int, message: Message) -> float:
        if src == dst:
            return self.local
        return self.propagation + message.size / self.bandwidth
