"""Durability bench: journal overhead and recovery time vs checkpoints.

The ``repro.store`` subsystem buys zero-lost-posts (experiment D1) with
two costs the paper's §5 message-count methodology makes measurable:

* **journal overhead** — every durable remote post appends a POST and an
  ACK record at its origin and an APPLIED record at the executing node.
  Fault-free that is three appends against the four-plus messages the
  post already costs, so the write-ahead log stays under two appends per
  message on the wire.
* **recovery time** — a recovering node replays its newest checkpoint
  plus the journal tail, charging ``replay_cost`` per record before
  redelivery starts. The checkpoint interval bounds the tail: checkpoint
  every N appends and replay is O(N); never checkpoint and replay grows
  with the whole run.

Both are swept here on top of the chaos harness (same seeded faults,
same invariants: every journaled post executes exactly once, the outbox
drains). Results go to ``BENCH_durability.json``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any

from repro.bench.chaos import ChaosReport, ChaosSpec, run_chaos
from repro.bench.harness import Table


def measure_fault_free_overhead(base: ChaosSpec | None = None) -> dict[str, Any]:
    """Journal appends per fabric message on a fault-free durable run.

    Same workload as the sweep but with no drops, no duplicates and no
    crashes: every append is pure write-ahead overhead, none is
    redelivery bookkeeping.
    """
    base = base or ChaosSpec()
    spec = replace(base, durable=True, drop_rate=0.0, duplicate_rate=0.0,
                   crash_period=None, partition_period=None)
    report = run_chaos(spec)
    messages = report.message_stats["sent"]
    appends = report.durability["appends"]
    return {
        "posts": spec.posts,
        "messages_sent": messages,
        "journal_appends": appends,
        "appends_per_message": round(appends / messages, 4) if messages else 0.0,
        "journal_bytes": report.durability["bytes_appended"],
        "executed_once": report.executed_once,
        "violations": report.violations,
    }


def _interval_label(interval: int | None) -> str:
    return "off" if interval is None else str(interval)


def run_durability_sweep(
        checkpoint_intervals: list[int | None],
        base: ChaosSpec | None = None) -> tuple[Table, list[ChaosReport]]:
    """Sweep checkpoint interval under the crash/recover chaos scenario.

    Every cell must satisfy the durable invariants (exactly-once
    execution, outbox drained); the columns expose how the checkpoint
    interval trades journal retention against recovery replay length.
    """
    base = base or ChaosSpec(durable=True)
    table = Table(
        title="Durability: recovery time vs checkpoint interval "
              f"({base.posts} posts, {base.n_nodes} nodes, "
              f"drop={base.drop_rate}, crash_period={base.crash_period})",
        columns=["ckpt_interval", "posts", "executed_once", "redelivered",
                 "recoveries", "replayed_mean", "replayed_max",
                 "recovery_ms_mean", "recovery_ms_max", "appends",
                 "checkpoints", "retained_end", "pending_end"])
    reports = []
    for interval in checkpoint_intervals:
        spec = replace(base, durable=True, checkpoint_interval=interval)
        report = run_chaos(spec)
        reports.append(report)
        replayed = [row["replayed"] for row in report.recoveries]
        times_ms = [row["recovery_time"] * 1e3 for row in report.recoveries]
        n = len(report.recoveries)
        table.add(_interval_label(interval), spec.posts,
                  report.executed_once,
                  report.durability.get("redelivered", 0), n,
                  round(sum(replayed) / n, 2) if n else 0.0,
                  max(replayed) if n else 0,
                  round(sum(times_ms) / n, 4) if n else 0.0,
                  round(max(times_ms), 4) if n else 0.0,
                  report.durability.get("appends", 0),
                  report.durability.get("checkpoints", 0),
                  report.durability.get("retained", 0),
                  report.durability.get("pending", 0))
    table.note("replayed = checkpoint + journal-tail records rolled "
               "forward per recovery; recovery_ms charges replay_cost "
               f"= {base.replay_cost * 1e3:.3g} ms per record")
    table.note("ckpt_interval bounds the tail: replayed_max <= interval "
               "+ 1 when on; 'off' replays the whole retained journal")
    return table, reports
